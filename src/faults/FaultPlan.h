//===- faults/FaultPlan.h - Deterministic fault schedules -------*- C++ -*-===//
//
// Part of the GreenWeb reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A FaultPlan is a declarative, seeded schedule of adversarial hardware
/// and workload behavior: which fault families are active, when their
/// windows open and close on the virtual clock, and how severe they are.
/// Plans serialize to a small JSON document and round-trip exactly, so a
/// chaos run is reproducible from its artifact metadata header alone
/// (the header records the command line, which names the plan or its
/// seed; see docs/ROBUSTNESS.md).
///
/// All randomness during injection comes from per-family substreams
/// forked off the plan seed, so two runs of the same plan against the
/// same experiment configuration are byte-identical.
///
//===----------------------------------------------------------------------===//

#ifndef GREENWEB_FAULTS_FAULTPLAN_H
#define GREENWEB_FAULTS_FAULTPLAN_H

#include "support/Time.h"

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace greenweb {

/// The fault families the injector can schedule.
enum class FaultKind {
  /// Thermal throttling: caps the big cluster's usable frequency ladder
  /// at CapMHz while the window is open. Configurations above the cap
  /// are clamped by the chip, mirroring a firmware thermal governor.
  ThermalThrottle,
  /// Flaky DVFS driver: configuration transitions fail outright with
  /// FailProb, and successful ones take ExtraDelay longer.
  DvfsFlaky,
  /// Power-sensor misbehavior: meter samples drop with DropProb and
  /// surviving samples carry additive Gaussian noise (SigmaWatts).
  /// Distorts the observed sample stream only, never the ground-truth
  /// energy integral.
  MeterNoise,
  /// Event-callback cost spikes: with SpikeProb an input callback's
  /// cost is multiplied by SpikeScale (a GC pause, a cold cache, a
  /// rogue third-party script).
  CallbackSpike,
  /// Display-path trouble: scheduled VSync ticks land up to JitterMax
  /// late, and ticks that would start a frame are dropped with
  /// DropProb.
  VsyncJitter,
  /// Annotation error (paper Sec. 7.3): at page parse time each
  /// annotated (element, event) pair is independently mislabeled with
  /// MislabelProb — its QoS targets scaled by TargetScale and, when
  /// FlipType is set, its QoS type flipped single<->continuous.
  AnnotationMislabel,
};

/// Stable wire name for a fault kind ("thermal_throttle", ...).
const char *faultKindName(FaultKind Kind);

/// Parses a wire name back to a kind.
std::optional<FaultKind> faultKindFromName(const std::string &Name);

/// True for families that perturb delivered QoS or the governor's
/// inputs (everything except pure meter noise, which only distorts
/// observation).
bool faultPerturbsQos(FaultKind Kind);

/// One scheduled fault: a family, a window on the virtual clock
/// (relative to the armed origin), and family-specific severity knobs.
/// Unused knobs stay at their defaults and are omitted from JSON.
struct FaultSpec {
  FaultKind Kind = FaultKind::ThermalThrottle;

  /// Window start, relative to FaultInjector::arm's origin.
  Duration Start = Duration::zero();
  /// Window length; zero means "until the end of the run".
  Duration Length = Duration::zero();

  // ThermalThrottle
  unsigned CapMHz = 0;

  // DvfsFlaky
  double FailProb = 0.0;
  Duration ExtraDelay = Duration::zero();

  // MeterNoise (DropProb shared with VsyncJitter)
  double DropProb = 0.0;
  double SigmaWatts = 0.0;

  // CallbackSpike
  double SpikeProb = 0.0;
  double SpikeScale = 1.0;

  // VsyncJitter
  Duration JitterMax = Duration::zero();

  // AnnotationMislabel (applies at parse time; the window is ignored)
  double MislabelProb = 0.0;
  double TargetScale = 1.0;
  bool FlipType = false;

  bool operator==(const FaultSpec &) const = default;

  /// One-line human summary, e.g. "thermal_throttle cap=1000MHz".
  std::string str() const;
};

/// A seeded schedule of faults.
struct FaultPlan {
  /// Root seed for all injection randomness.
  uint64_t Seed = 1;
  std::vector<FaultSpec> Faults;

  bool operator==(const FaultPlan &) const = default;

  bool hasKind(FaultKind Kind) const;

  /// Serializes to the canonical JSON document (stable field order, so
  /// equal plans produce byte-equal text).
  std::string toJson() const;

  /// Parses a plan from JSON. On failure returns std::nullopt and, when
  /// \p Error is non-null, stores a diagnostic.
  static std::optional<FaultPlan> fromJson(const std::string &Text,
                                           std::string *Error = nullptr);

  /// Named evaluation scenarios shared by chaos_evaluation, bench_faults,
  /// the tests, and CI, so "the thermal scenario" means the same plan
  /// everywhere. Unknown names return std::nullopt.
  static std::optional<FaultPlan> scenario(const std::string &Name,
                                           uint64_t Seed = 1);

  /// The names scenario() accepts, in presentation order.
  static std::vector<std::string> scenarioNames();

  /// A randomized plan for soak testing: 2-4 fault specs drawn from the
  /// seed, always including at least one QoS-perturbing family.
  /// Deterministic in \p Seed.
  static FaultPlan chaosPlan(uint64_t Seed);
};

} // namespace greenweb

#endif // GREENWEB_FAULTS_FAULTPLAN_H
