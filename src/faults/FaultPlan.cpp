//===- faults/FaultPlan.cpp - Deterministic fault schedules ----------------===//
//
// Part of the GreenWeb reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "faults/FaultPlan.h"

#include "support/Json.h"
#include "support/Rng.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

using namespace greenweb;

const char *greenweb::faultKindName(FaultKind Kind) {
  switch (Kind) {
  case FaultKind::ThermalThrottle:
    return "thermal_throttle";
  case FaultKind::DvfsFlaky:
    return "dvfs_flaky";
  case FaultKind::MeterNoise:
    return "meter_noise";
  case FaultKind::CallbackSpike:
    return "callback_spike";
  case FaultKind::VsyncJitter:
    return "vsync_jitter";
  case FaultKind::AnnotationMislabel:
    return "annotation_mislabel";
  }
  return "unknown";
}

std::optional<FaultKind> greenweb::faultKindFromName(const std::string &Name) {
  static const FaultKind Kinds[] = {
      FaultKind::ThermalThrottle, FaultKind::DvfsFlaky,
      FaultKind::MeterNoise,      FaultKind::CallbackSpike,
      FaultKind::VsyncJitter,     FaultKind::AnnotationMislabel,
  };
  for (FaultKind Kind : Kinds)
    if (Name == faultKindName(Kind))
      return Kind;
  return std::nullopt;
}

bool greenweb::faultPerturbsQos(FaultKind Kind) {
  return Kind != FaultKind::MeterNoise;
}

namespace {

/// Shortest decimal rendering that parses back to the same double, so
/// toJson -> fromJson round-trips exactly and equal plans serialize to
/// byte-equal text.
std::string formatNumber(double V) {
  char Buf[40];
  for (int Precision : {15, 16, 17}) {
    std::snprintf(Buf, sizeof(Buf), "%.*g", Precision, V);
    if (std::strtod(Buf, nullptr) == V)
      break;
  }
  return Buf;
}

void appendField(std::string &Out, const char *Name, double V,
                 double SkipValue) {
  if (V == SkipValue)
    return;
  Out += ",\"";
  Out += Name;
  Out += "\":";
  Out += formatNumber(V);
}

} // namespace

std::string FaultSpec::str() const {
  std::string Out = faultKindName(Kind);
  char Buf[96];
  switch (Kind) {
  case FaultKind::ThermalThrottle:
    std::snprintf(Buf, sizeof(Buf), " cap=%uMHz", CapMHz);
    break;
  case FaultKind::DvfsFlaky:
    std::snprintf(Buf, sizeof(Buf), " fail=%.2f delay=%.0fus", FailProb,
                  ExtraDelay.micros());
    break;
  case FaultKind::MeterNoise:
    std::snprintf(Buf, sizeof(Buf), " drop=%.2f sigma=%.2fW", DropProb,
                  SigmaWatts);
    break;
  case FaultKind::CallbackSpike:
    std::snprintf(Buf, sizeof(Buf), " p=%.2f x%.1f", SpikeProb, SpikeScale);
    break;
  case FaultKind::VsyncJitter:
    std::snprintf(Buf, sizeof(Buf), " jitter<=%.1fms drop=%.2f",
                  JitterMax.millis(), DropProb);
    break;
  case FaultKind::AnnotationMislabel:
    std::snprintf(Buf, sizeof(Buf), " p=%.2f scale=%.2f%s", MislabelProb,
                  TargetScale, FlipType ? " flip" : "");
    break;
  }
  Out += Buf;
  return Out;
}

bool FaultPlan::hasKind(FaultKind Kind) const {
  for (const FaultSpec &S : Faults)
    if (S.Kind == Kind)
      return true;
  return false;
}

std::string FaultPlan::toJson() const {
  std::string Out = "{\"seed\":";
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%llu", (unsigned long long)Seed);
  Out += Buf;
  Out += ",\"faults\":[";
  for (size_t I = 0; I < Faults.size(); ++I) {
    const FaultSpec &S = Faults[I];
    if (I)
      Out += ',';
    Out += "{\"kind\":\"";
    Out += faultKindName(S.Kind);
    Out += '"';
    appendField(Out, "start_ms", S.Start.millis(), 0.0);
    appendField(Out, "duration_ms", S.Length.millis(), 0.0);
    appendField(Out, "cap_mhz", double(S.CapMHz), 0.0);
    appendField(Out, "fail_prob", S.FailProb, 0.0);
    appendField(Out, "extra_delay_us", S.ExtraDelay.micros(), 0.0);
    appendField(Out, "drop_prob", S.DropProb, 0.0);
    appendField(Out, "sigma_watts", S.SigmaWatts, 0.0);
    appendField(Out, "spike_prob", S.SpikeProb, 0.0);
    appendField(Out, "spike_scale", S.SpikeScale, 1.0);
    appendField(Out, "jitter_ms", S.JitterMax.millis(), 0.0);
    appendField(Out, "mislabel_prob", S.MislabelProb, 0.0);
    appendField(Out, "target_scale", S.TargetScale, 1.0);
    if (S.FlipType)
      Out += ",\"flip_type\":true";
    Out += '}';
  }
  Out += "]}";
  return Out;
}

std::optional<FaultPlan> FaultPlan::fromJson(const std::string &Text,
                                             std::string *Error) {
  auto Fail = [&](const std::string &Msg) -> std::optional<FaultPlan> {
    if (Error)
      *Error = Msg;
    return std::nullopt;
  };

  std::string ParseError;
  std::optional<json::Value> Doc = json::parse(Text, &ParseError);
  if (!Doc)
    return Fail("invalid JSON: " + ParseError);
  if (!Doc->isObject())
    return Fail("fault plan must be a JSON object");

  FaultPlan Plan;
  Plan.Seed = uint64_t(Doc->numberOr("seed", 1));

  const json::Value *Faults = Doc->get("faults");
  if (!Faults || !Faults->isArray())
    return Fail("fault plan needs a \"faults\" array");

  for (const json::Value &F : Faults->Arr) {
    if (!F.isObject())
      return Fail("each fault must be a JSON object");
    std::string KindName = F.stringOr("kind", "");
    std::optional<FaultKind> Kind = faultKindFromName(KindName);
    if (!Kind)
      return Fail("unknown fault kind \"" + KindName + "\"");

    FaultSpec S;
    S.Kind = *Kind;
    S.Start = Duration::fromMillis(F.numberOr("start_ms", 0.0));
    S.Length = Duration::fromMillis(F.numberOr("duration_ms", 0.0));
    S.CapMHz = unsigned(F.numberOr("cap_mhz", 0.0));
    S.FailProb = F.numberOr("fail_prob", 0.0);
    S.ExtraDelay =
        Duration::nanoseconds(int64_t(F.numberOr("extra_delay_us", 0.0) * 1e3));
    S.DropProb = F.numberOr("drop_prob", 0.0);
    S.SigmaWatts = F.numberOr("sigma_watts", 0.0);
    S.SpikeProb = F.numberOr("spike_prob", 0.0);
    S.SpikeScale = F.numberOr("spike_scale", 1.0);
    S.JitterMax = Duration::fromMillis(F.numberOr("jitter_ms", 0.0));
    S.MislabelProb = F.numberOr("mislabel_prob", 0.0);
    S.TargetScale = F.numberOr("target_scale", 1.0);
    if (const json::Value *Flip = F.get("flip_type"))
      S.FlipType = Flip->B;

    if (S.Start.isNegative() || S.Length.isNegative())
      return Fail("fault windows cannot start or extend before the origin");
    if (S.Kind == FaultKind::ThermalThrottle && S.CapMHz == 0)
      return Fail("thermal_throttle needs cap_mhz > 0");

    Plan.Faults.push_back(S);
  }
  return Plan;
}

namespace {

FaultSpec thermalSpec() {
  FaultSpec S;
  S.Kind = FaultKind::ThermalThrottle;
  S.Start = Duration::seconds(2);
  S.Length = Duration::seconds(12);
  S.CapMHz = 1000;
  return S;
}

FaultSpec dvfsSpec() {
  FaultSpec S;
  S.Kind = FaultKind::DvfsFlaky;
  S.Start = Duration::seconds(1);
  S.FailProb = 0.35;
  S.ExtraDelay = Duration::microseconds(400);
  return S;
}

FaultSpec spikeSpec() {
  FaultSpec S;
  S.Kind = FaultKind::CallbackSpike;
  S.Start = Duration::seconds(1);
  S.SpikeProb = 0.45;
  S.SpikeScale = 8.0;
  return S;
}

FaultSpec vsyncSpec() {
  FaultSpec S;
  S.Kind = FaultKind::VsyncJitter;
  S.Start = Duration::seconds(1);
  // Jitter-dominant on purpose: a jittered tick is late by less than
  // one interval, so faster processing can still make the target — the
  // scenario probes the governor's headroom. Dropped ticks cost a full
  // 16.6 ms quantum that no configuration can buy back, so they stay
  // rare (they punish every governor equally).
  S.JitterMax = Duration::milliseconds(12);
  S.DropProb = 0.08;
  return S;
}

FaultSpec mislabelSpec() {
  FaultSpec S;
  S.Kind = FaultKind::AnnotationMislabel;
  S.MislabelProb = 0.7;
  S.TargetScale = 0.25;
  return S;
}

FaultSpec noiseSpec() {
  FaultSpec S;
  S.Kind = FaultKind::MeterNoise;
  S.Start = Duration::milliseconds(500);
  S.DropProb = 0.3;
  S.SigmaWatts = 0.5;
  return S;
}

} // namespace

std::optional<FaultPlan> FaultPlan::scenario(const std::string &Name,
                                             uint64_t Seed) {
  FaultPlan Plan;
  Plan.Seed = Seed;
  if (Name == "thermal") {
    Plan.Faults = {thermalSpec()};
  } else if (Name == "dvfs") {
    Plan.Faults = {dvfsSpec()};
  } else if (Name == "spikes") {
    Plan.Faults = {spikeSpec()};
  } else if (Name == "vsync") {
    Plan.Faults = {vsyncSpec()};
  } else if (Name == "mislabel") {
    Plan.Faults = {mislabelSpec()};
  } else if (Name == "noise") {
    // Pure sensor noise is QoS-neutral by construction; pair it with a
    // milder spike fault so the scenario still exercises the defense
    // path while the meter stream is distorted.
    FaultSpec Spike = spikeSpec();
    Spike.SpikeProb = 0.35;
    Spike.SpikeScale = 6.0;
    Plan.Faults = {noiseSpec(), Spike};
  } else if (Name == "mixed") {
    Plan.Faults = {thermalSpec(), dvfsSpec(), spikeSpec(), vsyncSpec(),
                   noiseSpec()};
  } else {
    return std::nullopt;
  }
  return Plan;
}

std::vector<std::string> FaultPlan::scenarioNames() {
  return {"thermal", "dvfs", "spikes", "vsync", "mislabel", "noise", "mixed"};
}

FaultPlan FaultPlan::chaosPlan(uint64_t Seed) {
  Rng R(Seed ^ 0xC4A05C4A05ull);
  FaultPlan Plan;
  Plan.Seed = Seed;

  auto randomWindow = [&](FaultSpec &S) {
    S.Start = Duration::fromMillis(double(R.uniformInt(0, 4000)));
    // Half the windows run to the end of the run; the rest are finite.
    S.Length = R.chance(0.5)
                   ? Duration::zero()
                   : Duration::fromMillis(double(R.uniformInt(2000, 10000)));
  };

  // Always include at least one QoS-perturbing family so the soak run
  // exercises the watchdog, then add 1-3 extra random specs.
  static const FaultKind Perturbing[] = {
      FaultKind::ThermalThrottle, FaultKind::DvfsFlaky,
      FaultKind::CallbackSpike, FaultKind::VsyncJitter,
      FaultKind::AnnotationMislabel};
  static const FaultKind All[] = {
      FaultKind::ThermalThrottle, FaultKind::DvfsFlaky,
      FaultKind::MeterNoise,      FaultKind::CallbackSpike,
      FaultKind::VsyncJitter,     FaultKind::AnnotationMislabel};

  auto makeSpec = [&](FaultKind Kind) {
    FaultSpec S;
    S.Kind = Kind;
    randomWindow(S);
    switch (Kind) {
    case FaultKind::ThermalThrottle:
      S.CapMHz = R.chance(0.5) ? 1000 : 1400;
      break;
    case FaultKind::DvfsFlaky:
      S.FailProb = R.uniform(0.1, 0.6);
      S.ExtraDelay = Duration::microseconds(R.uniformInt(100, 900));
      break;
    case FaultKind::MeterNoise:
      S.DropProb = R.uniform(0.1, 0.5);
      S.SigmaWatts = R.uniform(0.1, 1.0);
      break;
    case FaultKind::CallbackSpike:
      S.SpikeProb = R.uniform(0.2, 0.6);
      S.SpikeScale = R.uniform(3.0, 12.0);
      break;
    case FaultKind::VsyncJitter:
      S.JitterMax = Duration::fromMillis(R.uniform(2.0, 12.0));
      S.DropProb = R.uniform(0.1, 0.4);
      break;
    case FaultKind::AnnotationMislabel:
      S.MislabelProb = R.uniform(0.3, 0.9);
      S.TargetScale = R.uniform(0.1, 0.8);
      S.FlipType = R.chance(0.3);
      break;
    }
    return S;
  };

  Plan.Faults.push_back(makeSpec(
      Perturbing[size_t(R.uniformInt(0, int64_t(std::size(Perturbing)) - 1))]));
  int64_t Extra = R.uniformInt(1, 3);
  for (int64_t I = 0; I < Extra; ++I) {
    FaultSpec S =
        makeSpec(All[size_t(R.uniformInt(0, int64_t(std::size(All)) - 1))]);
    // Avoid duplicate families; duplicates make severity ambiguous.
    if (!Plan.hasKind(S.Kind))
      Plan.Faults.push_back(S);
  }
  return Plan;
}
