//===- faults/FaultInjector.h - Seeded fault injection ----------*- C++ -*-===//
//
// Part of the GreenWeb reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executes a FaultPlan against a running simulation. The injector
/// registers itself with the Simulator (an opaque pointer, mirroring the
/// telemetry attachment), schedules each fault's window on the virtual
/// clock when armed, and answers cheap queries from the hardware model
/// and browser pipeline:
///
///   AcmpChip     -> thermalCapMHz / sampleDvfsTransition
///   EnergyMeter  -> dropMeterSample / meterNoiseWatts
///   Browser      -> callbackCostScale / vsyncJitter / dropVsyncTick
///   Experiment   -> annotationMislabel (at page parse)
///
/// The API deliberately trades in primitives (MHz, probabilities,
/// Durations) rather than hardware types: faults sits below hw in the
/// library order, so hw can depend on it without a cycle.
///
/// Each family draws from its own Rng substream forked off the plan
/// seed, and queries draw nothing while their window is closed — so
/// adding a fault family to a plan never perturbs another family's
/// stream, and same-plan runs are byte-identical.
///
//===----------------------------------------------------------------------===//

#ifndef GREENWEB_FAULTS_FAULTINJECTOR_H
#define GREENWEB_FAULTS_FAULTINJECTOR_H

#include "faults/FaultPlan.h"
#include "sim/Simulator.h"
#include "support/Rng.h"

#include <cstdint>
#include <functional>
#include <vector>

namespace greenweb {

/// Injection counters, one per observable fault effect. Returned with
/// experiment results so chaos harnesses can report what actually
/// landed (a fault window with zero landings explains a zero delta).
struct FaultStats {
  uint64_t ThermalClamps = 0;
  uint64_t DvfsFailures = 0;
  uint64_t DvfsDelays = 0;
  uint64_t MeterDrops = 0;
  uint64_t MeterNoisySamples = 0;
  uint64_t CallbackSpikes = 0;
  uint64_t VsyncJitters = 0;
  uint64_t VsyncDrops = 0;
  uint64_t AnnotationMislabels = 0;

  uint64_t total() const {
    return ThermalClamps + DvfsFailures + DvfsDelays + MeterDrops +
           MeterNoisySamples + CallbackSpikes + VsyncJitters + VsyncDrops +
           AnnotationMislabels;
  }
};

/// See file comment.
class FaultInjector {
public:
  /// Binds to \p Sim (Simulator::setFaultInjector) for the injector's
  /// lifetime. The plan is copied. Nothing fires until arm().
  FaultInjector(Simulator &Sim, FaultPlan Plan);
  ~FaultInjector();

  FaultInjector(const FaultInjector &) = delete;
  FaultInjector &operator=(const FaultInjector &) = delete;

  const FaultPlan &plan() const { return Plan; }
  const FaultStats &stats() const { return Stats; }

  /// Schedules every fault window relative to \p Origin. Call once,
  /// when measurement starts.
  void arm(TimePoint Origin);

  /// Observer for window transitions (Began=true on open). The
  /// experiment harness uses this to re-clamp the chip when a thermal
  /// window opens mid-run.
  void addWindowListener(std::function<void(const FaultSpec &, bool Began)> L);

  /// --- Queries (hot paths; cheap when the family is inactive) ---

  /// Active thermal cap on the big cluster in MHz; 0 when none.
  unsigned thermalCapMHz() const;
  /// The chip reports that it clamped a requested configuration to the
  /// cap (telemetry + stats attribution happen here).
  void noteThermalClamp(unsigned RequestedMHz, unsigned ClampedMHz);

  enum class DvfsOutcome {
    Ok,      ///< Transition proceeds normally.
    Fail,    ///< Transition silently dropped; config unchanged.
    Delayed, ///< Transition lands but stalls ExtraDelay longer.
  };
  /// Samples the fate of a configuration transition; fills
  /// \p ExtraDelay on Delayed.
  DvfsOutcome sampleDvfsTransition(Duration &ExtraDelay);

  /// True when this meter sample should be dropped.
  bool dropMeterSample();
  /// Additive watts noise for a surviving sample (0 when inactive).
  double meterNoiseWatts();

  /// Multiplier for one input-callback cost (1.0 when inactive).
  double callbackCostScale();

  /// Extra delay for the VSync tick in display slot \p Slot (tick time
  /// divided by the VSync interval); zero when inactive. Display faults
  /// are a pure function of the slot index, not of query order, so two
  /// runs whose governors pace frames differently still see the same
  /// faulty display timeline.
  Duration vsyncJitter(int64_t Slot);
  /// True when the work-bearing VSync tick in slot \p Slot is dropped.
  bool dropVsyncTick(int64_t Slot);

  struct MislabelDecision {
    bool Mislabel = false;
    bool FlipType = false;
    double TargetScale = 1.0;
  };
  /// Samples whether the annotation on \p NodeId is mislabeled.
  /// Window-agnostic: annotations exist from parse time.
  MislabelDecision annotationMislabel(uint64_t NodeId);

private:
  /// First spec of \p Kind whose window is currently open (arm-order
  /// scan; plans are a handful of specs). Null when none.
  const FaultSpec *activeSpec(FaultKind Kind) const;
  void beginWindow(size_t Index);
  void endWindow(size_t Index);
  /// Telemetry for one discrete injection landing (low-rate events
  /// only; per-sample meter noise is counted, not logged).
  void recordInject(FaultKind Kind, const std::string &Detail, double Value);

  Simulator &Sim;
  FaultPlan Plan;
  FaultStats Stats;
  bool Armed = false;

  /// Parallel to Plan.Faults: window open?
  std::vector<bool> Active;
  /// Parallel to Plan.Faults: open telemetry span id (0 = none).
  std::vector<int64_t> WindowSpans;
  std::vector<EventHandle> Scheduled;
  std::vector<std::function<void(const FaultSpec &, bool)>> Listeners;

  // Per-family substreams (labels fixed; see FaultInjector.cpp). The
  // vsync family hashes slot indices instead of consuming a stream.
  Rng DvfsRng;
  Rng MeterRng;
  Rng SpikeRng;
  Rng MislabelRng;
};

} // namespace greenweb

#endif // GREENWEB_FAULTS_FAULTINJECTOR_H
