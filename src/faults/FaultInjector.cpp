//===- faults/FaultInjector.cpp - Seeded fault injection -------------------===//
//
// Part of the GreenWeb reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "faults/FaultInjector.h"

#include "telemetry/Telemetry.h"

#include <algorithm>
#include <cassert>

using namespace greenweb;

namespace {

// Fixed fork labels: adding a family never renumbers another family's
// substream, which would silently change existing plans' outcomes.
enum StreamLabel : uint64_t {
  StreamDvfs = 1,
  StreamMeter = 2,
  StreamSpike = 3,
  StreamVsync = 4,
  StreamMislabel = 5,
};

// splitmix64: display faults hash (seed, slot) to a decision instead of
// consuming a stream, so the faulty display timeline is identical for
// governors that pace frames differently (a pinned-peak run polls more
// ticks than an adaptive one; a stream draw per poll would hand it a
// different — and denser — fault sequence).
uint64_t hashSlot(uint64_t Seed, uint64_t Slot) {
  uint64_t X = Seed ^ (0x9E3779B97F4A7C15ull * (Slot + 1));
  X ^= X >> 30;
  X *= 0xBF58476D1CE4E5B9ull;
  X ^= X >> 27;
  X *= 0x94D049BB133111EBull;
  X ^= X >> 31;
  return X;
}

double slotUniform(uint64_t Seed, uint64_t Slot) {
  return double(hashSlot(Seed, Slot) >> 11) * 0x1.0p-53;
}

} // namespace

FaultInjector::FaultInjector(Simulator &Sim, FaultPlan PlanIn)
    : Sim(Sim), Plan(std::move(PlanIn)),
      DvfsRng(Rng(Plan.Seed).fork(StreamDvfs)),
      MeterRng(Rng(Plan.Seed).fork(StreamMeter)),
      SpikeRng(Rng(Plan.Seed).fork(StreamSpike)),
      MislabelRng(Rng(Plan.Seed).fork(StreamMislabel)) {
  Active.assign(Plan.Faults.size(), false);
  WindowSpans.assign(Plan.Faults.size(), 0);
  assert(!Sim.faultInjector() && "simulator already has a fault injector");
  Sim.setFaultInjector(this);
}

FaultInjector::~FaultInjector() {
  for (EventHandle &H : Scheduled)
    H.cancel();
  if (Sim.faultInjector() == this)
    Sim.setFaultInjector(nullptr);
}

void FaultInjector::arm(TimePoint Origin) {
  assert(!Armed && "fault injector armed twice");
  Armed = true;
  for (size_t I = 0; I < Plan.Faults.size(); ++I) {
    const FaultSpec &S = Plan.Faults[I];
    Scheduled.push_back(
        Sim.scheduleAt(Origin + S.Start, [this, I] { beginWindow(I); }));
    if (!S.Length.isZero())
      Scheduled.push_back(Sim.scheduleAt(Origin + S.Start + S.Length,
                                         [this, I] { endWindow(I); }));
  }
}

void FaultInjector::addWindowListener(
    std::function<void(const FaultSpec &, bool)> L) {
  assert(L && "null fault window listener");
  Listeners.push_back(std::move(L));
}

void FaultInjector::beginWindow(size_t Index) {
  const FaultSpec &S = Plan.Faults[Index];
  Active[Index] = true;
  if (Telemetry *T = Sim.telemetry(); T && T->enabled()) {
    // The phase="begin" record doubles as the flight recorder's
    // fault_window trigger (telemetry/FlightRecorder.h): an attached
    // recorder dumps the pre-fault ring as the window opens.
    T->recordFaultEvent({faultKindName(S.Kind), "begin", S.str(), 0.0});
    WindowSpans[Index] = T->spans().begin(
        std::string("fault:") + faultKindName(S.Kind), "faults",
        /*Root=*/0, /*Frame=*/0, /*Parent=*/0);
  }
  for (const auto &L : Listeners)
    L(S, /*Began=*/true);
}

void FaultInjector::endWindow(size_t Index) {
  const FaultSpec &S = Plan.Faults[Index];
  Active[Index] = false;
  if (Telemetry *T = Sim.telemetry(); T && T->enabled()) {
    T->recordFaultEvent({faultKindName(S.Kind), "end", S.str(), 0.0});
    if (WindowSpans[Index]) {
      T->spans().end(WindowSpans[Index]);
      WindowSpans[Index] = 0;
    }
  }
  for (const auto &L : Listeners)
    L(S, /*Began=*/false);
}

void FaultInjector::recordInject(FaultKind Kind, const std::string &Detail,
                                 double Value) {
  if (Telemetry *T = Sim.telemetry(); T && T->enabled())
    T->recordFaultEvent({faultKindName(Kind), "inject", Detail, Value});
}

const FaultSpec *FaultInjector::activeSpec(FaultKind Kind) const {
  for (size_t I = 0; I < Plan.Faults.size(); ++I)
    if (Active[I] && Plan.Faults[I].Kind == Kind)
      return &Plan.Faults[I];
  return nullptr;
}

unsigned FaultInjector::thermalCapMHz() const {
  unsigned Cap = 0;
  for (size_t I = 0; I < Plan.Faults.size(); ++I) {
    const FaultSpec &S = Plan.Faults[I];
    if (Active[I] && S.Kind == FaultKind::ThermalThrottle &&
        (Cap == 0 || S.CapMHz < Cap))
      Cap = S.CapMHz;
  }
  return Cap;
}

void FaultInjector::noteThermalClamp(unsigned RequestedMHz,
                                     unsigned ClampedMHz) {
  ++Stats.ThermalClamps;
  recordInject(FaultKind::ThermalThrottle,
               "clamped " + std::to_string(RequestedMHz) + "MHz -> " +
                   std::to_string(ClampedMHz) + "MHz",
               double(ClampedMHz));
}

FaultInjector::DvfsOutcome
FaultInjector::sampleDvfsTransition(Duration &ExtraDelay) {
  const FaultSpec *S = activeSpec(FaultKind::DvfsFlaky);
  if (!S)
    return DvfsOutcome::Ok;
  if (DvfsRng.chance(S->FailProb)) {
    ++Stats.DvfsFailures;
    recordInject(FaultKind::DvfsFlaky, "transition dropped", 0.0);
    return DvfsOutcome::Fail;
  }
  if (S->ExtraDelay.isZero())
    return DvfsOutcome::Ok;
  ExtraDelay = S->ExtraDelay;
  ++Stats.DvfsDelays;
  recordInject(FaultKind::DvfsFlaky, "transition delayed",
               S->ExtraDelay.micros());
  return DvfsOutcome::Delayed;
}

bool FaultInjector::dropMeterSample() {
  const FaultSpec *S = activeSpec(FaultKind::MeterNoise);
  if (!S || !MeterRng.chance(S->DropProb))
    return false;
  // Per-sample event at the meter rate: counted, never logged.
  ++Stats.MeterDrops;
  return true;
}

double FaultInjector::meterNoiseWatts() {
  const FaultSpec *S = activeSpec(FaultKind::MeterNoise);
  if (!S || S->SigmaWatts <= 0.0)
    return 0.0;
  ++Stats.MeterNoisySamples;
  return MeterRng.normal(0.0, S->SigmaWatts);
}

double FaultInjector::callbackCostScale() {
  const FaultSpec *S = activeSpec(FaultKind::CallbackSpike);
  if (!S || !SpikeRng.chance(S->SpikeProb))
    return 1.0;
  ++Stats.CallbackSpikes;
  recordInject(FaultKind::CallbackSpike, "callback cost spike", S->SpikeScale);
  return S->SpikeScale;
}

Duration FaultInjector::vsyncJitter(int64_t Slot) {
  const FaultSpec *S = activeSpec(FaultKind::VsyncJitter);
  if (!S || S->JitterMax.isZero())
    return Duration::zero();
  ++Stats.VsyncJitters;
  return S->JitterMax * slotUniform(Plan.Seed ^ StreamVsync, uint64_t(Slot));
}

bool FaultInjector::dropVsyncTick(int64_t Slot) {
  const FaultSpec *S = activeSpec(FaultKind::VsyncJitter);
  // Independent of the jitter draw for the same slot.
  if (!S || slotUniform(Plan.Seed ^ (StreamVsync << 8), uint64_t(Slot)) >=
                S->DropProb)
    return false;
  ++Stats.VsyncDrops;
  recordInject(FaultKind::VsyncJitter, "vsync tick dropped", 0.0);
  return true;
}

FaultInjector::MislabelDecision
FaultInjector::annotationMislabel(uint64_t NodeId) {
  // Window-agnostic: annotations are fixed at parse time, so the spec
  // applies whenever it is present in the plan at all.
  const FaultSpec *Found = nullptr;
  for (const FaultSpec &S : Plan.Faults)
    if (S.Kind == FaultKind::AnnotationMislabel) {
      Found = &S;
      break;
    }
  if (!Found || !MislabelRng.chance(Found->MislabelProb))
    return {};
  ++Stats.AnnotationMislabels;
  recordInject(FaultKind::AnnotationMislabel,
               "node " + std::to_string(NodeId) + " mislabeled",
               Found->TargetScale);
  return {true, Found->FlipType, Found->TargetScale};
}
