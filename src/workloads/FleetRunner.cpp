//===- workloads/FleetRunner.cpp - Checkpointed population runs -----------===//
//
// Part of the GreenWeb reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "workloads/FleetRunner.h"

#include "greenweb/Features.h"
#include "greenweb/Governors.h"
#include "hw/AcmpChip.h"
#include "profiling/RunMeta.h"
#include "sim/Simulator.h"
#include "support/StringUtils.h"
#include "telemetry/FlightRecorder.h"
#include "telemetry/SchedTrace.h"
#include "telemetry/Telemetry.h"
#include "workloads/ParallelRunner.h"
#include "workloads/WorkloadAssets.h"

#include <algorithm>
#include <cstdio>
#include <exception>
#include <fstream>
#include <sstream>

using namespace greenweb;

namespace {

bool readWholeFile(const std::string &Path, std::string &Out) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return false;
  std::ostringstream Buf;
  Buf << In.rdbuf();
  Out = Buf.str();
  return true;
}

/// Atomic write: the checkpoint on disk is always a complete document —
/// a crash mid-write leaves the previous checkpoint intact.
bool writeFileAtomic(const std::string &Path, const std::string &Text,
                     std::string *Error) {
  std::string Tmp = Path + ".tmp";
  {
    std::ofstream Out(Tmp, std::ios::binary | std::ios::trunc);
    if (!Out || !(Out << Text) || !Out.flush()) {
      if (Error)
        *Error = "cannot write " + Tmp;
      return false;
    }
  }
  if (std::rename(Tmp.c_str(), Path.c_str()) != 0) {
    if (Error)
      *Error = "cannot rename " + Tmp + " to " + Path;
    std::remove(Tmp.c_str());
    return false;
  }
  return true;
}

std::string blackBoxRef(uint64_t Item) {
  return formatString("item-%06llu", static_cast<unsigned long long>(Item));
}

} // namespace

bool greenweb::runFleet(const FleetPlan &Plan, const FleetRunOptions &Opts,
                        FleetRunSummary &Out, std::string *Error) {
  auto Fail = [&](const std::string &Msg) {
    if (Error)
      *Error = Msg;
    return false;
  };
  const uint64_t Items = Plan.items();
  if (Items == 0)
    return Fail("fleet plan expands to zero items");
  const uint64_t BatchSize = std::max<uint64_t>(1, Opts.BatchSize);
  const uint64_t Batches = (Items + BatchSize - 1) / BatchSize;
  const bool Durable = !Opts.CheckpointPath.empty();

  FleetCheckpoint C;
  if (Opts.Resume) {
    if (!Durable)
      return Fail("--resume needs a checkpoint path");
    std::string Text;
    if (!readWholeFile(Opts.CheckpointPath, Text))
      return Fail("cannot read checkpoint " + Opts.CheckpointPath);
    if (!FleetCheckpoint::load(Text, C, Error))
      return false;
    if (C.PlanHash != Plan.hash())
      return Fail(formatString(
          "checkpoint was written by a different plan (hash %016llx, "
          "this plan is %016llx)",
          static_cast<unsigned long long>(C.PlanHash),
          static_cast<unsigned long long>(Plan.hash())));
    if (C.ItemsTotal != Items)
      return Fail("checkpoint item count does not match the plan");
    C.ReportJson.clear(); // Rebuilt when (if) the run completes.
  } else {
    C.PlanName = Plan.Name;
    C.PlanHash = Plan.hash();
    C.BaselineGovernor = Plan.BaselineGovernor;
    C.ItemsTotal = Items;
  }

  std::ofstream Features;
  if (!Opts.FeaturesPath.empty()) {
    if (Opts.Resume)
      return Fail("feature export does not support --resume (skipped "
                  "batches would leave holes in the table)");
    Features.open(Opts.FeaturesPath, std::ios::binary | std::ios::trunc);
    if (!Features)
      return Fail("cannot write features file " + Opts.FeaturesPath);
    // Ladder size for the header: the label space is this chip's
    // config ladder, identical for every simulated device.
    size_t LadderLevels;
    {
      Simulator S;
      AcmpChip Chip(S);
      LadderLevels = buildConfigLadder(Chip).size();
    }
    Features << prof::RunMeta::current("gw-fleet --features").toJsonlLine()
             << "\n"
             << featureHeaderLine(LadderLevels) << "\n";
  }

  WarmCache Warm;
  SchedProgress Progress;
  uint64_t ExecutedBatches = 0;
  uint64_t SinceCheckpoint = 0;
  bool Stopped = false;
  Out = FleetRunSummary();

  for (uint64_t B = 0; B < Batches; ++B) {
    const uint64_t First = B * BatchSize;
    const uint64_t Count = std::min(BatchSize, Items - First);
    uint64_t Done = 0;
    for (uint64_t I = 0; I < Count; ++I)
      Done += C.done(First + I) ? 1 : 0;
    if (Done == Count) {
      Out.ItemsSkipped += Count;
      continue;
    }
    if (Done != 0)
      return Fail(formatString(
          "checkpoint is inconsistent: batch %llu is partially done "
          "(%llu of %llu items) but checkpoints only land on batch "
          "boundaries",
          static_cast<unsigned long long>(B),
          static_cast<unsigned long long>(Done),
          static_cast<unsigned long long>(Count)));
    if (Opts.MaxBatches && ExecutedBatches >= Opts.MaxBatches) {
      Stopped = true;
      break;
    }

    std::vector<FleetPlanItem> BatchItems;
    std::vector<ExperimentConfig> Configs;
    BatchItems.reserve(size_t(Count));
    Configs.reserve(size_t(Count));
    for (uint64_t I = 0; I < Count; ++I) {
      BatchItems.push_back(Plan.item(First + I));
      Configs.push_back(Plan.config(BatchItems.back()));
    }

    // Per-item fold inputs, filled by the per-job hook on worker
    // threads (distinct slots per index, so no synchronization needed).
    std::vector<RunSample> Samples(Configs.size());
    std::vector<std::string> BlackBoxes(Configs.size());
    std::vector<std::vector<FeatureRow>> FeatureSlots;
    if (Features.is_open()) {
      FeatureSlots.resize(Configs.size());
      for (size_t I = 0; I < Configs.size(); ++I)
        Configs[I].FeatureRows = &FeatureSlots[I];
    }

    Telemetry Shared; // Throwaway: per-run hubs are what we harvest.
    Shared.setLogCapacity(0);

    ParallelExperimentOptions POpts;
    POpts.Jobs = Opts.Jobs;
    POpts.SharedTel = &Shared;
    POpts.JobLogCapacity = 0;
    POpts.EnableDetectors = true;
    POpts.EnableFlightRecorder = true;
    POpts.Warm = &Warm;
    POpts.ItemLabel = [&BatchItems](size_t I) {
      return BatchItems[I].label();
    };
    POpts.ProgressLabel =
        formatString("fleet %llu/%llu",
                     static_cast<unsigned long long>(B + 1),
                     static_cast<unsigned long long>(Batches));
    if (Opts.Progress)
      POpts.Progress = &Progress;
    POpts.PerJobHook = [&Samples, &BlackBoxes](
                           size_t I, const ExperimentResult &Result,
                           Telemetry &Hub) {
      Samples[I] = makeRunSample(Result, &Hub);
      if (const FlightRecorder *FR = Hub.flightRecorder())
        if (!FR->dumps().empty())
          BlackBoxes[I] = FR->dumpsJson();
    };

    try {
      runExperimentsParallel(Configs, POpts);
    } catch (const std::exception &E) {
      return Fail(formatString("fleet batch %llu failed: %s",
                               static_cast<unsigned long long>(B),
                               E.what()));
    }

    // Feature rows append in item order, the same order the fold uses.
    if (Features.is_open())
      for (size_t I = 0; I < FeatureSlots.size(); ++I) {
        const FleetPlanItem &Item = BatchItems[I];
        for (const FeatureRow &Row : FeatureSlots[I])
          Features << featureRowLine(Row, Item.App, Item.Governor,
                                     Item.Seed)
                   << "\n";
      }

    // Fold in item order — the one order every invocation shares.
    FleetShardRollup Rollup;
    Rollup.Shard = B;
    Rollup.FirstItem = First;
    Rollup.Items = Count;
    Rollup.WorstViolationPct = -1.0;
    for (size_t I = 0; I < Samples.size(); ++I) {
      const RunSample &S = Samples[I];
      const FleetPlanItem &Item = BatchItems[I];
      C.State.Agg.addRun(S);
      C.State.noteWarmKey(Item.warmKey());
      Rollup.QosViolations += S.QosViolations;
      Rollup.Alerts += S.Alerts;
      Rollup.Joules += S.Joules;
      if (S.ViolationPct > Rollup.WorstViolationPct) {
        Rollup.WorstViolationPct = S.ViolationPct;
        Rollup.WorstItem = Item.Index;
        Rollup.WorstLabel = Item.label();
      }
      FleetWorstDevice D;
      D.Item = Item.Index;
      D.Label = Item.label();
      D.ViolationPct = S.ViolationPct;
      D.Joules = S.Joules;
      D.Alerts = S.Alerts;
      if (Durable && !BlackBoxes[I].empty())
        D.BlackBoxRef = blackBoxRef(Item.Index);
      C.State.noteDevice(std::move(D));
    }
    if (Rollup.WorstViolationPct < 0.0)
      Rollup.WorstViolationPct = 0.0;
    C.State.Shards.push_back(std::move(Rollup));

    // Persist black boxes for batch devices that made the worst-k cut.
    if (Durable)
      for (const FleetWorstDevice &D : C.State.Worst) {
        if (D.Item < First || D.Item >= First + Count ||
            D.BlackBoxRef.empty())
          continue;
        const std::string &Dump = BlackBoxes[size_t(D.Item - First)];
        if (Dump.empty())
          continue;
        writeFileAtomic(Opts.CheckpointPath + "." + D.BlackBoxRef +
                            ".blackbox.json",
                        Dump, nullptr);
      }

    for (uint64_t I = 0; I < Count; ++I)
      C.markDone(First + I);
    Out.ItemsRun += Count;
    ++ExecutedBatches;
    ++SinceCheckpoint;
    if (Durable &&
        SinceCheckpoint >= std::max(1u, Opts.CheckpointEveryBatches)) {
      if (!writeFileAtomic(Opts.CheckpointPath, C.serialize(), Error))
        return false;
      SinceCheckpoint = 0;
    }
  }

  Out.Complete = !Stopped && C.doneCount() == Items;
  if (Out.Complete) {
    FleetReport Report = FleetReport::fromCheckpoint(C);
    C.ReportJson = Report.toJson();
    Out.Report = std::move(Report);
  } else {
    Out.Report = FleetReport::fromCheckpoint(C);
  }
  if (Durable && (SinceCheckpoint > 0 || Out.Complete))
    if (!writeFileAtomic(Opts.CheckpointPath, C.serialize(), Error))
      return false;
  return true;
}
