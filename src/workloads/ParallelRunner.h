//===- workloads/ParallelRunner.h - Parallel scenario fan-out ---*- C++ -*-===//
//
// Part of the GreenWeb reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fans independent experiment configurations over a thread pool. Each
/// simulation is fully isolated — its own Simulator, hardware model,
/// browser stack, and (when requested) its own Telemetry hub — so runs
/// never share mutable state and every run produces bit-identical
/// results to a serial execution of the same config. Determinism of the
/// *aggregate* is preserved by merging per-run telemetry into the shared
/// hub in configuration index order, never completion order.
///
/// The evaluation sweeps (full_evaluation, bench_table3_apps,
/// bench_fig10_full, bench_fig11_confdist) are embarrassingly parallel:
/// a sweep is |apps| x |governors| x |seeds| independent simulations
/// whose only interaction is the final table. This runner is the one
/// place that fan-out lives.
///
//===----------------------------------------------------------------------===//

#ifndef GREENWEB_WORKLOADS_PARALLELRUNNER_H
#define GREENWEB_WORKLOADS_PARALLELRUNNER_H

#include "workloads/Experiment.h"

#include <cstddef>
#include <functional>
#include <vector>

namespace greenweb {

class SchedProgress;
class SchedTrace;
class StreamAggregator;
class Telemetry;
class WarmCache;

/// A minimal fork-join index pool: run Fn(0..Count-1) across up to
/// `jobs` threads with dynamic work handout (an atomic next-index
/// counter, so long and short simulations pack well). With one job (or
/// one item) everything runs inline on the caller thread — no thread is
/// ever spawned, which keeps single-job runs exactly as debuggable (and
/// exactly as ordered) as before the runner existed.
class ParallelRunner {
public:
  /// \p Jobs = 0 selects std::thread::hardware_concurrency (min 1).
  explicit ParallelRunner(unsigned Jobs = 0);

  unsigned jobs() const { return Jobs; }

  /// Invokes \p Fn(I) once for every I in [0, Count). Blocks until all
  /// invocations finish. \p Fn must not touch caller state without its
  /// own synchronization when jobs() > 1.
  void forEachIndex(size_t Count, const std::function<void(size_t)> &Fn);

  /// Like forEachIndex but \p Fn also receives the claiming worker id
  /// (0 = the caller thread; ids are dense in [0, min(jobs, Count))).
  /// Exception-safe: if a work item throws, no further indices are
  /// handed out, all workers are joined, and the *first* captured
  /// exception is rethrown on the caller thread — a throwing item never
  /// escapes a spawned std::thread into std::terminate.
  void forEachIndexWorker(
      size_t Count, const std::function<void(unsigned, size_t)> &Fn);

private:
  unsigned Jobs;
};

/// Options for runExperimentsParallel.
struct ParallelExperimentOptions {
  /// Worker threads; 0 = hardware concurrency, 1 = serial inline.
  unsigned Jobs = 0;
  /// When set, each run gets a private Telemetry hub whose metrics and
  /// log are merged into this hub in config index order after the whole
  /// batch completes. The configs' own Tel pointers are ignored (they
  /// would race); leave null to run without instrumentation.
  Telemetry *SharedTel = nullptr;
  /// Non-empty: run each config through runExperimentMedian over these
  /// seeds (the paper's three-run protocol). Empty: single runExperiment.
  std::vector<uint64_t> MedianSeeds;
  /// Log-record cap applied to each per-run private hub (and therefore
  /// a bound on merged log growth per run). Defaults to metrics-only,
  /// the right setting for sweeps; artifact-exporting callers re-run
  /// the chosen config serially with a full hub instead.
  size_t JobLogCapacity = 0;
  /// Optional per-run hook invoked on the worker thread after run I
  /// completes, with that run's private hub (valid only when SharedTel
  /// is set). Runs concurrently across workers; touch only the given
  /// hub and the result.
  std::function<void(size_t, const ExperimentResult &, Telemetry &)>
      PerJobHook;
  /// When set (and SharedTel is set), every per-run private hub gets
  /// the online anomaly detectors. Alert records bypass JobLogCapacity,
  /// so even a metrics-only sweep merges a complete alert stream into
  /// SharedTel — in config index order, hence deterministic.
  bool EnableDetectors = false;
  /// When set (and SharedTel is set), every per-run private hub also
  /// gets the flight recorder, so a run that trips a trigger leaves
  /// black-box dumps retrievable from its hub in PerJobHook (the fleet
  /// driver persists them as worst-device black-box refs). Ring copies
  /// are cheap; dumps only materialize on triggers.
  bool EnableFlightRecorder = false;
  /// When set, every run's headline RunSample is folded into this
  /// aggregator after the batch completes, in config index order (the
  /// streaming fleet summary; see telemetry/StreamAggregator.h). Not
  /// owned; untouched while workers run.
  StreamAggregator *Aggregator = nullptr;
  /// When set, the batch is traced: every work item records its worker
  /// id, queue-wait, run wall time, and phase breakdown into this trace
  /// (host time — see telemetry/SchedTrace.h), and the post-batch
  /// serialized merge is timed per item. With SharedTel also set, one
  /// Sched log record per item plus a batch summary record are appended
  /// to the shared hub after the merge. Opt-in precisely because the
  /// values are host wall-clock: leave null to keep every exported
  /// artifact byte-deterministic. Not owned.
  SchedTrace *Sched = nullptr;
  /// When set, a live progress line (completed/total, ETA, per-worker
  /// utilization) is rendered while the batch runs. Not owned.
  SchedProgress *Progress = nullptr;
  /// Display label for traced/progress items; defaults to
  /// "App|Governor" from the config when unset.
  std::function<std::string(size_t)> ItemLabel;
  /// Progress meter title ("sweep 3/4" beats bare numbers in a soak).
  std::string ProgressLabel = "sweep";
  /// When set, runs warm-start from this shared asset cache: each
  /// (app, seed)'s page is parsed/indexed once (on whichever worker
  /// gets there first) and every other run of it restores the snapshot.
  /// Simulated results stay bit-identical to cold runs; only host-side
  /// setup shrinks (visible in Sched items' setup_ns). Not owned; must
  /// outlive the batch. Configs' own Warm/WarmPool fields are ignored.
  WarmCache *Warm = nullptr;
};

/// Runs every config and returns results in config order (never
/// completion order). Each config executes exactly as it would serially;
/// see the file comment for the isolation and merge-order guarantees.
std::vector<ExperimentResult>
runExperimentsParallel(const std::vector<ExperimentConfig> &Configs,
                       const ParallelExperimentOptions &Opts = {});

} // namespace greenweb

#endif // GREENWEB_WORKLOADS_PARALLELRUNNER_H
