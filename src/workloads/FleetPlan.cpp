//===- workloads/FleetPlan.cpp - Population run plans ----------------------===//
//
// Part of the GreenWeb reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "workloads/FleetPlan.h"

#include "faults/FaultPlan.h"
#include "support/Json.h"
#include "support/StringUtils.h"
#include "telemetry/FleetReport.h"
#include "workloads/Apps.h"

#include <algorithm>

using namespace greenweb;

std::string FleetPlanItem::warmKey() const {
  return App + formatString("#%llu", static_cast<unsigned long long>(Seed));
}

std::string FleetPlanItem::label() const {
  return formatString("%s|%s|s%llu|%s|r%u", App.c_str(), Governor.c_str(),
                      static_cast<unsigned long long>(Seed),
                      Scenario.c_str(), unsigned(Replica));
}

uint64_t FleetPlan::items() const {
  return uint64_t(Apps.size()) * Governors.size() * Seeds.size() *
         Scenarios.size() * Replicas;
}

FleetPlanItem FleetPlan::item(uint64_t Index) const {
  FleetPlanItem It;
  It.Index = Index;
  uint64_t I = Index;
  It.Replica = uint32_t(I % Replicas);
  I /= Replicas;
  It.Scenario = Scenarios[size_t(I % Scenarios.size())];
  I /= Scenarios.size();
  It.Seed = Seeds[size_t(I % Seeds.size())];
  I /= Seeds.size();
  It.Governor = Governors[size_t(I % Governors.size())];
  I /= Governors.size();
  It.App = Apps[size_t(I)];
  return It;
}

ExperimentConfig FleetPlan::config(const FleetPlanItem &Item) const {
  ExperimentConfig C;
  C.AppName = Item.App;
  C.Mode = Mode;
  C.GovernorName = Item.Governor;
  C.Seed = Item.Seed;
  C.MicroRepetitions = MicroRepetitions;
  if (Item.Scenario == "chaos")
    C.Faults = FaultPlan::chaosPlan(Item.faultSeed());
  else if (Item.Scenario != "none")
    C.Faults = FaultPlan::scenario(Item.Scenario, Item.faultSeed());
  C.ModelPath = ModelPath;
  return C;
}

std::string FleetPlan::toJson() const {
  std::string Out = formatString(
      "{\"kind\":\"fleet_plan\",\"name\":\"%s\",\"mode\":\"%s\","
      "\"apps\":[",
      jsonEscape(Name).c_str(),
      Mode == ExperimentMode::Micro ? "micro" : "full");
  auto Names = [&Out](const std::vector<std::string> &List) {
    for (size_t I = 0; I < List.size(); ++I) {
      if (I)
        Out += ",";
      Out += formatString("\"%s\"", jsonEscape(List[I]).c_str());
    }
  };
  Names(Apps);
  Out += "],\"governors\":[";
  Names(Governors);
  Out += "],\"seeds\":[";
  for (size_t I = 0; I < Seeds.size(); ++I) {
    if (I)
      Out += ",";
    Out += formatString("%llu", static_cast<unsigned long long>(Seeds[I]));
  }
  Out += "],\"scenarios\":[";
  Names(Scenarios);
  Out += formatString("],\"replicas\":%u,\"micro_repetitions\":%u,"
                      "\"baseline_governor\":\"%s\"",
                      unsigned(Replicas), MicroRepetitions,
                      jsonEscape(BaselineGovernor).c_str());
  // Appended only when set: plans without a model keep the exact JSON
  // (and hash) they had before models existed, so old checkpoints
  // still resume.
  if (!ModelPath.empty())
    Out += formatString(",\"model\":\"%s\"", jsonEscape(ModelPath).c_str());
  Out += "}";
  return Out;
}

uint64_t FleetPlan::hash() const { return fleetHash(toJson()); }

namespace {

bool stringList(const json::Value &Doc, const char *Key,
                std::vector<std::string> &Out, std::string *Error) {
  const json::Value *V = Doc.get(Key);
  if (!V)
    return true; // Optional; caller applies defaults.
  if (!V->isArray()) {
    if (Error)
      *Error = formatString("plan field '%s' is not an array", Key);
    return false;
  }
  Out.clear();
  for (const json::Value &E : V->Arr) {
    if (!E.isString()) {
      if (Error)
        *Error = formatString("plan field '%s' holds a non-string", Key);
      return false;
    }
    Out.push_back(E.Str);
  }
  return true;
}

} // namespace

bool FleetPlan::parse(const std::string &Text, FleetPlan &Out,
                      std::string *Error) {
  auto Fail = [&](const std::string &Msg) {
    if (Error)
      *Error = Msg;
    return false;
  };
  std::string ParseError;
  auto Doc = json::parse(Text, &ParseError);
  if (!Doc || !Doc->isObject())
    return Fail("plan is not a JSON object" +
                (ParseError.empty() ? "" : " (" + ParseError + ")"));

  FleetPlan P;
  P.Name = Doc->stringOr("name", "fleet");
  std::string Mode = Doc->stringOr("mode", "micro");
  if (Mode == "micro")
    P.Mode = ExperimentMode::Micro;
  else if (Mode == "full")
    P.Mode = ExperimentMode::Full;
  else
    return Fail("plan mode must be \"micro\" or \"full\"");

  if (!stringList(*Doc, "apps", P.Apps, Error) ||
      !stringList(*Doc, "governors", P.Governors, Error) ||
      !stringList(*Doc, "scenarios", P.Scenarios, Error))
    return false;
  if (const json::Value *V = Doc->get("seeds")) {
    if (!V->isArray())
      return Fail("plan field 'seeds' is not an array");
    P.Seeds.clear();
    for (const json::Value &E : V->Arr) {
      if (!E.isNumber())
        return Fail("plan field 'seeds' holds a non-number");
      P.Seeds.push_back(uint64_t(E.Num));
    }
  }
  P.Replicas = uint32_t(Doc->numberOr("replicas", 1));
  P.MicroRepetitions = unsigned(Doc->numberOr("micro_repetitions", 8));
  P.BaselineGovernor = Doc->stringOr(
      "baseline_governor", P.Governors.empty() ? "" : P.Governors.front());
  P.ModelPath = Doc->stringOr("model", "");

  if (P.Apps.empty() || P.Governors.empty() || P.Seeds.empty())
    return Fail("plan needs non-empty apps, governors, and seeds");
  if (P.Scenarios.empty() || P.Replicas == 0)
    return Fail("plan needs at least one scenario and one replica");

  std::vector<std::string> KnownApps = allAppNames();
  for (const std::string &App : P.Apps)
    if (std::find(KnownApps.begin(), KnownApps.end(), App) ==
        KnownApps.end())
      return Fail("unknown app '" + App + "'");
  for (const std::string &Gov : P.Governors)
    if (Gov != governors::Perf && Gov != governors::Interactive &&
        Gov != governors::Ondemand && Gov != governors::Powersave &&
        Gov != governors::Ebs && Gov != governors::GreenWebI &&
        Gov != governors::GreenWebU && Gov != governors::PredictiveI &&
        Gov != governors::PredictiveU)
      return Fail("unknown governor '" + Gov + "'");
  if (P.ModelPath.empty())
    for (const std::string &Gov : P.Governors)
      if (Gov == governors::PredictiveI || Gov == governors::PredictiveU)
        return Fail("plan lists governor '" + Gov +
                    "' but has no \"model\" path");
  std::vector<std::string> KnownScenarios = FaultPlan::scenarioNames();
  for (const std::string &Sc : P.Scenarios)
    if (Sc != "none" && Sc != "chaos" &&
        std::find(KnownScenarios.begin(), KnownScenarios.end(), Sc) ==
            KnownScenarios.end())
      return Fail("unknown fault scenario '" + Sc + "'");
  if (std::find(P.Governors.begin(), P.Governors.end(),
                P.BaselineGovernor) == P.Governors.end())
    return Fail("baseline governor '" + P.BaselineGovernor +
                "' is not in the plan's governor list");
  Out = std::move(P);
  return true;
}
