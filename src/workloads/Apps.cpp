//===- workloads/Apps.cpp - Table 3 application models -----------------------===//
//
// Part of the GreenWeb reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "workloads/Apps.h"

#include "support/Rng.h"
#include "support/StringUtils.h"

#include <cassert>

using namespace greenweb;

const char *greenweb::interactionKindName(InteractionKind Kind) {
  switch (Kind) {
  case InteractionKind::Loading:
    return "Loading";
  case InteractionKind::Tapping:
    return "Tapping";
  case InteractionKind::Moving:
    return "Moving";
  }
  return "?";
}

std::vector<std::string> greenweb::allAppNames() {
  return {"BBC",    "Google",     "CamanJS",  "LZMA-JS",
          "MSN",    "Todo",       "Amazon",   "Craigslist",
          "Paper.js", "Cnet",     "Goo.ne.jp", "W3Schools"};
}

namespace {

/// Emits `Count` filler sections of `PerSection` items each; gives the
/// DOM its realistic size (style/layout costs scale with node count).
std::string fillerDom(unsigned Count, unsigned PerSection) {
  std::string Out;
  for (unsigned I = 0; I < Count; ++I) {
    Out += formatString("<div id=\"sec-%u\" class=\"section\">\n", I);
    for (unsigned J = 0; J < PerSection; ++J)
      Out += "  <div class=\"item\"><span class=\"label\">item</span>"
             "</div>\n";
    Out += "</div>\n";
  }
  return Out;
}

/// Padding comment bringing the page to a target byte size (page-load
/// parse work scales with source bytes).
std::string padTo(size_t CurrentSize, size_t TargetBytes) {
  if (CurrentSize >= TargetBytes)
    return std::string();
  std::string Pad = "<!-- ";
  Pad.append(TargetBytes - CurrentSize, 'x');
  Pad += " -->\n";
  return Pad;
}

/// A background setTimeout chain; its firings are the page's
/// non-user-triggered events (the unannotated remainder of Table 3's
/// annotation percentage).
std::string backgroundTimerScript(unsigned PeriodMs, unsigned KCycles) {
  return formatString(
      "var bgCount = 0;\n"
      "function bgTick() {\n"
      "  bgCount = bgCount + 1;\n"
      "  performWork(%u);\n"
      "  setTimeout(bgTick, %u);\n"
      "}\n"
      "setTimeout(bgTick, %u);\n",
      KCycles, PeriodMs, PeriodMs);
}

/// Tap times spread over a session with jitter.
std::vector<Duration> spreadTimes(Rng &R, unsigned Count, Duration Start,
                                  Duration End) {
  std::vector<Duration> Times;
  if (Count == 0)
    return Times;
  Duration Span = End - Start;
  for (unsigned I = 0; I < Count; ++I) {
    double Frac = (double(I) + 0.5) / double(Count);
    double JitterMs = R.uniform(-0.25, 0.25) * Span.millis() / Count;
    Times.push_back(Start + Span * Frac +
                    Duration::fromMillis(JitterMs));
  }
  return Times;
}

/// Appends a burst of touchmove events at ~30 Hz.
void appendScrollBurst(InteractionTrace &Trace, Rng &R, Duration Start,
                       unsigned Count, const std::string &TargetId) {
  Duration At = Start;
  for (unsigned I = 0; I < Count; ++I) {
    Trace.Events.push_back({At, "touchmove", TargetId});
    At += Duration::fromMillis(33.0 + R.uniform(-4.0, 4.0));
  }
}

/// Moves tap times that land inside [WindowStart, WindowStart+Width)
/// windows to just past the window: a user does not tap mid-scroll, and
/// a heavyweight tap callback would otherwise jank the scroll frames.
std::vector<Duration> avoidWindows(std::vector<Duration> Times,
                                   const std::vector<Duration> &Windows,
                                   Duration Width) {
  for (Duration &T : Times)
    for (Duration W : Windows)
      if (T >= W && T < W + Width)
        T = W + Width + Duration::fromMillis(120);
  return Times;
}

} // namespace

//===----------------------------------------------------------------------===//
// Per-app builders
//===----------------------------------------------------------------------===//

static AppDefinition makeBbc(Rng R) {
  AppDefinition App;
  App.Name = "BBC";
  // News front page: heavyweight load (Table 3: Loading, single,
  // (1, 10) s), then mixed taps and scroll bursts in the full session.
  std::string Body = "<div id=\"masthead\" class=\"hdr\">news</div>\n";
  Body += "<div id=\"feed\" ontouchmove=\"feedMove()\" "
          "onscroll=\"feedMove()\">\n" +
          fillerDom(38, 9) + "</div>\n";
  for (unsigned I = 0; I < 8; ++I)
    Body += formatString("<div id=\"nav-%u\" class=\"nav\" "
                         "onclick=\"openSection(%u)\">s</div>\n",
                         I, I);

  std::string Style = R"css(
.section { margin: 4px; }
html:QoS { onload-qos: single, long; }
#feed:QoS { ontouchmove-qos: continuous; onscroll-qos: continuous; }
)css";
  for (unsigned I = 0; I < 8; ++I)
    Style += formatString("#nav-%u:QoS { onclick-qos: single, short; }\n", I);

  std::string Script = R"js(
// Initial page build: ad auction, hydration, analytics.
performWork(200000);
var sectionsOpened = 0;
function openSection(i) {
  performWork(60000);
  var feed = document.getElementById('feed');
  feed.style.rev = '' + now();
  sectionsOpened = sectionsOpened + 1;
}
function feedMove() {
  performWork(1400); // lazy-load viewport checks
}
)js";
  Script += backgroundTimerScript(400, 400);

  std::string Html = Body + "<style>" + Style + "</style>\n<script>" +
                     Script + "</script>\n";
  Html += padTo(Html.size(), 120'000);
  App.Html = std::move(Html);

  App.MicroInteraction = InteractionKind::Loading;
  App.MicroType = QosType::Single;
  App.MicroTarget = defaultSingleLongTarget();
  App.MicroPeriod = Duration::seconds(3);

  // Full session: 86 s, 60 events including the load (Table 3).
  App.Full.SessionLength = Duration::seconds(86);
  std::vector<Duration> BbcBursts;
  for (unsigned Burst = 0; Burst < 3; ++Burst)
    BbcBursts.push_back(Duration::seconds(10 + int64_t(Burst) * 25));
  for (Duration At :
       avoidWindows(spreadTimes(R, 20, Duration::seconds(2),
                                Duration::seconds(84)),
                    BbcBursts, Duration::fromMillis(800)))
    App.Full.Events.push_back(
        {At, "click", formatString("nav-%u", unsigned(R.uniformInt(0, 7)))});
  for (Duration BurstAt : BbcBursts)
    appendScrollBurst(App.Full, R, BurstAt, 13, "feed");

  App.Complexity = {1.3, 0.08, 0.0, 1.0, 6};
  return App;
}

static AppDefinition makeGoogle(Rng R) {
  AppDefinition App;
  App.Name = "Google";
  std::string Body = "<div id=\"searchbox\" class=\"box\">q</div>\n";
  Body += "<div id=\"results\" ontouchmove=\"resultsMove()\">\n" +
          fillerDom(10, 10) + "</div>\n";
  for (unsigned I = 0; I < 6; ++I)
    Body += formatString("<div id=\"result-%u\" onclick=\"openResult()\">"
                         "r</div>\n",
                         I);

  std::string Style = R"css(
html:QoS { onload-qos: single, long; }
#results:QoS { ontouchmove-qos: continuous; }
)css";
  for (unsigned I = 0; I < 6; ++I)
    Style += formatString("#result-%u:QoS { onclick-qos: single, short; }\n",
                          I);

  std::string Script = R"js(
performWork(40000); // result rendering
function openResult() {
  performWork(25000);
  document.getElementById('results').style.rev = '' + now();
}
function resultsMove() { performWork(900); }
)js";
  Script += backgroundTimerScript(8000, 300);

  std::string Html = Body + "<style>" + Style + "</style>\n<script>" +
                     Script + "</script>\n";
  Html += padTo(Html.size(), 30'000);
  App.Html = std::move(Html);

  App.MicroInteraction = InteractionKind::Loading;
  App.MicroType = QosType::Single;
  App.MicroTarget = defaultSingleLongTarget();
  App.MicroPeriod = Duration::seconds(2);

  App.Full.SessionLength = Duration::seconds(31);
  for (Duration At : spreadTimes(R, 10, Duration::seconds(1),
                                 Duration::seconds(30)))
    App.Full.Events.push_back(
        {At, "click",
         formatString("result-%u", unsigned(R.uniformInt(0, 5)))});
  appendScrollBurst(App.Full, R, Duration::seconds(12), 15, "results");

  App.Complexity = {1.0, 0.06, 0.0, 1.0, 6};
  return App;
}

static AppDefinition makeCamanJs(Rng R) {
  AppDefinition App;
  App.Name = "CamanJS";
  // Photo-editing library demo: a tap applies a heavyweight image
  // filter (single, long: users watch a progress spinner).
  std::string Body =
      "<div id=\"canvas-area\" class=\"canvas\">img</div>\n"
      "<button id=\"filter-btn\" onclick=\"applyFilter()\">filter"
      "</button>\n" +
      fillerDom(7, 10);

  std::string Style = R"css(
html:QoS { onload-qos: single, long; }
#filter-btn:QoS { onclick-qos: single, long; }
)css";

  std::string Script = R"js(
var applied = 0;
function applyFilter() {
  performWork(400000); // per-pixel filter kernel
  applied = applied + 1;
  document.getElementById('canvas-area').style.rev = '' + applied;
}
)js";

  App.Html = Body + "<style>" + Style + "</style>\n<script>" + Script +
             "</script>\n";

  App.MicroInteraction = InteractionKind::Tapping;
  App.MicroType = QosType::Single;
  App.MicroTarget = defaultSingleLongTarget();
  App.Micro.Events.push_back({Duration::zero(), "click", "filter-btn"});
  App.Micro.SessionLength = Duration::seconds(2);
  App.MicroPeriod = Duration::seconds(3);

  App.Full.SessionLength = Duration::seconds(49);
  for (Duration At : spreadTimes(R, 23, Duration::seconds(2),
                                 Duration::seconds(48)))
    App.Full.Events.push_back({At, "click", "filter-btn"});

  App.Complexity = {0.8, 0.06, 0.0, 1.0, 6};
  return App;
}

static AppDefinition makeLzmaJs(Rng R) {
  AppDefinition App;
  App.Name = "LZMA-JS";
  std::string Body =
      "<div id=\"output\" class=\"log\">ready</div>\n"
      "<button id=\"compress-btn\" onclick=\"compress()\">compress"
      "</button>\n" +
      fillerDom(5, 10);

  std::string Style = R"css(
html:QoS { onload-qos: single, long; }
#compress-btn:QoS { onclick-qos: single, long; }
)css";

  std::string Script = R"js(
var blocks = 0;
function compress() {
  performWork(300000); // LZMA match-finding
  blocks = blocks + 1;
  document.getElementById('output').textContent = 'blocks ' + blocks;
}
)js";

  App.Html = Body + "<style>" + Style + "</style>\n<script>" + Script +
             "</script>\n";

  App.MicroInteraction = InteractionKind::Tapping;
  App.MicroType = QosType::Single;
  App.MicroTarget = defaultSingleLongTarget();
  App.Micro.Events.push_back({Duration::zero(), "click", "compress-btn"});
  App.Micro.SessionLength = Duration::seconds(2);
  App.MicroPeriod = Duration::seconds(3);

  App.Full.SessionLength = Duration::seconds(53);
  for (Duration At : spreadTimes(R, 38, Duration::seconds(1),
                                 Duration::seconds(52)))
    App.Full.Events.push_back({At, "click", "compress-btn"});

  App.Complexity = {0.6, 0.05, 0.0, 1.0, 6};
  return App;
}

static AppDefinition makeMsn(Rng R) {
  AppDefinition App;
  App.Name = "MSN";
  // Portal page: taps open stories with heavy re-rendering; users
  // expect a quick response (single, short).
  std::string Body = "<div id=\"story\" class=\"story\">story</div>\n";
  Body += "<div id=\"river\" ontouchmove=\"riverMove()\">\n" +
          fillerDom(33, 9) + "</div>\n";
  for (unsigned I = 0; I < 10; ++I)
    Body += formatString(
        "<div id=\"story-%u\" class=\"tile\" onclick=\"openStory()\">t"
        "</div>\n",
        I);

  std::string Style = R"css(
html:QoS { onload-qos: single, long; }
#river:QoS { ontouchmove-qos: continuous; }
)css";
  for (unsigned I = 0; I < 10; ++I)
    Style += formatString("#story-%u:QoS { onclick-qos: single, short; }\n",
                          I);

  std::string Script = R"js(
performWork(60000);
var reads = 0;
function openStory() {
  performWork(100000); // article hydration and relayout
  reads = reads + 1;
  document.getElementById('story').textContent = 'read ' + reads;
}
function riverMove() { performWork(1100); }
)js";
  Script += backgroundTimerScript(500, 350);

  std::string Html = Body + "<style>" + Style + "</style>\n<script>" +
                     Script + "</script>\n";
  Html += padTo(Html.size(), 60'000);
  App.Html = std::move(Html);

  App.MicroInteraction = InteractionKind::Tapping;
  App.MicroType = QosType::Single;
  App.MicroTarget = defaultSingleShortTarget();
  App.Micro.Events.push_back({Duration::zero(), "click", "story-0"});
  App.Micro.SessionLength = Duration::fromMillis(800);
  App.MicroPeriod = Duration::fromMillis(1500);

  App.Full.SessionLength = Duration::seconds(59);
  std::vector<Duration> MsnBursts;
  for (unsigned Burst = 0; Burst < 5; ++Burst)
    MsnBursts.push_back(Duration::seconds(6 + int64_t(Burst) * 11));
  for (Duration At :
       avoidWindows(spreadTimes(R, 60, Duration::seconds(1),
                                Duration::seconds(58)),
                    MsnBursts, Duration::fromMillis(800)))
    App.Full.Events.push_back(
        {At, "click",
         formatString("story-%u", unsigned(R.uniformInt(0, 9)))});
  for (Duration BurstAt : MsnBursts)
    appendScrollBurst(App.Full, R, BurstAt, 13, "river");

  App.Complexity = {1.6, 0.10, 0.0, 1.0, 6};
  return App;
}

static AppDefinition makeTodo(Rng R) {
  AppDefinition App;
  App.Name = "Todo";
  std::string Body =
      "<div id=\"list\" class=\"list\"></div>\n"
      "<button id=\"add-btn\" onclick=\"addItem()\">add</button>\n" +
      fillerDom(8, 10);

  std::string Style = R"css(
html:QoS { onload-qos: single, long; }
#add-btn:QoS { onclick-qos: single, short; }
)css";

  std::string Script = R"js(
var count = 0;
function addItem() {
  performWork(15000);
  var list = document.getElementById('list');
  var item = list.createChild('div');
  item.textContent = 'todo ' + count;
  count = count + 1;
}
)js";
  Script += backgroundTimerScript(600, 250);

  App.Html = Body + "<style>" + Style + "</style>\n<script>" + Script +
             "</script>\n";

  App.MicroInteraction = InteractionKind::Tapping;
  App.MicroType = QosType::Single;
  App.MicroTarget = defaultSingleShortTarget();
  App.Micro.Events.push_back({Duration::zero(), "click", "add-btn"});
  App.Micro.SessionLength = Duration::fromMillis(600);
  App.MicroPeriod = Duration::fromMillis(1200);

  App.Full.SessionLength = Duration::seconds(26);
  for (Duration At : spreadTimes(R, 25, Duration::seconds(1),
                                 Duration::seconds(25)))
    App.Full.Events.push_back({At, "click", "add-btn"});

  App.Complexity = {1.0, 0.06, 0.0, 1.0, 6};
  return App;
}

static AppDefinition makeAmazon(Rng R) {
  AppDefinition App;
  App.Name = "Amazon";
  // Product-list scrolling (Moving, continuous, default targets).
  std::string Body = "<div id=\"feed\" ontouchmove=\"feedMove()\" "
                     "onscroll=\"feedMove()\">\n" +
                     fillerDom(28, 9) + "</div>\n";

  std::string Style = R"css(
html:QoS { onload-qos: single, long; }
#feed:QoS { ontouchmove-qos: continuous; onscroll-qos: continuous; }
)css";

  std::string Script = R"js(
function feedMove() {
  performWork(1500); // image lazy-loading checks per scroll tick
}
)js";
  Script += backgroundTimerScript(350, 350);
  Script += formatString(
      "var bg2 = 0;\n"
      "function bgTick2() { bg2 = bg2 + 1; performWork(300); "
      "setTimeout(bgTick2, 350); }\nsetTimeout(bgTick2, 500);\n");

  App.Html = Body + "<style>" + Style + "</style>\n<script>" + Script +
             "</script>\n";

  App.MicroInteraction = InteractionKind::Moving;
  App.MicroType = QosType::Continuous;
  App.MicroTarget = defaultContinuousTarget();
  appendScrollBurst(App.Micro, R, Duration::zero(), 30, "feed");
  App.Micro.SessionLength = Duration::fromMillis(1400);
  App.MicroPeriod = Duration::seconds(2);

  App.Full.SessionLength = Duration::seconds(36);
  for (unsigned Burst = 0; Burst < 4; ++Burst)
    appendScrollBurst(App.Full, R,
                      Duration::seconds(2 + int64_t(Burst) * 9), 25,
                      "feed");

  App.Complexity = {2.0, 0.10, 0.0, 1.0, 6};
  return App;
}

static AppDefinition makeCraigslist(Rng R) {
  AppDefinition App;
  App.Name = "Craigslist";
  std::string Body = "<div id=\"listings\" ontouchmove=\"listMove()\">\n" +
                     fillerDom(14, 10) + "</div>\n";

  std::string Style = R"css(
html:QoS { onload-qos: single, long; }
#listings:QoS { ontouchmove-qos: continuous; }
)css";

  std::string Script = R"js(
function listMove() { performWork(800); }
)js";
  Script += backgroundTimerScript(6000, 250);

  App.Html = Body + "<style>" + Style + "</style>\n<script>" + Script +
             "</script>\n";

  App.MicroInteraction = InteractionKind::Moving;
  App.MicroType = QosType::Continuous;
  App.MicroTarget = defaultContinuousTarget();
  appendScrollBurst(App.Micro, R, Duration::zero(), 22, "listings");
  App.Micro.SessionLength = Duration::fromMillis(1100);
  App.MicroPeriod = Duration::seconds(2);

  App.Full.SessionLength = Duration::seconds(25);
  appendScrollBurst(App.Full, R, Duration::seconds(3), 10, "listings");
  appendScrollBurst(App.Full, R, Duration::seconds(14), 11, "listings");

  App.Complexity = {2.2, 0.10, 0.0, 1.0, 6};
  return App;
}

static AppDefinition makePaperJs(Rng R) {
  AppDefinition App;
  App.Name = "Paper.js";
  // Vector-drawing canvas driven by the Fig. 5 rAF pattern, with the
  // custom QoS targets from the paper's example (20 ms, 100 ms).
  std::string Body = "<div id=\"canvas\" ontouchmove=\"moved()\">draw"
                     "</div>\n" +
                     fillerDom(4, 10);

  std::string Style = R"css(
html:QoS { onload-qos: single, long; }
#canvas:QoS { ontouchmove-qos: continuous, 20, 100; }
)css";

  std::string Script = R"js(
var ticking = false;
function tick() {
  performWork(6000); // stroke tessellation and raster
  invalidate();
  ticking = false;
}
function moved() {
  if (!ticking) {
    ticking = true;
    requestAnimationFrame(tick);
  }
}
)js";

  App.Html = Body + "<style>" + Style + "</style>\n<script>" + Script +
             "</script>\n";

  App.MicroInteraction = InteractionKind::Moving;
  App.MicroType = QosType::Continuous;
  App.MicroTarget = {Duration::milliseconds(20), Duration::milliseconds(100)};
  appendScrollBurst(App.Micro, R, Duration::zero(), 35, "canvas");
  App.Micro.SessionLength = Duration::fromMillis(1600);
  App.MicroPeriod = Duration::seconds(2);

  App.Full.SessionLength = Duration::seconds(16);
  // 559 moves at ~35 Hz: one long continuous drawing gesture.
  {
    Duration At = Duration::fromMillis(500);
    for (unsigned I = 0; I < 559; ++I) {
      App.Full.Events.push_back({At, "touchmove", "canvas"});
      At += Duration::fromMillis(27.0 + R.uniform(-3.0, 3.0));
    }
  }

  App.Complexity = {1.3, 0.10, 0.0, 1.0, 6};
  return App;
}

static AppDefinition makeCnet(Rng R) {
  AppDefinition App;
  App.Name = "Cnet";
  // Taps expand review panels through CSS transitions (Tapping,
  // continuous); occasional frame-complexity surges reproduce the
  // usable-mode violations of Fig. 9b.
  std::string Body;
  for (unsigned I = 0; I < 6; ++I)
    Body += formatString("<div id=\"menu-%u\" class=\"panel\" "
                         "style=\"width: 100px\" "
                         "ontouchstart=\"toggle(%u)\">p</div>\n",
                         I, I);
  Body += "<div id=\"rail\" ontouchmove=\"railMove()\">\n" +
          fillerDom(26, 9) + "</div>\n";

  std::string Style = R"css(
.panel { transition: width 600ms; }
html:QoS { onload-qos: single, long; }
#rail:QoS { ontouchmove-qos: continuous; }
)css";
  for (unsigned I = 0; I < 6; ++I)
    Style += formatString(
        "#menu-%u:QoS { ontouchstart-qos: continuous; }\n", I);

  std::string Script = R"js(
var open0 = false;
function toggle(i) {
  performWork(3000);
  var m = document.getElementById('menu-' + i);
  if (open0) { m.style.width = '100px'; open0 = false; }
  else { m.style.width = '500px'; open0 = true; }
}
function railMove() { performWork(900); }
)js";
  Script += backgroundTimerScript(2500, 300);

  App.Html = Body + "<style>" + Style + "</style>\n<script>" + Script +
             "</script>\n";

  App.MicroInteraction = InteractionKind::Tapping;
  App.MicroType = QosType::Continuous;
  App.MicroTarget = defaultContinuousTarget();
  App.Micro.Events.push_back({Duration::zero(), "touchstart", "menu-0"});
  App.Micro.SessionLength = Duration::fromMillis(900);
  App.MicroPeriod = Duration::fromMillis(1500);

  App.Full.SessionLength = Duration::seconds(46);
  std::vector<Duration> CnetBursts = {Duration::seconds(12),
                                      Duration::seconds(30)};
  for (Duration At :
       avoidWindows(spreadTimes(R, 30, Duration::seconds(1),
                                Duration::seconds(45)),
                    CnetBursts, Duration::fromMillis(900)))
    App.Full.Events.push_back(
        {At, "touchstart",
         formatString("menu-%u", unsigned(R.uniformInt(0, 5)))});
  for (Duration BurstAt : CnetBursts)
    appendScrollBurst(App.Full, R, BurstAt, 14, "rail");

  App.Complexity = {2.8, 0.12, 0.012, 2.2, 5};
  return App;
}

static AppDefinition makeGoo(Rng R) {
  AppDefinition App;
  App.Name = "Goo.ne.jp";
  std::string Body;
  for (unsigned I = 0; I < 4; ++I)
    Body += formatString("<div id=\"tab-%u\" class=\"tab\" "
                         "style=\"height: 40px\" "
                         "ontouchstart=\"openTab(%u)\">t</div>\n",
                         I, I);
  Body += fillerDom(15, 10);

  std::string Style = R"css(
.tab { transition: height 400ms; }
html:QoS { onload-qos: single, long; }
)css";
  for (unsigned I = 0; I < 4; ++I)
    Style += formatString(
        "#tab-%u:QoS { ontouchstart-qos: continuous; }\n", I);

  std::string Script = R"js(
var openTabs = 0;
function openTab(i) {
  performWork(2500);
  var t = document.getElementById('tab-' + i);
  t.style.height = '300px';
  openTabs = openTabs + 1;
}
)js";

  App.Html = Body + "<style>" + Style + "</style>\n<script>" + Script +
             "</script>\n";

  App.MicroInteraction = InteractionKind::Tapping;
  App.MicroType = QosType::Continuous;
  App.MicroTarget = defaultContinuousTarget();
  App.Micro.Events.push_back({Duration::zero(), "touchstart", "tab-0"});
  App.Micro.SessionLength = Duration::fromMillis(700);
  App.MicroPeriod = Duration::fromMillis(1500);

  App.Full.SessionLength = Duration::seconds(16);
  for (Duration At : spreadTimes(R, 22, Duration::fromMillis(800),
                                 Duration::seconds(15)))
    App.Full.Events.push_back(
        {At, "touchstart",
         formatString("tab-%u", unsigned(R.uniformInt(0, 3)))});

  App.Complexity = {2.5, 0.10, 0.0, 1.0, 6};
  return App;
}

static AppDefinition makeW3Schools(Rng R) {
  AppDefinition App;
  App.Name = "W3Schools";
  // Accordion sections animated by an explicit rAF loop; strong
  // complexity surges (code-highlighting reflows) drive the paper's
  // observation about usable-mode violations.
  std::string Body;
  for (unsigned I = 0; I < 8; ++I)
    Body += formatString("<div id=\"acc-%u\" class=\"accordion\" "
                         "onclick=\"openAcc()\">a</div>\n",
                         I);
  Body += fillerDom(20, 9);

  std::string Style = R"css(
html:QoS { onload-qos: single, long; }
)css";
  for (unsigned I = 0; I < 8; ++I)
    Style += formatString("#acc-%u:QoS { onclick-qos: continuous; }\n", I);

  std::string Script = R"js(
var animEnd = 0;
function step() {
  performWork(2200);
  invalidate();
  if (now() < animEnd) {
    requestAnimationFrame(step);
  }
}
function openAcc() {
  performWork(2000);
  animEnd = now() + 500;
  requestAnimationFrame(step);
}
)js";

  App.Html = Body + "<style>" + Style + "</style>\n<script>" + Script +
             "</script>\n";

  App.MicroInteraction = InteractionKind::Tapping;
  App.MicroType = QosType::Continuous;
  App.MicroTarget = defaultContinuousTarget();
  App.Micro.Events.push_back({Duration::zero(), "click", "acc-0"});
  App.Micro.SessionLength = Duration::fromMillis(800);
  App.MicroPeriod = Duration::fromMillis(1500);

  App.Full.SessionLength = Duration::seconds(64);
  for (Duration At : spreadTimes(R, 58, Duration::seconds(1),
                                 Duration::seconds(63)))
    App.Full.Events.push_back(
        {At, "click", formatString("acc-%u", unsigned(R.uniformInt(0, 7)))});

  App.Complexity = {2.8, 0.12, 0.02, 2.2, 6};
  return App;
}

AppDefinition greenweb::makeApp(const std::string &Name, uint64_t Seed) {
  Rng R(Seed ^ 0xA5F00Dull);
  if (Name == "BBC")
    return makeBbc(R.fork(1));
  if (Name == "Google")
    return makeGoogle(R.fork(2));
  if (Name == "CamanJS")
    return makeCamanJs(R.fork(3));
  if (Name == "LZMA-JS")
    return makeLzmaJs(R.fork(4));
  if (Name == "MSN")
    return makeMsn(R.fork(5));
  if (Name == "Todo")
    return makeTodo(R.fork(6));
  if (Name == "Amazon")
    return makeAmazon(R.fork(7));
  if (Name == "Craigslist")
    return makeCraigslist(R.fork(8));
  if (Name == "Paper.js")
    return makePaperJs(R.fork(9));
  if (Name == "Cnet")
    return makeCnet(R.fork(10));
  if (Name == "Goo.ne.jp")
    return makeGoo(R.fork(11));
  if (Name == "W3Schools")
    return makeW3Schools(R.fork(12));
  assert(false && "unknown application name");
  return AppDefinition();
}
