//===- workloads/TraceIo.cpp - interaction trace (de)serialization -----------===//
//
// Part of the GreenWeb reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "workloads/TraceIo.h"

#include "dom/Dom.h"
#include "support/StringUtils.h"

#include <algorithm>

using namespace greenweb;

std::string greenweb::serializeTrace(const InteractionTrace &Trace) {
  std::string Out = "# GreenWeb interaction trace\n";
  Out += formatString("session %.3f\n", Trace.SessionLength.millis());
  for (const TraceEvent &Event : Trace.Events)
    Out += formatString(
        "%.3f %s %s\n", Event.At.millis(), Event.Type.c_str(),
        Event.TargetId.empty() ? "-" : Event.TargetId.c_str());
  return Out;
}

TraceParseResult greenweb::parseTrace(std::string_view Text) {
  TraceParseResult Result;
  unsigned LineNo = 0;
  bool HaveSession = false;

  for (std::string_view Line : split(Text, '\n')) {
    ++LineNo;
    std::string_view Trimmed = trim(Line);
    if (Trimmed.empty() || Trimmed.front() == '#')
      continue;

    std::vector<std::string_view> Fields = splitTrimmed(Trimmed, ' ');
    if (Fields.size() == 2 && Fields[0] == "session") {
      std::optional<double> Ms = parseDouble(Fields[1]);
      if (!Ms || *Ms < 0.0) {
        Result.Diagnostics.push_back(formatString(
            "line %u: invalid session length '%s'", LineNo,
            std::string(Fields[1]).c_str()));
        continue;
      }
      Result.Trace.SessionLength = Duration::fromMillis(*Ms);
      HaveSession = true;
      continue;
    }

    if (Fields.size() != 3) {
      Result.Diagnostics.push_back(formatString(
          "line %u: expected '<ms> <event> <target>', found %zu fields",
          LineNo, Fields.size()));
      continue;
    }
    std::optional<double> Ms = parseDouble(Fields[0]);
    if (!Ms || *Ms < 0.0) {
      Result.Diagnostics.push_back(
          formatString("line %u: invalid time '%s'", LineNo,
                       std::string(Fields[0]).c_str()));
      continue;
    }
    std::string Type = toLower(Fields[1]);
    if (!isUserInputEvent(Type)) {
      Result.Diagnostics.push_back(formatString(
          "line %u: '%s' is not a user input event", LineNo,
          Type.c_str()));
      continue;
    }
    TraceEvent Event;
    Event.At = Duration::fromMillis(*Ms);
    Event.Type = std::move(Type);
    if (Fields[2] != "-")
      Event.TargetId = std::string(Fields[2]);
    Result.Trace.Events.push_back(std::move(Event));
  }

  std::stable_sort(Result.Trace.Events.begin(), Result.Trace.Events.end(),
                   [](const TraceEvent &A, const TraceEvent &B) {
                     return A.At < B.At;
                   });
  if (!HaveSession && !Result.Trace.Events.empty())
    Result.Trace.SessionLength = Result.Trace.Events.back().At;
  return Result;
}
