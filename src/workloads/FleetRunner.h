//===- workloads/FleetRunner.h - Checkpointed population runs ---*- C++ -*-===//
//
// Part of the GreenWeb reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Drives a FleetPlan to completion in batches over ParallelRunner,
/// folding every finished item into a FleetState and writing a durable
/// FleetCheckpoint at batch boundaries (atomic tmp+rename, so the file
/// on disk is always a complete checkpoint at a boundary). A killed run
/// resumes with Resume=true: fully-done batches are skipped and folding
/// continues from the saved state, finishing with a FleetReport that is
/// byte-identical to the uninterrupted run's — the fold order is item
/// order, the state round-trips exactly, and nothing host-timed ever
/// enters it.
///
/// Each batch runs with per-item private telemetry hubs, the online
/// anomaly detectors, the flight recorder (black-box dumps of worst
/// devices persist next to the checkpoint), and a fleet-wide WarmCache
/// so every (app, seed) page is built once per process.
///
//===----------------------------------------------------------------------===//

#ifndef GREENWEB_WORKLOADS_FLEETRUNNER_H
#define GREENWEB_WORKLOADS_FLEETRUNNER_H

#include "telemetry/FleetReport.h"
#include "workloads/FleetPlan.h"

#include <cstdint>
#include <string>

namespace greenweb {

/// Options for runFleet.
struct FleetRunOptions {
  /// Worker threads per batch; 0 = hardware concurrency.
  unsigned Jobs = 0;
  /// Items per batch (the checkpoint granularity). A batch is the unit
  /// of progress: the bitmap only ever shows whole batches done.
  uint64_t BatchSize = 64;
  /// Write the checkpoint every N completed batches (and always when
  /// the run finishes or stops). 1 = after every batch.
  unsigned CheckpointEveryBatches = 1;
  /// Checkpoint file path; empty runs without durability (no resume,
  /// no black-box files).
  std::string CheckpointPath;
  /// Load CheckpointPath and skip completed batches. Missing file is an
  /// error — resuming nothing usually means a typo'd path.
  bool Resume = false;
  /// Stop this invocation after executing N batches (0 = run to
  /// completion). Controlled preemption: the kill-and-resume tests use
  /// it to stop at an exact boundary without process games.
  uint64_t MaxBatches = 0;
  /// Render a live progress meter (stderr, TTY-aware).
  bool Progress = false;
  /// When set, export one labeled feature row per annotated frame
  /// across every executed item into this JSONL file (the gw-train
  /// training-data factory). Rows append in item order, so the table is
  /// deterministic for a fixed plan. Incompatible with Resume — skipped
  /// batches would leave silent holes in the table.
  std::string FeaturesPath;
};

/// What one runFleet invocation did.
struct FleetRunSummary {
  FleetReport Report;
  uint64_t ItemsRun = 0;     ///< Items executed by this invocation.
  uint64_t ItemsSkipped = 0; ///< Items skipped as already checkpointed.
  bool Complete = false;     ///< All plan items are now done.
};

/// Runs (or resumes) \p Plan. Returns false with \p Error set on
/// checkpoint mismatch/corruption, unwritable checkpoint path, or a
/// failing run.
bool runFleet(const FleetPlan &Plan, const FleetRunOptions &Opts,
              FleetRunSummary &Out, std::string *Error = nullptr);

} // namespace greenweb

#endif // GREENWEB_WORKLOADS_FLEETRUNNER_H
