//===- workloads/TraceIo.h - interaction trace (de)serialization -*- C++ -*-===//
//
// Part of the GreenWeb reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Text serialization for interaction traces, the record/replay format
/// standing in for the Mosaic tool the paper uses to remove human noise
/// (Sec. 7.1). One event per line:
///
///     # comment
///     session 36000        # session length, milliseconds
///     2000.0 touchmove feed
///     2033.5 click nav-3
///
/// Times are milliseconds from session start; the target field is the
/// element id (`-` targets the document root).
///
//===----------------------------------------------------------------------===//

#ifndef GREENWEB_WORKLOADS_TRACEIO_H
#define GREENWEB_WORKLOADS_TRACEIO_H

#include "workloads/Apps.h"

#include <string>
#include <string_view>
#include <vector>

namespace greenweb {

/// Renders a trace to the text format above.
std::string serializeTrace(const InteractionTrace &Trace);

/// Result of parsing a trace file.
struct TraceParseResult {
  InteractionTrace Trace;
  std::vector<std::string> Diagnostics;

  bool succeeded() const { return Diagnostics.empty(); }
};

/// Parses the text format. Malformed lines are skipped with
/// diagnostics; events are sorted by time. When no `session` line is
/// present the session length is the last event time.
TraceParseResult parseTrace(std::string_view Text);

} // namespace greenweb

#endif // GREENWEB_WORKLOADS_TRACEIO_H
