//===- workloads/WorkloadAssets.h - Shared warm-start assets ----*- C++ -*-===//
//
// Part of the GreenWeb reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Cross-run workload assets for warm-start sweeps. An (app, seed) pair
/// fully determines the generated page, so its parsed form — the
/// AppDefinition plus a PageSnapshot of its HTML — is built once and
/// shared read-only across every run (and every ParallelRunner worker)
/// that requests it. Runs that opt in restore-and-replay instead of
/// re-parsing: the simulated behavior and telemetry are byte-identical
/// to a cold run; only the host-side setup work is skipped.
///
//===----------------------------------------------------------------------===//

#ifndef GREENWEB_WORKLOADS_WORKLOADASSETS_H
#define GREENWEB_WORKLOADS_WORKLOADASSETS_H

#include "browser/PageSnapshot.h"
#include "workloads/Apps.h"

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>

namespace greenweb {

/// Immutable per-(app, seed) assets shared across warm-start runs.
struct PageAssets {
  std::string AppName;
  uint64_t Seed = 0;
  /// The deterministic app definition (page source + interaction traces).
  AppDefinition App;
  /// Parsed page state captured from App.Html.
  PageSnapshot Snapshot;
};

/// Builds the assets for \p AppName at \p Seed (one cold parse + index +
/// match pass).
PageAssets buildPageAssets(const std::string &AppName, uint64_t Seed);

/// Thread-safe cache of PageAssets keyed by (app, seed). Each entry is
/// built exactly once (std::call_once) even under concurrent lookups;
/// returned references stay valid for the cache's lifetime.
class WarmCache {
public:
  const PageAssets &get(const std::string &AppName, uint64_t Seed);

private:
  struct Slot {
    std::once_flag Once;
    PageAssets Assets;
  };

  std::mutex Mutex;
  std::map<std::pair<std::string, uint64_t>, std::unique_ptr<Slot>> Slots;
};

} // namespace greenweb

#endif // GREENWEB_WORKLOADS_WORKLOADASSETS_H
