//===- workloads/TelemetryArtifacts.cpp - Shared artifact flags -------------===//
//
// Part of the GreenWeb reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "workloads/TelemetryArtifacts.h"

#include "profiling/Profiler.h"
#include "profiling/RunMeta.h"
#include "support/StringUtils.h"
#include "telemetry/FlightRecorder.h"
#include "telemetry/Telemetry.h"

#include <cstdio>
#include <fstream>

using namespace greenweb;

bool TelemetryArtifactOptions::parseFlag(const std::string &Arg) {
  auto Match = [&Arg](const char *Prefix, std::string &Out) {
    size_t Len = std::string_view(Prefix).size();
    if (Arg.compare(0, Len, Prefix) != 0)
      return false;
    Out = Arg.substr(Len);
    return true;
  };
  if (Arg == "--prof") {
    Prof = true;
    return true;
  }
  if (Match("--prof-out=", ProfOut)) {
    Prof = true;
    return true;
  }
  if (Arg.compare(0, 14, "--prof-sample=") == 0) {
    ProfSampleMicros =
        uint64_t(parseInt(std::string_view(Arg).substr(14)).value_or(1000));
    Prof = true;
    return true;
  }
  if (Arg == "--alerts") {
    Alerts = true;
    return true;
  }
  return Match("--trace=", TracePath) || Match("--log=", LogPath) ||
         Match("--metrics=", MetricsPath) ||
         Match("--blackbox=", BlackboxPath);
}

void TelemetryArtifactOptions::beginRun(int Argc, char **Argv) {
  CommandLine = prof::joinCommandLine(Argc, Argv);
  if (!Prof)
    return;
  prof::start();
  if (ProfSampleMicros > 0)
    prof::startSampler(ProfSampleMicros);
}

void TelemetryArtifactOptions::configureHub(Telemetry &Tel) const {
  if (Alerts)
    Tel.enableAnomalyDetectors();
  if (!BlackboxPath.empty())
    Tel.enableFlightRecorder();
}

static void writeOne(const std::string &Path, const std::string &Content,
                     const char *What) {
  std::ofstream Out(Path);
  if (!Out) {
    std::fprintf(stderr, "error: cannot write %s to %s\n", What,
                 Path.c_str());
    return;
  }
  Out << Content;
  std::printf("wrote %s to %s\n", What, Path.c_str());
}

void greenweb::writeTelemetryArtifacts(
    const TelemetryArtifactOptions &Opts, Telemetry &Tel,
    const std::vector<FrameRecord> &Frames,
    const std::vector<ConfigInterval> &Cpu) {
  if (!Opts.any() && !Opts.Prof)
    return;
  Tel.flushSpans();
  prof::RunMeta Meta = prof::RunMeta::current(Opts.CommandLine);

  prof::Profile Prof;
  if (Opts.Prof) {
    if (Opts.ProfSampleMicros > 0)
      prof::stopSampler();
    prof::stop();
    Prof = prof::collect();
  }

  if (!Opts.TracePath.empty()) {
    std::string Trace = exportChromeTrace(Frames, Cpu, Tel);
    if (Opts.Prof) {
      // Splice the host-time tracks in before the array's closing ']'.
      std::string Host = prof::perfettoHostTrackJson(Prof);
      size_t Close = Trace.rfind(']');
      if (!Host.empty() && Close != std::string::npos)
        Trace.insert(Close, Host);
    }
    writeOne(Opts.TracePath, Trace, "chrome trace");
  }
  if (!Opts.LogPath.empty())
    writeOne(Opts.LogPath, Meta.toJsonlLine() + "\n" + Tel.log().toJsonl(),
             "telemetry event log");
  if (!Opts.MetricsPath.empty())
    writeOne(Opts.MetricsPath,
             Meta.wrapSnapshot(Tel.metrics().snapshotJson()),
             "metrics snapshot");
  if (Opts.Alerts) {
    size_t NAlerts = Tel.log().byKind(TelemetryEventKind::Alert).size();
    std::printf("online detectors emitted %zu alert(s)%s\n", NAlerts,
                Opts.LogPath.empty() ? "" : " (in the event log)");
  }
  if (!Opts.BlackboxPath.empty()) {
    const FlightRecorder *R = Tel.flightRecorder();
    if (R) {
      writeOne(Opts.BlackboxPath, Meta.wrapSnapshot(R->dumpsJson()),
               "flight-recorder black box");
      std::printf("flight recorder: %zu dump(s), %llu trigger(s)\n",
                  R->dumps().size(),
                  static_cast<unsigned long long>(R->triggers()));
    } else {
      std::fprintf(stderr,
                   "warning: --blackbox given but no flight recorder was "
                   "attached to this hub\n");
    }
  }
  if (Opts.Prof)
    prof::writeProfileFiles(Prof, Opts.ProfOut);
}
