//===- workloads/TelemetryArtifacts.cpp - Shared artifact flags -------------===//
//
// Part of the GreenWeb reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "workloads/TelemetryArtifacts.h"

#include "telemetry/Telemetry.h"

#include <cstdio>
#include <fstream>

using namespace greenweb;

bool TelemetryArtifactOptions::parseFlag(const std::string &Arg) {
  auto Match = [&Arg](const char *Prefix, std::string &Out) {
    size_t Len = std::string_view(Prefix).size();
    if (Arg.compare(0, Len, Prefix) != 0)
      return false;
    Out = Arg.substr(Len);
    return true;
  };
  return Match("--trace=", TracePath) || Match("--log=", LogPath) ||
         Match("--metrics=", MetricsPath);
}

static void writeOne(const std::string &Path, const std::string &Content,
                     const char *What) {
  std::ofstream Out(Path);
  if (!Out) {
    std::fprintf(stderr, "error: cannot write %s to %s\n", What,
                 Path.c_str());
    return;
  }
  Out << Content;
  std::printf("wrote %s to %s\n", What, Path.c_str());
}

void greenweb::writeTelemetryArtifacts(
    const TelemetryArtifactOptions &Opts, Telemetry &Tel,
    const std::vector<FrameRecord> &Frames,
    const std::vector<ConfigInterval> &Cpu) {
  if (!Opts.any())
    return;
  Tel.flushSpans();
  if (!Opts.TracePath.empty())
    writeOne(Opts.TracePath, exportChromeTrace(Frames, Cpu, Tel),
             "chrome trace");
  if (!Opts.LogPath.empty())
    writeOne(Opts.LogPath, Tel.log().toJsonl(), "telemetry event log");
  if (!Opts.MetricsPath.empty())
    writeOne(Opts.MetricsPath, Tel.metrics().snapshotJson(),
             "metrics snapshot");
}
