//===- workloads/TelemetryArtifacts.cpp - Shared artifact flags -------------===//
//
// Part of the GreenWeb reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "workloads/TelemetryArtifacts.h"

#include "profiling/Profiler.h"
#include "profiling/RunMeta.h"
#include "support/StringUtils.h"
#include "telemetry/FlightRecorder.h"
#include "telemetry/SchedTrace.h"
#include "telemetry/Telemetry.h"

#include <cstdio>
#include <fstream>
#include <string_view>

using namespace greenweb;

bool TelemetryArtifactOptions::parseFlag(const std::string &Arg) {
  auto Match = [&Arg](const char *Prefix, std::string &Out) {
    size_t Len = std::string_view(Prefix).size();
    if (Arg.compare(0, Len, Prefix) != 0)
      return false;
    Out = Arg.substr(Len);
    return true;
  };
  if (Arg == "--prof") {
    Prof = true;
    return true;
  }
  if (Match("--prof-out=", ProfOut)) {
    Prof = true;
    return true;
  }
  if (Arg.compare(0, 14, "--prof-sample=") == 0) {
    ProfSampleMicros =
        uint64_t(parseInt(std::string_view(Arg).substr(14)).value_or(1000));
    Prof = true;
    return true;
  }
  if (Arg == "--alerts") {
    Alerts = true;
    return true;
  }
  if (Arg == "--progress") {
    Progress = true;
    return true;
  }
  return Match("--trace=", TracePath) || Match("--log=", LogPath) ||
         Match("--metrics=", MetricsPath) ||
         Match("--blackbox=", BlackboxPath) ||
         Match("--sched=", SchedPath);
}

void TelemetryArtifactOptions::beginRun(int Argc, char **Argv) {
  CommandLine = prof::joinCommandLine(Argc, Argv);
  if (!Prof)
    return;
  prof::start();
  if (ProfSampleMicros > 0)
    prof::startSampler(ProfSampleMicros);
}

void TelemetryArtifactOptions::configureHub(Telemetry &Tel) const {
  if (Alerts)
    Tel.enableAnomalyDetectors();
  if (!BlackboxPath.empty())
    Tel.enableFlightRecorder();
}

// Host-time track fragments begin with ",\n" so they extend a
// non-empty JSON event array in place. When the base trace has no
// events (e.g. a metrics-only hub), the insertion point directly
// follows the array's opening '['; drop the fragment's leading comma
// so the spliced array stays valid JSON.
static void spliceBeforeClose(std::string &Trace,
                              const std::string &Fragment) {
  if (Fragment.empty())
    return;
  size_t Close = Trace.rfind(']');
  if (Close == std::string::npos)
    return;
  std::string_view Frag(Fragment);
  size_t Prev = Close == 0
                    ? std::string::npos
                    : Trace.find_last_not_of(" \t\r\n", Close - 1);
  if (Prev != std::string::npos && Trace[Prev] == '[' &&
      Frag.front() == ',')
    Frag.remove_prefix(1);
  Trace.insert(Close, Frag);
}

static void writeOne(const std::string &Path, const std::string &Content,
                     const char *What) {
  std::ofstream Out(Path);
  if (!Out) {
    std::fprintf(stderr, "error: cannot write %s to %s\n", What,
                 Path.c_str());
    return;
  }
  Out << Content;
  std::printf("wrote %s to %s\n", What, Path.c_str());
}

void greenweb::writeTelemetryArtifacts(
    const TelemetryArtifactOptions &Opts, Telemetry &Tel,
    const std::vector<FrameRecord> &Frames,
    const std::vector<ConfigInterval> &Cpu, const SchedTrace *Sched) {
  if (!Opts.SchedPath.empty() && (!Sched || !Sched->active()))
    std::fprintf(stderr, "warning: --sched given but this code path runs "
                         "no parallel sweep; no scheduler trace written\n");
  if (!Opts.any() && !Opts.Prof)
    return;
  Tel.flushSpans();
  prof::RunMeta Meta = prof::RunMeta::current(Opts.CommandLine);

  prof::Profile Prof;
  if (Opts.Prof) {
    if (Opts.ProfSampleMicros > 0)
      prof::stopSampler();
    prof::stop();
    Prof = prof::collect();
  }

  if (!Opts.TracePath.empty()) {
    std::string Trace = exportChromeTrace(Frames, Cpu, Tel);
    if (Opts.Prof)
      // Splice the host-time tracks in before the array's closing ']'.
      spliceBeforeClose(Trace, prof::perfettoHostTrackJson(Prof));
    if (Sched && Sched->active())
      // Scheduler worker timelines ride along the same way: one track
      // per sweep worker.
      spliceBeforeClose(Trace, schedPerfettoTrackJson(*Sched));
    writeOne(Opts.TracePath, Trace, "chrome trace");
  }
  if (!Opts.LogPath.empty())
    writeOne(Opts.LogPath, Meta.toJsonlLine() + "\n" + Tel.log().toJsonl(),
             "telemetry event log");
  if (!Opts.MetricsPath.empty())
    writeOne(Opts.MetricsPath,
             Meta.wrapSnapshot(Tel.metrics().snapshotJson()),
             "metrics snapshot");
  if (Opts.Alerts) {
    size_t NAlerts = Tel.log().byKind(TelemetryEventKind::Alert).size();
    std::printf("online detectors emitted %zu alert(s)%s\n", NAlerts,
                Opts.LogPath.empty() ? "" : " (in the event log)");
  }
  if (!Opts.BlackboxPath.empty()) {
    const FlightRecorder *R = Tel.flightRecorder();
    if (R) {
      writeOne(Opts.BlackboxPath, Meta.wrapSnapshot(R->dumpsJson()),
               "flight-recorder black box");
      std::printf("flight recorder: %zu dump(s), %llu trigger(s)\n",
                  R->dumps().size(),
                  static_cast<unsigned long long>(R->triggers()));
    } else {
      std::fprintf(stderr,
                   "warning: --blackbox given but no flight recorder was "
                   "attached to this hub\n");
    }
  }
  if (Opts.Prof)
    prof::writeProfileFiles(Prof, Opts.ProfOut);
}

void greenweb::writeSchedArtifact(const TelemetryArtifactOptions &Opts,
                                  const SchedTrace &Sched) {
  if (Opts.SchedPath.empty() || !Sched.active())
    return;
  SchedReport Report = SchedReport::fromTrace(Sched);
  writeOne(Opts.SchedPath, schedArtifactJson(Sched, Report),
           "scheduler trace");
}
