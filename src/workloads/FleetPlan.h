//===- workloads/FleetPlan.h - Population run plans -------------*- C++ -*-===//
//
// Part of the GreenWeb reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A FleetPlan describes a population run as a cross product: apps x
/// governors x seeds x fault scenarios x replicas. Plans parse from a
/// small JSON document, expand lazily (an item index decodes to its
/// tuple arithmetically, so a million-item plan costs nothing to hold),
/// and canonicalize back to JSON for hashing — a checkpoint remembers
/// the plan hash and refuses to resume a different plan.
///
/// Replicas model population copies of a device configuration: they
/// share the page seed (so warm assets are built once per app+seed and
/// the page is byte-identical) but perturb the fault-plan seed, so
/// replicas diverge exactly where a population does — in the
/// adversarial environment, not in the page content.
///
//===----------------------------------------------------------------------===//

#ifndef GREENWEB_WORKLOADS_FLEETPLAN_H
#define GREENWEB_WORKLOADS_FLEETPLAN_H

#include "workloads/Experiment.h"

#include <cstdint>
#include <string>
#include <vector>

namespace greenweb {

/// One decoded plan item (a single device run).
struct FleetPlanItem {
  uint64_t Index = 0;
  std::string App;
  std::string Governor;
  uint64_t Seed = 0;         ///< Page seed (shared across replicas).
  std::string Scenario;      ///< Fault scenario name, "none", or "chaos".
  uint32_t Replica = 0;

  /// Seed for the item's fault plan: the page seed perturbed per
  /// replica, so replicas see different adversarial schedules.
  uint64_t faultSeed() const { return Seed + 7919 * uint64_t(Replica); }
  /// Warm-asset cache key; items sharing it share one built asset.
  std::string warmKey() const;
  /// Display label: "App|Governor|s<seed>|<scenario>|r<replica>".
  std::string label() const;
};

/// The declarative plan; see file comment.
struct FleetPlan {
  std::string Name = "fleet";
  ExperimentMode Mode = ExperimentMode::Micro;
  std::vector<std::string> Apps;
  std::vector<std::string> Governors;
  std::vector<uint64_t> Seeds;
  /// Scenario names from FaultPlan::scenarioNames(), plus "none" (no
  /// faults) and "chaos" (FaultPlan::chaosPlan).
  std::vector<std::string> Scenarios = {"none"};
  uint32_t Replicas = 1;
  unsigned MicroRepetitions = 8;
  /// Governor the energy extrapolation compares against; defaults to
  /// the plan's first governor.
  std::string BaselineGovernor;
  /// Model JSON for Predictive governors in the plan (empty = none;
  /// such plans fail validation if they list a Predictive governor).
  std::string ModelPath;

  /// Total item count (the full cross product).
  uint64_t items() const;
  /// Decodes item \p Index (app-major nesting: app, governor, seed,
  /// scenario, replica).
  FleetPlanItem item(uint64_t Index) const;
  /// The experiment configuration for one item (telemetry/warm fields
  /// left unset; the runner owns those).
  ExperimentConfig config(const FleetPlanItem &Item) const;

  /// Canonical single-line JSON (field order fixed); hash() is the
  /// FNV-1a of exactly this string.
  std::string toJson() const;
  uint64_t hash() const;

  /// Parses and validates a plan document. Unknown apps, governors, or
  /// scenarios are errors — a fleet run should fail before its first
  /// batch, not after an hour.
  static bool parse(const std::string &Text, FleetPlan &Out,
                    std::string *Error = nullptr);
};

} // namespace greenweb

#endif // GREENWEB_WORKLOADS_FLEETPLAN_H
