//===- workloads/WorkloadAssets.cpp - Shared warm-start assets ------------===//
//
// Part of the GreenWeb reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "workloads/WorkloadAssets.h"

#include "profiling/Profiler.h"

using namespace greenweb;

PageAssets greenweb::buildPageAssets(const std::string &AppName,
                                     uint64_t Seed) {
  GW_PROF_SCOPE("workloads.build_assets");
  PageAssets Assets;
  Assets.AppName = AppName;
  Assets.Seed = Seed;
  Assets.App = makeApp(AppName, Seed);
  Assets.Snapshot = capturePageSnapshot(Assets.App.Html);
  return Assets;
}

const PageAssets &WarmCache::get(const std::string &AppName, uint64_t Seed) {
  Slot *S;
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    std::unique_ptr<Slot> &Entry = Slots[{AppName, Seed}];
    if (!Entry)
      Entry = std::make_unique<Slot>();
    S = Entry.get();
  }
  std::call_once(S->Once,
                 [&] { S->Assets = buildPageAssets(AppName, Seed); });
  return S->Assets;
}
