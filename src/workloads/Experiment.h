//===- workloads/Experiment.h - Evaluation driver ----------------*- C++ -*-===//
//
// Part of the GreenWeb reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The experiment driver behind every table and figure of Sec. 7: runs
/// one (application, governor, mode) combination through the simulated
/// stack and collects energy, per-event QoS violations, configuration
/// distribution, and switching statistics. Follows the paper's
/// protocol: experiments repeat across three seeds and the median is
/// reported (Sec. 7.1).
///
//===----------------------------------------------------------------------===//

#ifndef GREENWEB_WORKLOADS_EXPERIMENT_H
#define GREENWEB_WORKLOADS_EXPERIMENT_H

#include "browser/BrowserConfig.h"
#include "faults/FaultInjector.h"
#include "greenweb/Features.h"
#include "greenweb/GreenWebRuntime.h"
#include "workloads/Apps.h"

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace greenweb {

class Telemetry;
struct RunSample;
struct PageAssets;
class WarmCache;

/// Which half of Table 3 drives the run.
enum class ExperimentMode { Micro, Full };

/// Known governor names accepted by ExperimentConfig.
namespace governors {
inline constexpr const char *Perf = "Perf";
inline constexpr const char *Interactive = "Interactive";
inline constexpr const char *Ondemand = "Ondemand";
inline constexpr const char *Powersave = "Powersave";
inline constexpr const char *Ebs = "EBS";
inline constexpr const char *GreenWebI = "GreenWeb-I";
inline constexpr const char *GreenWebU = "GreenWeb-U";
inline constexpr const char *PredictiveI = "Predictive-I";
inline constexpr const char *PredictiveU = "Predictive-U";
} // namespace governors

/// One experiment's configuration.
struct ExperimentConfig {
  std::string AppName;
  ExperimentMode Mode = ExperimentMode::Full;
  std::string GovernorName = governors::Perf;
  uint64_t Seed = 1;
  /// Microbenchmark repetitions of the primitive interaction. Repeats
  /// let per-event profiling amortize, as in the paper's runs.
  unsigned MicroRepetitions = 8;
  /// Override GreenWeb runtime parameters (ablations). The scenario
  /// field is still forced to match the governor name.
  std::optional<GreenWebRuntime::Params> RuntimeParams;
  /// Replace the app's manual annotations with AUTOGREEN's output
  /// (ablation: annotation-source comparison).
  bool UseAutoGreenAnnotations = false;
  /// Force every annotation to a QoS type (ablation A3: what breaks
  /// when continuous is treated as single and vice versa).
  std::optional<QosType> ForceQosType;
  /// Scale every annotation's targets (ablation A2: mis-annotation; a
  /// value of 0.05 makes every target 20x tighter).
  double TargetScale = 1.0;
  /// Optional fault plan. When set (and non-empty), the run builds a
  /// FaultInjector over its simulator and arms the plan's windows at
  /// measurement start (chaos evaluation; see docs/ROBUSTNESS.md).
  std::optional<FaultPlan> Faults;
  /// Optional telemetry hub. When set (and enabled), the run's
  /// simulator, chip, governor, and browser all instrument into it, and
  /// the run's headline results are published as experiment.* gauges.
  /// Not owned; must outlive the run.
  Telemetry *Tel = nullptr;
  /// When positive (and Tel is set), DAQ-style periodic energy sampling
  /// is enabled over the measured window at this period (1 ms matches
  /// the paper's 1 kS/s), and a closing sample is taken when results
  /// are collected so the attribution ledger covers the full window.
  Duration MeterSamplePeriod = Duration::zero();
  /// Optional warm-start assets for this run's (app, seed). When set,
  /// page loads restore the shared snapshot instead of parsing —
  /// byte-identical simulated behavior, less host-side setup. Ignored
  /// (cold load) when the run rewrites the page source
  /// (UseAutoGreenAnnotations) or the assets don't match (app, seed).
  /// Not owned; must outlive the run.
  const PageAssets *Warm = nullptr;
  /// Optional warm-asset cache. When set (and Warm is null), the run
  /// fetches — building on first use — the shared assets for its
  /// (app, seed) at start, so median sweeps warm every seed. Not owned;
  /// must outlive the run. Thread-safe across parallel runs.
  WarmCache *WarmPool = nullptr;
  /// Model JSON for the Predictive governors (loaded per run). Ignored
  /// for other governors.
  std::string ModelPath;
  /// Pre-parsed model for the Predictive governors; takes precedence
  /// over ModelPath. Not owned; must outlive the run.
  const DecisionTreeModel *Model = nullptr;
  /// Confidence threshold below which the Predictive governors fall
  /// back to the LTM decision path.
  double PredictiveConfidence = 0.6;
  /// When set, a FeatureProbe observer exports one labeled training
  /// row per annotated frame into this vector (fleet training-data
  /// export). Not owned; must outlive the run.
  std::vector<FeatureRow> *FeatureRows = nullptr;
  /// Browser input event rate control (eBrowser-style coalescing).
  EventRateOptions InputRate;
};

/// Per-event measurements.
struct EventMetrics {
  uint64_t RootId = 0;
  std::string Type;
  std::string TargetId;
  bool Annotated = false;
  QosSpec Spec;
  /// Latency of each frame attributed to this event, in order. For
  /// single events this is input-to-display; for continuous events it
  /// is the per-frame production latency (BeginFrame to display), the
  /// quantity the 16.6/33.3 ms smoothness targets constrain.
  std::vector<Duration> FrameLatencies;

  /// QoS violation fraction under a scenario: single events use the
  /// response (first) frame; continuous events average over all
  /// associated frames (Sec. 7.2).
  double violationFraction(UsageScenario Scenario) const;
};

/// One experiment's results.
struct ExperimentResult {
  std::string App;
  std::string Governor;
  ExperimentMode Mode = ExperimentMode::Full;
  uint64_t Seed = 0;

  double TotalJoules = 0.0;
  double BigJoules = 0.0;
  double LittleJoules = 0.0;
  double MeasuredSeconds = 0.0;

  uint64_t InputEvents = 0;
  uint64_t AnnotatedEvents = 0;
  uint64_t Frames = 0;
  /// Input events dropped by the browser's EventRateController (zero
  /// when rate control is off or never triggered).
  uint64_t InputEventsCoalesced = 0;

  /// Aggregate violation percentage (mean over annotated events) under
  /// each scenario's targets. Perf/Interactive are scenario-agnostic
  /// policies but are scored under both targets (Sec. 7.2 note).
  double ViolationPctImperceptible = 0.0;
  double ViolationPctUsable = 0.0;

  /// Time share per ACMP configuration (Fig. 11 raw data).
  std::map<AcmpConfig, Duration> ConfigDistribution;
  uint64_t FreqSwitches = 0;
  uint64_t Migrations = 0;

  /// Table 3's annotation percentage: annotated user inputs over all
  /// events (user inputs + timers + animation-end dispatches).
  double AnnotationPct = 0.0;

  /// GreenWeb runtime counters (zero for baseline governors).
  GreenWebRuntime::Stats RuntimeStats;

  /// Injection counters (all zero without a fault plan).
  FaultStats Faults;

  std::vector<EventMetrics> Events;
  std::vector<std::string> ScriptErrors;

  /// Host-side wall time spent on setup (app generation / page parse /
  /// browser open) across the run, in nanoseconds. Diagnostic only:
  /// machine-dependent, never serialized into artifacts, excluded from
  /// determinism comparisons. Warm-start runs show this shrink.
  uint64_t SetupHostNs = 0;
};

/// Runs a single experiment.
ExperimentResult runExperiment(const ExperimentConfig &Config);

/// Runs the experiment at each seed and returns the median-energy run,
/// with scalar metrics replaced by per-metric medians (the paper's
/// three-run protocol).
ExperimentResult runExperimentMedian(ExperimentConfig Config,
                                     std::vector<uint64_t> Seeds = {1, 2,
                                                                    3});

/// The violation percentage of \p Result under \p Scenario.
double violationPct(const ExperimentResult &Result, UsageScenario Scenario);

/// Publishes \p Result's headline scalars as experiment.* gauges in
/// \p Tel's registry (latest run wins; snapshot per run to keep more).
void publishResultMetrics(const ExperimentResult &Result, Telemetry &Tel);

/// Reduces \p Result to the RunSample a StreamAggregator folds: the
/// violation percentage is scored under the governor's own scenario
/// (usable for GreenWeb-U, imperceptible otherwise), and the raw
/// violation / alert counts come from \p Tel's counters when the run
/// was instrumented (zero otherwise).
RunSample makeRunSample(const ExperimentResult &Result,
                        const Telemetry *Tel = nullptr);

} // namespace greenweb

#endif // GREENWEB_WORKLOADS_EXPERIMENT_H
