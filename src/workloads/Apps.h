//===- workloads/Apps.h - Table 3 application models -------------*- C++ -*-===//
//
// Part of the GreenWeb reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Models of the twelve applications in Table 3 of the paper (BBC,
/// Google, CamanJS, LZMA-JS, MSN, Todo, Amazon, Craigslist, Paper.js,
/// Cnet, Goo.ne.jp, W3Schools). Each app is generated as real HTML +
/// CSS (with GreenWeb annotations) + MiniScript source, plus recorded
/// LTM interaction traces — a microbenchmark trace exercising the app's
/// primitive interaction (Sec. 7.2) and a full-interaction trace whose
/// duration and event count follow Table 3 (Sec. 7.3).
///
/// The paper crawled the real sites with HTTrack and replayed recorded
/// user sessions with Mosaic; we substitute generated app models whose
/// per-category cost structure (callback weight, frame complexity,
/// animation mechanism, event mix) is tuned so each app lands in its
/// Table 3 QoS category. See DESIGN.md for the substitution argument.
///
//===----------------------------------------------------------------------===//

#ifndef GREENWEB_WORKLOADS_APPS_H
#define GREENWEB_WORKLOADS_APPS_H

#include "greenweb/Qos.h"
#include "support/Time.h"

#include <string>
#include <vector>

namespace greenweb {

/// One replayed user input.
struct TraceEvent {
  /// Offset from trace start.
  Duration At;
  /// DOM event name ("click", "touchmove", ...).
  std::string Type;
  /// Target element id (empty targets the root).
  std::string TargetId;
};

/// A recorded interaction session (Mosaic-style record/replay).
struct InteractionTrace {
  std::vector<TraceEvent> Events;
  /// Total session length (>= last event time).
  Duration SessionLength;
};

/// The three primitive LTM interactions (Fig. 2 of the paper).
enum class InteractionKind { Loading, Tapping, Moving };

const char *interactionKindName(InteractionKind Kind);

/// Frame-complexity dynamics of an app: the browser's per-frame
/// complexity multiplier is drawn as
///   Base * (1 + jitter) * (surge ? SurgeScale : 1).
struct ComplexityProfile {
  double Base = 1.0;
  /// Uniform jitter half-width (e.g. 0.1 -> multiplier in [0.9, 1.1]).
  double Jitter = 0.05;
  /// Probability that a frame starts a complexity surge.
  double SurgeProbability = 0.0;
  /// Complexity multiplier during a surge.
  double SurgeScale = 1.0;
  /// Surge length in frames.
  unsigned SurgeFrames = 6;
};

/// A fully-specified application model.
struct AppDefinition {
  std::string Name;
  /// Generated page source (HTML + <style> with GreenWeb rules +
  /// <script> with handlers).
  std::string Html;

  /// Microbenchmark: the single interaction of Table 3's left half.
  InteractionKind MicroInteraction = InteractionKind::Tapping;
  QosType MicroType = QosType::Single;
  QosTarget MicroTarget;
  /// Trace for one micro interaction (empty for Loading: the load is
  /// the interaction). Repetitions are scheduled MicroPeriod apart.
  InteractionTrace Micro;
  Duration MicroPeriod = Duration::seconds(2);

  /// Full-interaction session (Table 3 right half).
  InteractionTrace Full;

  ComplexityProfile Complexity;
};

/// All twelve Table 3 app names, in the paper's order.
std::vector<std::string> allAppNames();

/// Builds the model of one app. \p Seed controls trace jitter so runs
/// are reproducible; the paper's protocol repeats each experiment three
/// times with different seeds and reports the median.
AppDefinition makeApp(const std::string &Name, uint64_t Seed);

} // namespace greenweb

#endif // GREENWEB_WORKLOADS_APPS_H
