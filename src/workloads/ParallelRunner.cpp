//===- workloads/ParallelRunner.cpp - Parallel scenario fan-out -----------===//
//
// Part of the GreenWeb reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "workloads/ParallelRunner.h"

#include "profiling/Profiler.h"
#include "telemetry/StreamAggregator.h"
#include "telemetry/Telemetry.h"

#include <atomic>
#include <cassert>
#include <memory>
#include <thread>

using namespace greenweb;

ParallelRunner::ParallelRunner(unsigned JobsIn) : Jobs(JobsIn) {
  if (Jobs == 0) {
    Jobs = std::thread::hardware_concurrency();
    if (Jobs == 0)
      Jobs = 1;
  }
}

void ParallelRunner::forEachIndex(size_t Count,
                                  const std::function<void(size_t)> &Fn) {
  assert(Fn && "forEachIndex with null function");
  if (Count == 0)
    return;
  unsigned Workers = unsigned(std::min<size_t>(Jobs, Count));
  if (Workers <= 1) {
    for (size_t I = 0; I < Count; ++I)
      Fn(I);
    return;
  }
  std::atomic<size_t> Next{0};
  auto Drain = [&] {
    GW_PROF_SCOPE("workloads.parallel_worker");
    for (size_t I = Next.fetch_add(1); I < Count; I = Next.fetch_add(1)) {
      GW_PROF_SCOPE("workloads.parallel_item");
      Fn(I);
    }
  };
  std::vector<std::thread> Threads;
  Threads.reserve(Workers - 1);
  for (unsigned W = 1; W < Workers; ++W)
    Threads.emplace_back(Drain);
  Drain(); // The caller thread is worker 0.
  for (std::thread &T : Threads)
    T.join();
}

std::vector<ExperimentResult>
greenweb::runExperimentsParallel(const std::vector<ExperimentConfig> &Configs,
                                 const ParallelExperimentOptions &Opts) {
  std::vector<ExperimentResult> Results(Configs.size());
  // Private hubs live until the ordered merge below, even for runs that
  // finish early.
  std::vector<std::unique_ptr<Telemetry>> Hubs(
      Opts.SharedTel ? Configs.size() : 0);

  ParallelRunner Runner(Opts.Jobs);
  Runner.forEachIndex(Configs.size(), [&](size_t I) {
    ExperimentConfig Config = Configs[I];
    if (Opts.SharedTel) {
      Hubs[I] = std::make_unique<Telemetry>();
      Hubs[I]->setLogCapacity(Opts.JobLogCapacity);
      if (Opts.EnableDetectors)
        Hubs[I]->enableAnomalyDetectors();
      Config.Tel = Hubs[I].get();
    } else {
      // A caller-supplied hub would be written from several workers at
      // once; isolation is the whole contract here.
      Config.Tel = nullptr;
    }
    Results[I] = Opts.MedianSeeds.empty()
                     ? runExperiment(Config)
                     : runExperimentMedian(Config, Opts.MedianSeeds);
    if (Opts.PerJobHook && Opts.SharedTel)
      Opts.PerJobHook(I, Results[I], *Hubs[I]);
  });

  if (Opts.SharedTel) {
    // Deterministic aggregate: always config order, never completion
    // order. Counters commute, but gauges are last-wins and the merged
    // log should read like the serial sweep.
    for (size_t I = 0; I < Hubs.size(); ++I) {
      Opts.SharedTel->metrics().mergeFrom(Hubs[I]->metrics());
      for (const TelemetryRecord &R : Hubs[I]->log().records())
        Opts.SharedTel->log().append(R.Kind, R.Ts, R.Fields);
    }
  }
  if (Opts.Aggregator)
    // Config order for the same reason: RunningStat merges only differ
    // in floating-point rounding, but byte-identical summaries across
    // jobs counts are part of the determinism contract.
    for (size_t I = 0; I < Results.size(); ++I)
      Opts.Aggregator->addRun(makeRunSample(
          Results[I], Opts.SharedTel ? Hubs[I].get() : nullptr));
  return Results;
}
