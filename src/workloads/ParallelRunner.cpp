//===- workloads/ParallelRunner.cpp - Parallel scenario fan-out -----------===//
//
// Part of the GreenWeb reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "workloads/ParallelRunner.h"

#include "profiling/Profiler.h"
#include "telemetry/SchedTrace.h"
#include "telemetry/StreamAggregator.h"
#include "telemetry/Telemetry.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <chrono>
#include <memory>
#include <mutex>
#include <thread>

using namespace greenweb;

ParallelRunner::ParallelRunner(unsigned JobsIn) : Jobs(JobsIn) {
  if (Jobs == 0) {
    Jobs = std::thread::hardware_concurrency();
    if (Jobs == 0)
      Jobs = 1;
  }
}

void ParallelRunner::forEachIndex(size_t Count,
                                  const std::function<void(size_t)> &Fn) {
  assert(Fn && "forEachIndex with null function");
  forEachIndexWorker(Count, [&Fn](unsigned, size_t I) { Fn(I); });
}

void ParallelRunner::forEachIndexWorker(
    size_t Count, const std::function<void(unsigned, size_t)> &Fn) {
  assert(Fn && "forEachIndexWorker with null function");
  if (Count == 0)
    return;
  unsigned Workers = unsigned(std::min<size_t>(Jobs, Count));
  if (Workers <= 1) {
    // Inline on the caller thread: a throw propagates naturally.
    for (size_t I = 0; I < Count; ++I)
      Fn(0, I);
    return;
  }
  std::atomic<size_t> Next{0};
  std::atomic<bool> Failed{false};
  std::exception_ptr FirstError;
  std::mutex ErrorMu;
  auto Drain = [&](unsigned Worker) {
    GW_PROF_SCOPE("workloads.parallel_worker");
    for (size_t I = Next.fetch_add(1); I < Count; I = Next.fetch_add(1)) {
      // Once any item throws, stop handing out work so the batch winds
      // down quickly; items already claimed still finish.
      if (Failed.load(std::memory_order_relaxed))
        return;
      GW_PROF_SCOPE("workloads.parallel_item");
      try {
        Fn(Worker, I);
      } catch (...) {
        std::lock_guard<std::mutex> Lock(ErrorMu);
        if (!FirstError)
          FirstError = std::current_exception();
        Failed.store(true, std::memory_order_relaxed);
        return;
      }
    }
  };
  std::vector<std::thread> Threads;
  Threads.reserve(Workers - 1);
  for (unsigned W = 1; W < Workers; ++W)
    Threads.emplace_back(Drain, W);
  Drain(0); // The caller thread is worker 0.
  for (std::thread &T : Threads)
    T.join();
  if (FirstError)
    std::rethrow_exception(FirstError);
}

std::vector<ExperimentResult>
greenweb::runExperimentsParallel(const std::vector<ExperimentConfig> &Configs,
                                 const ParallelExperimentOptions &Opts) {
  std::vector<ExperimentResult> Results(Configs.size());
  // Private hubs live until the ordered merge below, even for runs that
  // finish early.
  std::vector<std::unique_ptr<Telemetry>> Hubs(
      Opts.SharedTel ? Configs.size() : 0);

  ParallelRunner Runner(Opts.Jobs);
  const bool Timed = Opts.Sched || Opts.Progress;
  const unsigned Workers =
      unsigned(std::min<size_t>(Runner.jobs(), Configs.size()));
  // One host-time base for the whole batch; with a trace attached its
  // batch stamp *is* the base so item offsets line up with batchNs().
  const auto Base = std::chrono::steady_clock::now();
  auto HostNs = [&]() -> int64_t {
    if (Opts.Sched)
      return Opts.Sched->sinceBatchBeginNs();
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now() - Base)
        .count();
  };
  auto Label = [&](size_t I) {
    if (Opts.ItemLabel)
      return Opts.ItemLabel(I);
    return Configs[I].AppName + "|" + Configs[I].GovernorName;
  };
  if (Opts.Sched)
    Opts.Sched->beginBatch(Workers, Configs.size());
  if (Opts.Progress)
    Opts.Progress->begin(Workers, Configs.size(), Opts.ProgressLabel);

  Runner.forEachIndexWorker(Configs.size(), [&](unsigned Worker, size_t I) {
    int64_t T0 = Timed ? HostNs() : 0;
    ExperimentConfig Config = Configs[I];
    if (Opts.SharedTel) {
      Hubs[I] = std::make_unique<Telemetry>();
      Hubs[I]->setLogCapacity(Opts.JobLogCapacity);
      if (Opts.EnableDetectors)
        Hubs[I]->enableAnomalyDetectors();
      if (Opts.EnableFlightRecorder)
        Hubs[I]->enableFlightRecorder();
      Config.Tel = Hubs[I].get();
    } else {
      // A caller-supplied hub would be written from several workers at
      // once; isolation is the whole contract here.
      Config.Tel = nullptr;
    }
    Config.Warm = nullptr;
    Config.WarmPool = Opts.Warm;
    int64_t T1 = Timed ? HostNs() : 0;
    Results[I] = Opts.MedianSeeds.empty()
                     ? runExperiment(Config)
                     : runExperimentMedian(Config, Opts.MedianSeeds);
    int64_t T2 = Timed ? HostNs() : 0;
    if (Opts.PerJobHook && Opts.SharedTel)
      Opts.PerJobHook(I, Results[I], *Hubs[I]);
    int64_t T3 = Timed ? HostNs() : 0;
    if (Opts.Sched) {
      SchedItem Item;
      Item.Item = I;
      Item.Worker = Worker;
      Item.Label = Label(I);
      Item.StartNs = T0;
      Item.RunNs = T3 - T0;
      // The run reports its own host-side setup (app generation, page
      // parse or snapshot restore, browser open); fold it into the
      // setup phase so warm-start savings are visible per item.
      int64_t RunSetup = int64_t(Results[I].SetupHostNs);
      RunSetup = std::min(RunSetup, T2 - T1);
      Item.SetupNs = (T1 - T0) + RunSetup;
      Item.SimNs = (T2 - T1) - RunSetup;
      Item.HookNs = T3 - T2;
      Item.HubRecords =
          Opts.SharedTel ? int64_t(Hubs[I]->log().size()) : 0;
      Opts.Sched->record(std::move(Item));
    }
    if (Opts.Progress)
      Opts.Progress->itemDone(Worker, T3 - T0);
  });

  if (Opts.Sched)
    Opts.Sched->endBatch();
  if (Opts.Progress)
    Opts.Progress->finish();

  if (Opts.SharedTel) {
    // Deterministic aggregate: always config order, never completion
    // order. Counters commute, but gauges are last-wins and the merged
    // log should read like the serial sweep. mergeLogFrom keeps the
    // live append semantics — the shared hub's log capacity applies to
    // ordinary records while Alert records keep their bypass.
    int64_t MergeBegin = Opts.Sched ? HostNs() : 0;
    for (size_t I = 0; I < Hubs.size(); ++I) {
      int64_t ItemBegin = Opts.Sched ? HostNs() : 0;
      Opts.SharedTel->metrics().mergeFrom(Hubs[I]->metrics());
      Opts.SharedTel->mergeLogFrom(Hubs[I]->log());
      if (Opts.Sched)
        Opts.Sched->noteMerge(I, HostNs() - ItemBegin,
                              int64_t(Hubs[I]->log().size()));
    }
    if (Opts.Sched)
      Opts.Sched->setMergeWindowNs(HostNs() - MergeBegin);
  }
  if (Opts.Aggregator)
    // Config order for the same reason: RunningStat merges only differ
    // in floating-point rounding, but byte-identical summaries across
    // jobs counts are part of the determinism contract.
    for (size_t I = 0; I < Results.size(); ++I)
      Opts.Aggregator->addRun(makeRunSample(
          Results[I], Opts.SharedTel ? Hubs[I].get() : nullptr));

  if (Opts.Sched && Opts.SharedTel) {
    // Opt-in Sched records: one per item plus a batch summary, appended
    // after the ordered merge so the deterministic prefix of the log is
    // untouched. Host-time fields are inherent to scheduling — callers
    // who need byte-determinism leave Opts.Sched null.
    TelemetryLog &Log = Opts.SharedTel->log();
    TimePoint Now = Opts.SharedTel->now();
    for (const SchedItem &It : Opts.Sched->items())
      Log.append(TelemetryEventKind::Sched, Now,
                 {{"event", std::string("item")},
                  {"item", int64_t(It.Item)},
                  {"worker", int64_t(It.Worker)},
                  {"label", It.Label},
                  {"start_ns", It.StartNs},
                  {"run_ns", It.RunNs},
                  {"setup_ns", It.SetupNs},
                  {"sim_ns", It.SimNs},
                  {"hook_ns", It.HookNs},
                  {"merge_ns", It.MergeNs},
                  {"hub_records", It.HubRecords}});
    SchedReport Report = SchedReport::fromTrace(*Opts.Sched);
    Log.append(TelemetryEventKind::Sched, Now,
               {{"event", std::string("batch")},
                {"workers", int64_t(Report.Workers)},
                {"items", int64_t(Report.Items)},
                {"batch_ns", Report.BatchNs},
                {"merge_ns", Report.MergeNs},
                {"makespan_ns", Report.MakespanNs},
                {"serial_sum_ns", Report.SerialSumNs},
                {"speedup", Report.Speedup},
                {"efficiency", Report.Efficiency}});
  }
  return Results;
}
