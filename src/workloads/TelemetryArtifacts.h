//===- workloads/TelemetryArtifacts.h - Shared artifact flags ----*- C++ -*-===//
//
// Part of the GreenWeb reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The shared `--trace=` / `--log=` / `--metrics=` command-line surface
/// of the example drivers, and the writer that turns an attached
/// Telemetry hub into the three on-disk artifacts gw-inspect consumes:
///
///   --trace=trace.json      enriched Chrome Trace Event timeline
///   --log=events.jsonl      structured telemetry event log (JSONL)
///   --metrics=metrics.json  metrics registry snapshot
///
/// plus the online observability switches:
///
///   --alerts                enable the EWMA/CUSUM anomaly detectors;
///                           Alert records land in the event log
///   --blackbox=box.json     enable the flight recorder and write its
///                           black-box dumps to this file
///
/// plus the host-side profiler switches shared by every driver:
///
///   --prof                  enable gw_prof scope capture
///   --prof-out=BASE         output base for profile files (implies --prof)
///   --prof-sample=MICROS    also run the timer sampler (implies --prof)
///
/// plus the sweep scheduler-observability switches:
///
///   --sched=sched.json      export the parallel-sweep scheduler trace +
///                           report (replayable via `gw-inspect sched`)
///   --progress              live progress line on stderr while a sweep
///                           runs (TTY-aware, throttled)
///
/// Logs and metrics snapshots carry a RunMeta header (schema, commit,
/// build, compiler, host threads, producing command line) so gw-diff
/// can refuse apples-to-oranges comparisons.
///
//===----------------------------------------------------------------------===//

#ifndef GREENWEB_WORKLOADS_TELEMETRYARTIFACTS_H
#define GREENWEB_WORKLOADS_TELEMETRYARTIFACTS_H

#include "browser/TraceExport.h"

#include <string>
#include <vector>

namespace greenweb {

class SchedTrace;
class Telemetry;

/// Parsed artifact destinations; empty paths mean "not requested".
struct TelemetryArtifactOptions {
  std::string TracePath;
  std::string LogPath;
  std::string MetricsPath;
  bool Alerts = false;          ///< --alerts (online anomaly detectors)
  std::string BlackboxPath;     ///< --blackbox= (flight-recorder dumps)
  bool Prof = false;            ///< --prof / --prof-out / --prof-sample
  std::string ProfOut = "gw-prof"; ///< Output base for profile files.
  uint64_t ProfSampleMicros = 0;   ///< Timer-sampler period (0 = off).
  std::string SchedPath;           ///< --sched= (scheduler trace artifact)
  bool Progress = false;           ///< --progress (live sweep meter)
  std::string CommandLine;         ///< Producing argv, for meta headers.

  /// True when at least one artifact was requested (drivers use this to
  /// decide whether to attach a telemetry hub at all). Alerts and the
  /// black box need a hub too.
  bool any() const {
    return !TracePath.empty() || !LogPath.empty() || !MetricsPath.empty() ||
           Alerts || !BlackboxPath.empty();
  }

  /// Consumes one command-line argument if it is an artifact flag
  /// (`--trace=PATH`, `--log=PATH`, `--metrics=PATH`, `--alerts`,
  /// `--blackbox=PATH`, `--prof`, `--prof-out=BASE`,
  /// `--prof-sample=MICROS`, `--sched=PATH`, `--progress`). Returns
  /// false for anything else so positional arguments pass through
  /// unchanged.
  bool parseFlag(const std::string &Arg);

  /// Records the producing command line (for artifact meta headers) and
  /// starts the host-side profiler when requested. Call once, after
  /// flag parsing and before the workload runs.
  void beginRun(int Argc, char **Argv);

  /// Arms the requested online observability on \p Tel (detectors for
  /// --alerts, flight recorder for --blackbox=). Call on each hub after
  /// construction, before the run it instruments.
  void configureHub(Telemetry &Tel) const;
};

/// Writes every requested artifact from \p Tel. Open spans are flushed
/// first (marked open=1 in the log) so the export always holds a
/// complete span DAG. \p Frames and \p Cpu feed the trace's base
/// frame/input/cpu tracks and the input->frame flow arrows; pass empty
/// vectors when only the telemetry-derived tracks matter. Each written
/// file is reported on stdout.
///
/// Logs get a leading RunMeta JSONL line and metrics snapshots a
/// leading "meta" member. When profiling was requested the profiler is
/// stopped here, its host-time spans are spliced into the Chrome trace,
/// and the profile files (<ProfOut>.collapsed/.txt/...) are written.
/// When a scheduler trace is active, \p Sched adds one Perfetto track
/// per sweep worker to the exported Chrome trace; with `--sched=` set
/// but \p Sched null (a driver code path that runs no parallel sweep) a
/// warning goes to stderr instead of silently writing nothing.
void writeTelemetryArtifacts(const TelemetryArtifactOptions &Opts,
                             Telemetry &Tel,
                             const std::vector<FrameRecord> &Frames = {},
                             const std::vector<ConfigInterval> &Cpu = {},
                             const SchedTrace *Sched = nullptr);

/// Writes the `--sched=` artifact (raw scheduler trace + embedded
/// report, replayable via `gw-inspect sched`). No-op when SchedPath is
/// empty or the trace never saw a batch.
void writeSchedArtifact(const TelemetryArtifactOptions &Opts,
                        const SchedTrace &Sched);

} // namespace greenweb

#endif // GREENWEB_WORKLOADS_TELEMETRYARTIFACTS_H
