//===- workloads/Experiment.cpp - Evaluation driver -----------------------------===//
//
// Part of the GreenWeb reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "workloads/Experiment.h"

#include "autogreen/AutoGreen.h"
#include "browser/Browser.h"
#include "greenweb/Governors.h"
#include "greenweb/PredictiveGovernor.h"
#include "hw/EnergyMeter.h"
#include "profiling/Profiler.h"
#include "support/Statistics.h"
#include "support/StringUtils.h"
#include "telemetry/StreamAggregator.h"
#include "telemetry/Telemetry.h"
#include "workloads/WorkloadAssets.h"

#include <algorithm>
#include <cassert>
#include <chrono>

using namespace greenweb;

//===----------------------------------------------------------------------===//
// EventMetrics
//===----------------------------------------------------------------------===//

double EventMetrics::violationFraction(UsageScenario Scenario) const {
  if (FrameLatencies.empty())
    return 0.0;
  Duration Target = activeTarget(Spec, Scenario);
  auto ViolationOf = [Target](Duration L) {
    if (L <= Target)
      return 0.0;
    return (L - Target).secs() / Target.secs();
  };
  if (Spec.Type == QosType::Single)
    return ViolationOf(FrameLatencies.front());
  double Sum = 0.0;
  for (Duration L : FrameLatencies)
    Sum += ViolationOf(L);
  return Sum / double(FrameLatencies.size());
}

double greenweb::violationPct(const ExperimentResult &Result,
                              UsageScenario Scenario) {
  return Scenario == UsageScenario::Imperceptible
             ? Result.ViolationPctImperceptible
             : Result.ViolationPctUsable;
}

//===----------------------------------------------------------------------===//
// Metric collection
//===----------------------------------------------------------------------===//

namespace {

/// Records per-event frame latencies against the annotation registry.
class MetricCollector : public FrameObserver {
public:
  explicit MetricCollector(const AnnotationRegistry &Registry)
      : Registry(Registry) {}

  void arm() { Armed = true; }

  void onInputDispatched(uint64_t RootId, const std::string &Type,
                         Element *Target) override {
    if (!Armed)
      return;
    EventMetrics M;
    M.RootId = RootId;
    M.Type = Type;
    M.TargetId = Target ? Target->id() : std::string();
    std::optional<QosSpec> Spec =
        Target ? Registry.lookup(*Target, Type) : std::nullopt;
    M.Annotated = Spec.has_value();
    if (Spec)
      M.Spec = *Spec;
    Index[RootId] = Events.size();
    Events.push_back(std::move(M));
  }

  void onFrameReady(const FrameRecord &Frame) override {
    if (!Armed)
      return;
    // Attribute the frame once per contributing root, at the root's
    // worst latency in this frame.
    std::map<uint64_t, Duration> Worst;
    for (const MsgLatency &L : Frame.Latencies) {
      Duration &Slot = Worst[L.Msg.RootId];
      Slot = std::max(Slot, L.Latency);
    }
    for (const auto &[Root, Latency] : Worst) {
      auto It = Index.find(Root);
      if (It == Index.end())
        continue;
      EventMetrics &M = Events[It->second];
      // Smoothness targets constrain per-frame production latency;
      // responsiveness targets constrain input-to-display latency.
      Duration Effective = M.Spec.Type == QosType::Continuous
                               ? Frame.ReadyTime - Frame.BeginTime
                               : Latency;
      M.FrameLatencies.push_back(Effective);
    }
  }

  std::vector<EventMetrics> Events;

private:
  const AnnotationRegistry &Registry;
  std::map<uint64_t, size_t> Index;
  bool Armed = false;
};

/// Frame-complexity source implementing the per-app profile (jitter
/// plus occasional surges).
class ComplexitySource {
public:
  ComplexitySource(ComplexityProfile Profile, Rng R)
      : Profile(Profile), R(R) {}

  double operator()(uint64_t /*FrameId*/) {
    double Value = Profile.Base * (1.0 + R.uniform(-Profile.Jitter,
                                                   Profile.Jitter));
    if (SurgeLeft > 0) {
      --SurgeLeft;
      return Value * Profile.SurgeScale;
    }
    if (Profile.SurgeProbability > 0.0 &&
        R.chance(Profile.SurgeProbability)) {
      SurgeLeft = Profile.SurgeFrames;
      return Value * Profile.SurgeScale;
    }
    return Value;
  }

private:
  ComplexityProfile Profile;
  Rng R;
  unsigned SurgeLeft = 0;
};

/// Removes the app's manual GreenWeb rules (lines mentioning :QoS) so
/// AUTOGREEN's generated annotations stand alone. The generated app
/// sources keep one QoS rule per line, which this relies on.
std::string stripManualAnnotations(const std::string &Html) {
  std::string Out;
  for (std::string_view Line : split(Html, '\n')) {
    if (Line.find(":QoS") != std::string_view::npos ||
        Line.find(":qos") != std::string_view::npos)
      continue;
    Out += Line;
    Out += '\n';
  }
  return Out;
}

/// Applies annotation-level ablations (type forcing, target scaling)
/// on top of a loaded registry.
void applyAnnotationAblations(const ExperimentConfig &Config,
                              AnnotationRegistry &Registry, Browser &B) {
  if (!Config.ForceQosType && Config.TargetScale == 1.0)
    return;
  // Rebuild by scanning the page's annotations and rewriting them.
  std::vector<std::pair<Element *, std::string>> Keys;
  B.document()->forEachElement([&](Element &E) {
    for (const std::string &Type : E.listenedEventTypes())
      if (Registry.lookup(E, Type))
        Keys.push_back({&E, Type});
    if (Registry.lookup(E, events::Load))
      Keys.push_back({&E, events::Load});
  });
  for (auto &[E, Type] : Keys) {
    QosSpec Spec = *Registry.lookup(*E, Type);
    if (Config.ForceQosType)
      Spec.Type = *Config.ForceQosType;
    if (Config.TargetScale != 1.0)
      Spec.Target = {Spec.Target.Imperceptible * Config.TargetScale,
                     Spec.Target.Usable * Config.TargetScale};
    Registry.annotate(*E, Type, Spec);
  }
}

/// Injected annotation mislabeling (paper Sec. 7.3 taken adversarial):
/// each annotated (element, event) pair is independently corrupted at
/// parse time. Runs after the ablations so the faults perturb whatever
/// annotation set the experiment actually uses. Document order makes
/// the element scan — and therefore the fault stream — deterministic.
void applyAnnotationFaults(FaultInjector &F, AnnotationRegistry &Registry,
                           Browser &B) {
  if (!F.plan().hasKind(FaultKind::AnnotationMislabel))
    return;
  std::vector<std::pair<Element *, std::string>> Keys;
  B.document()->forEachElement([&](Element &E) {
    for (const std::string &Type : E.listenedEventTypes())
      if (Registry.lookup(E, Type))
        Keys.push_back({&E, Type});
    if (Registry.lookup(E, events::Load))
      Keys.push_back({&E, events::Load});
  });
  for (auto &[E, Type] : Keys) {
    FaultInjector::MislabelDecision D = F.annotationMislabel(E->nodeId());
    if (!D.Mislabel)
      continue;
    QosSpec Spec = *Registry.lookup(*E, Type);
    if (D.FlipType)
      Spec.Type = Spec.Type == QosType::Single ? QosType::Continuous
                                               : QosType::Single;
    Spec.Target = {Spec.Target.Imperceptible * D.TargetScale,
                   Spec.Target.Usable * D.TargetScale};
    Registry.annotate(*E, Type, Spec);
  }
}

std::unique_ptr<Governor>
makeGovernor(const ExperimentConfig &Config, AnnotationRegistry &Registry,
             const EnergyMeter &Meter) {
  const std::string &Name = Config.GovernorName;
  if (Name == governors::Perf)
    return std::make_unique<PerfGovernor>();
  if (Name == governors::Powersave)
    return std::make_unique<PowersaveGovernor>();
  if (Name == governors::Interactive)
    return std::make_unique<InteractiveGovernor>();
  if (Name == governors::Ondemand)
    return std::make_unique<OndemandGovernor>();
  if (Name == governors::Ebs)
    return std::make_unique<EbsGovernor>();
  if (Name == governors::GreenWebI || Name == governors::GreenWebU) {
    GreenWebRuntime::Params P =
        Config.RuntimeParams.value_or(GreenWebRuntime::Params{});
    P.Scenario = Name == governors::GreenWebI
                     ? UsageScenario::Imperceptible
                     : UsageScenario::Usable;
    auto RT = std::make_unique<GreenWebRuntime>(Registry, P);
    RT->setEnergyMeter(&Meter);
    return RT;
  }
  if (Name == governors::PredictiveI || Name == governors::PredictiveU) {
    GreenWebRuntime::Params P =
        Config.RuntimeParams.value_or(GreenWebRuntime::Params{});
    P.Scenario = Name == governors::PredictiveI
                     ? UsageScenario::Imperceptible
                     : UsageScenario::Usable;
    PredictiveGovernor::Options O;
    O.ModelPath = Config.ModelPath;
    O.SharedModel = Config.Model;
    O.ConfidenceThreshold = Config.PredictiveConfidence;
    auto RT =
        std::make_unique<PredictiveGovernor>(Registry, P, std::move(O));
    RT->setEnergyMeter(&Meter);
    return RT;
  }
  assert(false && "unknown governor name");
  return nullptr;
}

/// Host wall clock for setup-phase attribution (never simulated time).
uint64_t hostNowNs() {
  return uint64_t(std::chrono::duration_cast<std::chrono::nanoseconds>(
                      std::chrono::steady_clock::now().time_since_epoch())
                      .count());
}

/// Shared state for one experiment run.
struct Harness {
  explicit Harness(const ExperimentConfig &Config)
      : Config(Config), Chip(Sim), Meter(Chip), Collector(Registry) {
    uint64_t SetupStart = hostNowNs();
    if (Config.Tel)
      Sim.setTelemetry(Config.Tel);
    if (Config.Faults && !Config.Faults->Faults.empty()) {
      Injector.emplace(Sim, *Config.Faults);
      // A throttle window opening mid-run must clamp the chip even if
      // the governor issues no new decision for a while.
      Injector->addWindowListener([this](const FaultSpec &S, bool Began) {
        if (S.Kind == FaultKind::ThermalThrottle && Began)
          Chip.enforceThermalCap();
      });
    }
    // Warm-start eligibility: the shared assets must be for exactly
    // this (app, seed) and the run must load the page source verbatim
    // (AutoGreen rewrites it, so those runs stay cold).
    Warm = Config.Warm;
    if (Warm && (Config.UseAutoGreenAnnotations ||
                 Warm->AppName != Config.AppName ||
                 Warm->Seed != Config.Seed || !Warm->Snapshot.Proto))
      Warm = nullptr;
    if (Warm) {
      App = &Warm->App;
    } else {
      OwnedApp = makeApp(Config.AppName, Config.Seed);
      App = &OwnedApp;
      Html = App->Html;
      if (Config.UseAutoGreenAnnotations) {
        AutoGreenResult Auto = runAutoGreen(Html);
        Html = stripManualAnnotations(Html) + "\n<style>\n" +
               Auto.GeneratedCss + "</style>\n";
      }
    }
    Gov = makeGovernor(Config, Registry, Meter);
    SetupHostNs += hostNowNs() - SetupStart;
  }

  /// Starts the measured window: zeroes the meter and chip stats, and
  /// (with telemetry) begins periodic energy sampling for attribution.
  void armMeasurement() {
    Meter.reset();
    Chip.resetStats();
    if (Config.Tel && Config.MeterSamplePeriod > Duration::zero())
      Meter.enableSampling(Config.MeterSamplePeriod);
    if (Injector)
      Injector->arm(Sim.now());
  }

  /// Creates a fresh browser, loads the page (restoring the shared
  /// snapshot on warm-start runs), and attaches everything.
  void openBrowser() {
    uint64_t SetupStart = hostNowNs();
    BrowserOptions Opts;
    Opts.RngSeed = Config.Seed;
    Opts.InputRate = Config.InputRate;
    B = std::make_unique<Browser>(Sim, Chip, Opts);
    auto Complexity = std::make_shared<ComplexitySource>(
        App->Complexity, Rng(Config.Seed).fork(0xC0));
    B->FrameComplexityFn = [Complexity](uint64_t FrameId) {
      return (*Complexity)(FrameId);
    };
    B->OnPageParsed = [this] {
      Registry.clear();
      Registry.loadFromPage(*B);
      applyAnnotationAblations(Config, Registry, *B);
      if (Injector)
        applyAnnotationFaults(*Injector, Registry, *B);
    };
    B->addFrameObserver(&Collector);
    if (Config.FeatureRows) {
      // Training-data export: label targets follow the governor's
      // scenario (usable for the -U governors, imperceptible else).
      UsageScenario S = Config.GovernorName == governors::GreenWebU ||
                                Config.GovernorName == governors::PredictiveU
                            ? UsageScenario::Usable
                            : UsageScenario::Imperceptible;
      Probe.emplace(Registry, Chip, S, *Config.FeatureRows);
      B->addFrameObserver(&*Probe);
    }
    Gov->attach(*B);
    if (Warm)
      B->loadPage(Warm->Snapshot);
    else
      B->loadPage(Html);
    SetupHostNs += hostNowNs() - SetupStart;
  }

  void closeBrowser() {
    Gov->detach();
    B.reset();
  }

  ExperimentConfig Config;
  /// Validated warm assets (null on cold runs).
  const PageAssets *Warm = nullptr;
  /// App definition built by this run (cold path only).
  AppDefinition OwnedApp;
  /// The run's app definition: &OwnedApp, or the shared warm copy.
  const AppDefinition *App = nullptr;
  std::string Html;
  /// Host-side setup wall time (diagnostic; see ExperimentResult).
  uint64_t SetupHostNs = 0;
  Simulator Sim;
  AcmpChip Chip;
  EnergyMeter Meter;
  AnnotationRegistry Registry;
  MetricCollector Collector;
  /// Training-data exporter (engaged when Config.FeatureRows is set).
  std::optional<FeatureProbe> Probe;
  std::unique_ptr<Governor> Gov;
  /// Declared after everything it perturbs; its destructor detaches
  /// from Sim before Sim is destroyed.
  std::optional<FaultInjector> Injector;
  std::unique_ptr<Browser> B;
};

} // namespace

//===----------------------------------------------------------------------===//
// runExperiment
//===----------------------------------------------------------------------===//

static ExperimentResult collectResults(Harness &H, TimePoint ArmTime) {
  // Close the attribution ledger before reading totals: the tail since
  // the last periodic tick must reach the log for per-annotation
  // energies to reconcile against the meter.
  if (H.Config.Tel && H.Config.MeterSamplePeriod > Duration::zero())
    H.Meter.recordSampleNow();

  ExperimentResult R;
  R.App = H.Config.AppName;
  R.Governor = H.Config.GovernorName;
  R.Mode = H.Config.Mode;
  R.Seed = H.Config.Seed;

  R.SetupHostNs = H.SetupHostNs;
  R.TotalJoules = H.Meter.totalJoules();
  R.BigJoules = H.Meter.bigJoules();
  R.LittleJoules = H.Meter.littleJoules();
  R.MeasuredSeconds = (H.Sim.now() - ArmTime).secs();

  R.Events = H.Collector.Events;
  R.InputEvents = R.Events.size();
  std::vector<double> ViolationsI, ViolationsU;
  for (const EventMetrics &E : R.Events) {
    if (!E.Annotated)
      continue;
    ++R.AnnotatedEvents;
    ViolationsI.push_back(
        E.violationFraction(UsageScenario::Imperceptible));
    ViolationsU.push_back(E.violationFraction(UsageScenario::Usable));
  }
  R.ViolationPctImperceptible = mean(ViolationsI) * 100.0;
  R.ViolationPctUsable = mean(ViolationsU) * 100.0;

  R.ConfigDistribution = H.Chip.configTimeDistribution();
  R.FreqSwitches = H.Chip.freqSwitches();
  R.Migrations = H.Chip.migrations();

  if (H.B) {
    R.Frames = H.B->frameTracker().frames().size();
    uint64_t Synthetic = H.B->TimerTasksRun + H.B->AnimationEndEvents;
    uint64_t AllEvents = R.InputEvents + Synthetic;
    R.AnnotationPct = AllEvents == 0 ? 0.0
                                     : 100.0 * double(R.AnnotatedEvents) /
                                           double(AllEvents);
    R.ScriptErrors = H.B->ScriptErrors;
  }

  if (H.Injector)
    R.Faults = H.Injector->stats();

  if (H.B)
    R.InputEventsCoalesced = H.B->rateController().suppressedCount();

  if (auto *RT = static_cast<GreenWebRuntime *>(
          H.Config.GovernorName == governors::GreenWebI ||
                  H.Config.GovernorName == governors::GreenWebU ||
                  H.Config.GovernorName == governors::PredictiveI ||
                  H.Config.GovernorName == governors::PredictiveU
              ? H.Gov.get()
              : nullptr))
    R.RuntimeStats = RT->stats();

  if (Telemetry *T = H.Sim.telemetry(); T && T->enabled()) {
    // Close spans still open at session end (quiescence never reached,
    // in-flight frames) so offline analysis sees a complete DAG.
    T->flushSpans();
    publishResultMetrics(R, *T);
  }
  return R;
}

void greenweb::publishResultMetrics(const ExperimentResult &Result,
                                    Telemetry &Tel) {
  MetricsRegistry &M = Tel.metrics();
  M.gauge("experiment.total_joules").set(Result.TotalJoules);
  M.gauge("experiment.big_joules").set(Result.BigJoules);
  M.gauge("experiment.little_joules").set(Result.LittleJoules);
  M.gauge("experiment.measured_seconds").set(Result.MeasuredSeconds);
  M.gauge("experiment.input_events").set(double(Result.InputEvents));
  M.gauge("experiment.annotated_events")
      .set(double(Result.AnnotatedEvents));
  M.gauge("experiment.frames").set(double(Result.Frames));
  M.gauge("experiment.violation_pct_imperceptible")
      .set(Result.ViolationPctImperceptible);
  M.gauge("experiment.violation_pct_usable")
      .set(Result.ViolationPctUsable);
  M.gauge("experiment.freq_switches").set(double(Result.FreqSwitches));
  M.gauge("experiment.migrations").set(double(Result.Migrations));
  M.gauge("experiment.annotation_pct").set(Result.AnnotationPct);
}

RunSample greenweb::makeRunSample(const ExperimentResult &Result,
                                  const Telemetry *Tel) {
  RunSample S;
  S.App = Result.App;
  S.Governor = Result.Governor;
  S.Joules = Result.TotalJoules;
  S.ViolationPct = Result.Governor == governors::GreenWebU
                       ? Result.ViolationPctUsable
                       : Result.ViolationPctImperceptible;
  S.Frames = Result.Frames;
  for (const EventMetrics &E : Result.Events)
    for (Duration L : E.FrameLatencies)
      S.FrameLatenciesMs.push_back(L.millis());
  if (Tel) {
    const MetricsRegistry &M = Tel->metrics();
    if (const Counter *C = M.findCounter("qos.violations"))
      S.QosViolations = C->value();
    if (const Counter *C = M.findCounter("telemetry.alerts"))
      S.Alerts = C->value();
  }
  return S;
}

static ExperimentResult runFullExperiment(Harness &H) {
  H.Collector.arm();
  H.openBrowser();
  TimePoint Origin = H.Sim.now();
  H.armMeasurement();

  for (const TraceEvent &Event : H.App->Full.Events) {
    H.Sim.scheduleAt(Origin + Event.At, [&H, Event] {
      H.B->dispatchInput(Event.Type, Event.TargetId);
    });
  }
  H.Sim.runUntil(Origin + H.App->Full.SessionLength +
                 Duration::seconds(2));
  ExperimentResult R = collectResults(H, Origin);
  H.closeBrowser();
  return R;
}

static ExperimentResult runMicroExperiment(Harness &H) {
  if (H.App->MicroInteraction == InteractionKind::Loading) {
    // The interaction *is* the load: one fresh browser per repetition,
    // with the chip, meter, runtime, and its calibrated models shared
    // across repetitions.
    H.Collector.arm();
    TimePoint ArmTime = H.Sim.now();
    H.armMeasurement();
    for (unsigned Rep = 0; Rep < H.Config.MicroRepetitions; ++Rep) {
      if (H.B)
        H.closeBrowser();
      H.openBrowser();
      H.Sim.runUntil(H.Sim.now() + H.App->MicroPeriod);
    }
    ExperimentResult R = collectResults(H, ArmTime);
    H.closeBrowser();
    return R;
  }

  // Tapping / moving micro: settle the load first, then repeat the
  // primitive interaction; metrics cover only the interaction phase.
  H.openBrowser();
  H.Sim.runUntil(H.Sim.now() + Duration::seconds(2));
  H.Collector.arm();
  TimePoint ArmTime = H.Sim.now();
  H.armMeasurement();
  H.B->frameTracker().clearFrames();

  for (unsigned Rep = 0; Rep < H.Config.MicroRepetitions; ++Rep) {
    TimePoint RepStart = ArmTime + H.App->MicroPeriod * int64_t(Rep);
    for (const TraceEvent &Event : H.App->Micro.Events) {
      H.Sim.scheduleAt(RepStart + Event.At, [&H, Event] {
        H.B->dispatchInput(Event.Type, Event.TargetId);
      });
    }
  }
  H.Sim.runUntil(ArmTime +
                 H.App->MicroPeriod * int64_t(H.Config.MicroRepetitions) +
                 Duration::seconds(1));
  ExperimentResult R = collectResults(H, ArmTime);
  H.closeBrowser();
  return R;
}

ExperimentResult greenweb::runExperiment(const ExperimentConfig &Config) {
  GW_PROF_SCOPE("workloads.experiment");
  ExperimentConfig C = Config;
  uint64_t PoolNs = 0;
  if (!C.Warm && C.WarmPool) {
    // The fetch may build the assets (first run for this key); that is
    // setup work and must be attributed as such.
    uint64_t PoolStart = hostNowNs();
    C.Warm = &C.WarmPool->get(C.AppName, C.Seed);
    PoolNs = hostNowNs() - PoolStart;
  }
  Harness H(C);
  H.SetupHostNs += PoolNs;
  if (C.Mode == ExperimentMode::Full)
    return runFullExperiment(H);
  return runMicroExperiment(H);
}

ExperimentResult
greenweb::runExperimentMedian(ExperimentConfig Config,
                              std::vector<uint64_t> Seeds) {
  assert(!Seeds.empty() && "need at least one seed");
  std::vector<ExperimentResult> Runs;
  for (uint64_t Seed : Seeds) {
    Config.Seed = Seed;
    Runs.push_back(runExperiment(Config));
  }
  // Pick the median-energy run as the representative, then overwrite
  // scalar metrics with per-metric medians (Sec. 7.1 protocol).
  std::vector<ExperimentResult *> ByEnergy;
  for (ExperimentResult &R : Runs)
    ByEnergy.push_back(&R);
  std::sort(ByEnergy.begin(), ByEnergy.end(),
            [](const ExperimentResult *A, const ExperimentResult *B) {
              return A->TotalJoules < B->TotalJoules;
            });
  ExperimentResult Result = *ByEnergy[ByEnergy.size() / 2];

  auto MedianOf = [&Runs](double ExperimentResult::*Field) {
    std::vector<double> Values;
    for (const ExperimentResult &R : Runs)
      Values.push_back(R.*Field);
    return median(Values);
  };
  Result.TotalJoules = MedianOf(&ExperimentResult::TotalJoules);
  Result.BigJoules = MedianOf(&ExperimentResult::BigJoules);
  Result.LittleJoules = MedianOf(&ExperimentResult::LittleJoules);
  Result.ViolationPctImperceptible =
      MedianOf(&ExperimentResult::ViolationPctImperceptible);
  Result.ViolationPctUsable = MedianOf(&ExperimentResult::ViolationPctUsable);
  // Setup attribution covers the whole protocol, not just the median run.
  Result.SetupHostNs = 0;
  for (const ExperimentResult &R : Runs)
    Result.SetupHostNs += R.SetupHostNs;
  return Result;
}
