//===- telemetry/FleetReport.cpp - Fleet checkpoints and reports ----------===//
//
// Part of the GreenWeb reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "telemetry/FleetReport.h"

#include "support/Json.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

using namespace greenweb;

uint64_t greenweb::fleetHash(std::string_view Text) {
  uint64_t H = 1469598103934665603ull;
  for (unsigned char C : Text) {
    H ^= C;
    H *= 1099511628211ull;
  }
  return H;
}

//===----------------------------------------------------------------------===//
// FleetState
//===----------------------------------------------------------------------===//

void FleetState::noteDevice(FleetWorstDevice D) {
  auto WorseThan = [](const FleetWorstDevice &A, const FleetWorstDevice &B) {
    if (A.ViolationPct != B.ViolationPct)
      return A.ViolationPct > B.ViolationPct;
    if (A.Joules != B.Joules)
      return A.Joules > B.Joules;
    return A.Item < B.Item;
  };
  auto It = std::lower_bound(Worst.begin(), Worst.end(), D, WorseThan);
  Worst.insert(It, std::move(D));
  if (Worst.size() > WorstKCapacity)
    Worst.resize(WorstKCapacity);
}

void FleetState::noteWarmKey(const std::string &Key) {
  auto It = std::lower_bound(WarmKeys.begin(), WarmKeys.end(), Key);
  if (It == WarmKeys.end() || *It != Key)
    WarmKeys.insert(It, Key);
}

namespace {

std::string hexDouble(double X) { return formatString("\"%a\"", X); }

double parseHexDouble(const json::Value &V, std::string_view Key) {
  const json::Value *F = V.get(Key);
  if (!F || !F->isString())
    return 0.0;
  return std::strtod(F->Str.c_str(), nullptr);
}

} // namespace

std::string FleetState::toJson() const {
  std::string Out = "{\"agg\":" + Agg.stateJson() + ",\"shards\":[";
  for (size_t I = 0; I < Shards.size(); ++I) {
    const FleetShardRollup &R = Shards[I];
    if (I)
      Out += ",";
    Out += formatString("{\"shard\":%llu,\"first_item\":%llu,"
                        "\"items\":%llu,\"qos\":%llu,\"alerts\":%llu,"
                        "\"joules\":",
                        static_cast<unsigned long long>(R.Shard),
                        static_cast<unsigned long long>(R.FirstItem),
                        static_cast<unsigned long long>(R.Items),
                        static_cast<unsigned long long>(R.QosViolations),
                        static_cast<unsigned long long>(R.Alerts));
    Out += hexDouble(R.Joules);
    Out += formatString(",\"worst_item\":%llu,\"worst_label\":\"%s\","
                        "\"worst_violation_pct\":",
                        static_cast<unsigned long long>(R.WorstItem),
                        jsonEscape(R.WorstLabel).c_str());
    Out += hexDouble(R.WorstViolationPct) + "}";
  }
  Out += "],\"worst\":[";
  for (size_t I = 0; I < Worst.size(); ++I) {
    const FleetWorstDevice &D = Worst[I];
    if (I)
      Out += ",";
    Out += formatString("{\"item\":%llu,\"label\":\"%s\","
                        "\"violation_pct\":",
                        static_cast<unsigned long long>(D.Item),
                        jsonEscape(D.Label).c_str());
    Out += hexDouble(D.ViolationPct) + ",\"joules\":" + hexDouble(D.Joules);
    Out += formatString(",\"alerts\":%llu,\"black_box\":\"%s\"}",
                        static_cast<unsigned long long>(D.Alerts),
                        jsonEscape(D.BlackBoxRef).c_str());
  }
  Out += "],\"warm_keys\":[";
  for (size_t I = 0; I < WarmKeys.size(); ++I) {
    if (I)
      Out += ",";
    Out += formatString("\"%s\"", jsonEscape(WarmKeys[I]).c_str());
  }
  Out += "]}";
  return Out;
}

bool FleetState::fromJson(const json::Value &V, FleetState &Out,
                          std::string *Error) {
  auto Fail = [&](const char *Msg) {
    if (Error)
      *Error = Msg;
    return false;
  };
  if (!V.isObject())
    return Fail("fleet state is not an object");
  FleetState S;
  const json::Value *Agg = V.get("agg");
  if (!Agg || !StreamAggregator::fromStateJson(*Agg, S.Agg, Error))
    return false;
  const json::Value *Shards = V.get("shards");
  if (!Shards || !Shards->isArray())
    return Fail("fleet state has no shard array");
  for (const json::Value &E : Shards->Arr) {
    if (!E.isObject())
      return Fail("malformed shard rollup");
    FleetShardRollup R;
    R.Shard = uint64_t(E.numberOr("shard", 0));
    R.FirstItem = uint64_t(E.numberOr("first_item", 0));
    R.Items = uint64_t(E.numberOr("items", 0));
    R.QosViolations = uint64_t(E.numberOr("qos", 0));
    R.Alerts = uint64_t(E.numberOr("alerts", 0));
    R.Joules = parseHexDouble(E, "joules");
    R.WorstItem = uint64_t(E.numberOr("worst_item", 0));
    R.WorstLabel = E.stringOr("worst_label", "");
    R.WorstViolationPct = parseHexDouble(E, "worst_violation_pct");
    S.Shards.push_back(std::move(R));
  }
  const json::Value *Worst = V.get("worst");
  if (!Worst || !Worst->isArray())
    return Fail("fleet state has no worst-device array");
  for (const json::Value &E : Worst->Arr) {
    if (!E.isObject())
      return Fail("malformed worst-device entry");
    FleetWorstDevice D;
    D.Item = uint64_t(E.numberOr("item", 0));
    D.Label = E.stringOr("label", "");
    D.ViolationPct = parseHexDouble(E, "violation_pct");
    D.Joules = parseHexDouble(E, "joules");
    D.Alerts = uint64_t(E.numberOr("alerts", 0));
    D.BlackBoxRef = E.stringOr("black_box", "");
    S.Worst.push_back(std::move(D));
  }
  const json::Value *Warm = V.get("warm_keys");
  if (!Warm || !Warm->isArray())
    return Fail("fleet state has no warm-key array");
  for (const json::Value &E : Warm->Arr) {
    if (!E.isString())
      return Fail("malformed warm key");
    S.WarmKeys.push_back(E.Str);
  }
  Out = std::move(S);
  return true;
}

//===----------------------------------------------------------------------===//
// FleetCheckpoint
//===----------------------------------------------------------------------===//

bool FleetCheckpoint::done(uint64_t Item) const {
  size_t Byte = size_t(Item / 8);
  return Byte < DoneBitmap.size() &&
         (DoneBitmap[Byte] >> (Item % 8)) & 1u;
}

void FleetCheckpoint::markDone(uint64_t Item) {
  size_t Byte = size_t(Item / 8);
  if (DoneBitmap.size() < (ItemsTotal + 7) / 8)
    DoneBitmap.resize((ItemsTotal + 7) / 8, 0);
  if (Byte < DoneBitmap.size())
    DoneBitmap[Byte] |= uint8_t(1u << (Item % 8));
}

uint64_t FleetCheckpoint::doneCount() const {
  uint64_t N = 0;
  for (uint64_t I = 0; I < ItemsTotal; ++I)
    N += done(I) ? 1 : 0;
  return N;
}

std::string FleetCheckpoint::serialize() const {
  std::string P = formatString(
      "{\"kind\":\"fleet_checkpoint\",\"schema\":1,\"plan_name\":\"%s\","
      "\"plan_hash\":\"%016llx\",\"baseline_governor\":\"%s\","
      "\"items_total\":%llu,\"items_done\":%llu,\"bitmap\":\"",
      jsonEscape(PlanName).c_str(),
      static_cast<unsigned long long>(PlanHash),
      jsonEscape(BaselineGovernor).c_str(),
      static_cast<unsigned long long>(ItemsTotal),
      static_cast<unsigned long long>(doneCount()));
  std::vector<uint8_t> Bits = DoneBitmap;
  Bits.resize((ItemsTotal + 7) / 8, 0);
  for (uint8_t B : Bits)
    P += formatString("%02x", B);
  P += "\",\"state\":" + State.toJson();
  if (!ReportJson.empty())
    P += ",\"report\":" + ReportJson;
  // Integrity footer: everything before the footer is covered by the
  // length + FNV-1a checksum, so a torn or bit-flipped file is rejected
  // at load instead of silently resuming from garbage.
  P += formatString(",\"payload_length\":%llu,\"checksum\":\"%016llx\"}\n",
                    static_cast<unsigned long long>(P.size()),
                    static_cast<unsigned long long>(fleetHash(P)));
  return P;
}

bool FleetCheckpoint::load(const std::string &Text, FleetCheckpoint &Out,
                           std::string *Error) {
  auto Fail = [&](const std::string &Msg) {
    if (Error)
      *Error = Msg;
    return false;
  };
  size_t Footer = Text.rfind(",\"payload_length\":");
  if (Footer == std::string::npos)
    return Fail("not a fleet checkpoint (no integrity footer)");
  std::string ParseError;
  auto Doc = json::parse(Text, &ParseError);
  if (!Doc || !Doc->isObject())
    return Fail("not a fleet checkpoint (" +
                (ParseError.empty() ? "unparseable" : ParseError) + ")");
  if (Doc->stringOr("kind", "") != "fleet_checkpoint")
    return Fail("not a fleet checkpoint (kind mismatch)");
  if (int(Doc->numberOr("schema", 0)) != 1)
    return Fail("unsupported fleet checkpoint schema");
  uint64_t Length = uint64_t(Doc->numberOr("payload_length", 0));
  if (Length != Footer)
    return Fail(formatString("checkpoint corrupt: payload length %llu "
                             "does not match the %llu bytes on disk "
                             "(truncated or edited)",
                             static_cast<unsigned long long>(Length),
                             static_cast<unsigned long long>(Footer)));
  uint64_t Sum = std::strtoull(Doc->stringOr("checksum", "0").c_str(),
                               nullptr, 16);
  uint64_t Actual = fleetHash(std::string_view(Text).substr(0, Footer));
  if (Sum != Actual)
    return Fail(formatString("checkpoint corrupt: checksum %016llx does "
                             "not match recomputed %016llx",
                             static_cast<unsigned long long>(Sum),
                             static_cast<unsigned long long>(Actual)));

  FleetCheckpoint C;
  C.PlanName = Doc->stringOr("plan_name", "");
  C.PlanHash = std::strtoull(Doc->stringOr("plan_hash", "0").c_str(),
                             nullptr, 16);
  C.BaselineGovernor = Doc->stringOr("baseline_governor", "");
  C.ItemsTotal = uint64_t(Doc->numberOr("items_total", 0));
  std::string Bitmap = Doc->stringOr("bitmap", "");
  if (Bitmap.size() != 2 * ((C.ItemsTotal + 7) / 8))
    return Fail("checkpoint corrupt: bitmap length mismatch");
  for (size_t I = 0; I + 1 < Bitmap.size(); I += 2) {
    unsigned B = 0;
    if (std::sscanf(Bitmap.c_str() + I, "%02x", &B) != 1)
      return Fail("checkpoint corrupt: bitmap is not hex");
    C.DoneBitmap.push_back(uint8_t(B));
  }
  const json::Value *S = Doc->get("state");
  std::string StateError;
  if (!S || !FleetState::fromJson(*S, C.State, &StateError))
    return Fail("checkpoint corrupt: " +
                (StateError.empty() ? "no state section" : StateError));
  C.ReportJson = fleetReportSectionFromArtifact(Text);
  Out = std::move(C);
  return true;
}

std::string
greenweb::fleetReportSectionFromArtifact(const std::string &Text) {
  size_t Key = Text.find(",\"report\":{");
  if (Key == std::string::npos)
    return {};
  size_t Open = Text.find('{', Key);
  // Balanced-brace scan, skipping string contents (labels may hold
  // arbitrary escaped text).
  int Depth = 0;
  bool InString = false;
  for (size_t I = Open; I < Text.size(); ++I) {
    char C = Text[I];
    if (InString) {
      if (C == '\\')
        ++I;
      else if (C == '"')
        InString = false;
      continue;
    }
    if (C == '"')
      InString = true;
    else if (C == '{')
      ++Depth;
    else if (C == '}' && --Depth == 0)
      return Text.substr(Open, I - Open + 1);
  }
  return {};
}

//===----------------------------------------------------------------------===//
// FleetReport
//===----------------------------------------------------------------------===//

FleetReport FleetReport::fromCheckpoint(const FleetCheckpoint &C) {
  FleetReport R;
  R.PlanName = C.PlanName;
  R.BaselineGovernor = C.BaselineGovernor;
  R.ItemsTotal = C.ItemsTotal;
  R.ItemsDone = C.doneCount();
  R.State = C.State;
  return R;
}

namespace {

std::string sketchReportJson(const QuantileSketch &Q) {
  return formatString("{\"count\":%llu,\"p50\":%.4f,\"p90\":%.4f,"
                      "\"p99\":%.4f,\"max\":%.4f}",
                      static_cast<unsigned long long>(Q.count()),
                      Q.quantile(0.5), Q.quantile(0.9), Q.quantile(0.99),
                      Q.max());
}

std::string groupReportJson(const StreamAggregator::Group &G) {
  const Histogram &V = G.ViolationPct;
  return formatString(
             "{\"runs\":%llu,\"mean_joules\":%.6f,"
             "\"violation_pct_mean\":%.4f,\"violation_pct_p50\":%.4f,"
             "\"violation_pct_p99\":%.4f,\"frame_latency_ms\":",
             static_cast<unsigned long long>(G.Runs),
             G.Runs ? G.Joules / double(G.Runs) : 0.0,
             V.summary().count() ? V.summary().mean() : 0.0,
             V.quantile(0.5), V.quantile(0.99)) +
         sketchReportJson(G.FrameLatencyMs) + ",\"energy_per_frame_mj\":" +
         sketchReportJson(G.EnergyPerFrameMj) + "}";
}

} // namespace

std::string FleetReport::toJson() const {
  const StreamAggregator &A = State.Agg;
  const StreamAggregator::Group &T = A.total();
  std::string Out = formatString(
      "{\"kind\":\"fleet_report\",\"plan\":\"%s\","
      "\"baseline_governor\":\"%s\",\"items_total\":%llu,"
      "\"items_done\":%llu,\"population\":{\"runs\":%llu,"
      "\"frames\":%llu,\"qos_violations\":%llu,\"alerts\":%llu,"
      "\"joules_total\":%.4f,\"violation_pct_le\":[",
      jsonEscape(PlanName).c_str(), jsonEscape(BaselineGovernor).c_str(),
      static_cast<unsigned long long>(ItemsTotal),
      static_cast<unsigned long long>(ItemsDone),
      static_cast<unsigned long long>(T.Runs),
      static_cast<unsigned long long>(T.Frames),
      static_cast<unsigned long long>(T.QosViolations),
      static_cast<unsigned long long>(T.Alerts), T.Joules);
  const std::vector<double> &Bounds = T.ViolationPct.upperBounds();
  for (size_t I = 0; I < Bounds.size(); ++I)
    Out += formatString(I ? ",%.1f" : "%.1f", Bounds[I]);
  Out += "],\"violation_pct_counts\":[";
  const std::vector<uint64_t> &Counts = T.ViolationPct.bucketCounts();
  for (size_t I = 0; I < Counts.size(); ++I)
    Out += formatString(I ? ",%llu" : "%llu",
                        static_cast<unsigned long long>(Counts[I]));
  Out += "],\"frame_latency_ms\":" + sketchReportJson(T.FrameLatencyMs);
  Out +=
      ",\"energy_per_frame_mj\":" + sketchReportJson(T.EnergyPerFrameMj);
  Out += "}";

  auto Section = [&Out](const char *Key,
                        const std::map<std::string,
                                       StreamAggregator::Group> &Groups) {
    Out += formatString(",\"%s\":{", Key);
    bool First = true;
    for (const auto &[Name, G] : Groups) {
      if (!First)
        Out += ",";
      First = false;
      Out += formatString("\"%s\":", jsonEscape(Name).c_str());
      Out += groupReportJson(G);
    }
    Out += "}";
  };
  Section("by_app", A.byApp());
  Section("by_governor", A.byGovernor());

  // Energy extrapolation: mean per-session joules vs the baseline
  // governor, scaled to one million users (1 session each). 3.6e6 J
  // per kWh.
  double BaselineMean = 0.0;
  auto BIt = A.byGovernor().find(BaselineGovernor);
  if (BIt != A.byGovernor().end() && BIt->second.Runs)
    BaselineMean = BIt->second.Joules / double(BIt->second.Runs);
  Out += formatString(",\"energy_extrapolation\":{"
                      "\"baseline_mean_joules\":%.6f,\"per_governor\":{",
                      BaselineMean);
  bool First = true;
  for (const auto &[Name, G] : A.byGovernor()) {
    if (Name == BaselineGovernor || G.Runs == 0)
      continue;
    double Mean = G.Joules / double(G.Runs);
    double SavedJ = BaselineMean - Mean;
    if (!First)
      Out += ",";
    First = false;
    Out += formatString("\"%s\":{\"mean_joules\":%.6f,"
                        "\"saved_pct\":%.4f,\"saved_j_per_run\":%.6f,"
                        "\"saved_kwh_per_million_users\":%.4f}",
                        jsonEscape(Name).c_str(), Mean,
                        BaselineMean > 0.0 ? 100.0 * SavedJ / BaselineMean
                                           : 0.0,
                        SavedJ, SavedJ / 3.6);
  }
  Out += "}}";

  Out += ",\"shards\":[";
  for (size_t I = 0; I < State.Shards.size(); ++I) {
    const FleetShardRollup &R = State.Shards[I];
    if (I)
      Out += ",";
    Out += formatString(
        "{\"shard\":%llu,\"first_item\":%llu,\"items\":%llu,"
        "\"qos_violations\":%llu,\"alerts\":%llu,\"joules\":%.4f,"
        "\"worst_item\":%llu,\"worst_label\":\"%s\","
        "\"worst_violation_pct\":%.4f}",
        static_cast<unsigned long long>(R.Shard),
        static_cast<unsigned long long>(R.FirstItem),
        static_cast<unsigned long long>(R.Items),
        static_cast<unsigned long long>(R.QosViolations),
        static_cast<unsigned long long>(R.Alerts), R.Joules,
        static_cast<unsigned long long>(R.WorstItem),
        jsonEscape(R.WorstLabel).c_str(), R.WorstViolationPct);
  }
  Out += "],\"worst_devices\":[";
  for (size_t I = 0; I < State.Worst.size(); ++I) {
    const FleetWorstDevice &D = State.Worst[I];
    if (I)
      Out += ",";
    Out += formatString("{\"item\":%llu,\"label\":\"%s\","
                        "\"violation_pct\":%.4f,\"joules\":%.4f,"
                        "\"alerts\":%llu,\"black_box\":\"%s\"}",
                        static_cast<unsigned long long>(D.Item),
                        jsonEscape(D.Label).c_str(), D.ViolationPct,
                        D.Joules,
                        static_cast<unsigned long long>(D.Alerts),
                        jsonEscape(D.BlackBoxRef).c_str());
  }
  uint64_t Requests = A.runs();
  uint64_t Builds = State.WarmKeys.size();
  Out += formatString("],\"warm_pool\":{\"requests\":%llu,"
                      "\"builds\":%llu,\"hit_rate\":%.4f}}",
                      static_cast<unsigned long long>(Requests),
                      static_cast<unsigned long long>(Builds),
                      Requests ? 1.0 - double(Builds) / double(Requests)
                               : 0.0);
  return Out;
}

std::string FleetReport::format() const {
  const StreamAggregator &A = State.Agg;
  const StreamAggregator::Group &T = A.total();
  std::string Out = formatString(
      "fleet report: %s — %llu/%llu items, %llu runs, %llu frames\n"
      "population: %.2f J total, %llu QoS violations, %llu alerts\n",
      PlanName.c_str(), static_cast<unsigned long long>(ItemsDone),
      static_cast<unsigned long long>(ItemsTotal),
      static_cast<unsigned long long>(T.Runs),
      static_cast<unsigned long long>(T.Frames), T.Joules,
      static_cast<unsigned long long>(T.QosViolations),
      static_cast<unsigned long long>(T.Alerts));
  Out += formatString("frame latency: p50 %.2f ms, p90 %.2f ms, "
                      "p99 %.2f ms (n=%llu)\n",
                      T.FrameLatencyMs.quantile(0.5),
                      T.FrameLatencyMs.quantile(0.9),
                      T.FrameLatencyMs.quantile(0.99),
                      static_cast<unsigned long long>(
                          T.FrameLatencyMs.count()));

  Out += "\nviolation %% distribution (runs per band):\n";
  const std::vector<double> &Bounds = T.ViolationPct.upperBounds();
  const std::vector<uint64_t> &Counts = T.ViolationPct.bucketCounts();
  for (size_t I = 0; I < Counts.size(); ++I) {
    if (Counts[I] == 0)
      continue;
    if (I < Bounds.size())
      Out += formatString("  <= %5.1f%% : %llu\n", Bounds[I],
                          static_cast<unsigned long long>(Counts[I]));
    else
      Out += formatString("   > %5.1f%% : %llu\n", Bounds.back(),
                          static_cast<unsigned long long>(Counts[I]));
  }

  Out += formatString("\n  %-14s %6s %10s %10s %10s %10s\n", "governor",
                      "runs", "mean J", "viol p50", "viol p99",
                      "frame p99");
  for (const auto &[Name, G] : A.byGovernor())
    Out += formatString("  %-14s %6llu %10.4f %9.2f%% %9.2f%% %8.2fms\n",
                        Name.c_str(),
                        static_cast<unsigned long long>(G.Runs),
                        G.Runs ? G.Joules / double(G.Runs) : 0.0,
                        G.ViolationPct.quantile(0.5),
                        G.ViolationPct.quantile(0.99),
                        G.FrameLatencyMs.quantile(0.99));

  double BaselineMean = 0.0;
  auto BIt = A.byGovernor().find(BaselineGovernor);
  if (BIt != A.byGovernor().end() && BIt->second.Runs)
    BaselineMean = BIt->second.Joules / double(BIt->second.Runs);
  if (BaselineMean > 0.0) {
    Out += formatString("\nenergy vs %s (%.4f J/session):\n",
                        BaselineGovernor.c_str(), BaselineMean);
    for (const auto &[Name, G] : A.byGovernor()) {
      if (Name == BaselineGovernor || G.Runs == 0)
        continue;
      double Mean = G.Joules / double(G.Runs);
      double SavedJ = BaselineMean - Mean;
      Out += formatString("  %-14s %+7.2f%%  %+9.4f J/session  "
                          "%+10.2f kWh per 1M users\n",
                          Name.c_str(), 100.0 * SavedJ / BaselineMean,
                          SavedJ, SavedJ / 3.6);
    }
  }

  if (!State.Worst.empty()) {
    Out += "\nworst devices (violation %, black box when recorded):\n";
    for (const FleetWorstDevice &D : State.Worst)
      Out += formatString("  #%-6llu %-40s %6.2f%%  %8.4f J%s%s\n",
                          static_cast<unsigned long long>(D.Item),
                          D.Label.c_str(), D.ViolationPct, D.Joules,
                          D.BlackBoxRef.empty() ? "" : "  bb:",
                          D.BlackBoxRef.c_str());
  }

  uint64_t Requests = A.runs();
  uint64_t Builds = State.WarmKeys.size();
  Out += formatString("\n%zu shard(s); warm pool: %llu requests, "
                      "%llu builds, %.1f%% hit rate\n",
                      State.Shards.size(),
                      static_cast<unsigned long long>(Requests),
                      static_cast<unsigned long long>(Builds),
                      Requests
                          ? 100.0 * (1.0 - double(Builds) / double(Requests))
                          : 0.0);
  return Out;
}
