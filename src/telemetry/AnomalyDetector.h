//===- telemetry/AnomalyDetector.h - Online change-point alerts -*- C++ -*-===//
//
// Part of the GreenWeb reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Online anomaly detection over the telemetry record stream. A
/// DetectorBank watches three signals that bound the QoS/energy story:
///
///   frame_latency   per-frame production latency ("total" frame_stage
///                   records the browser emits at present time)
///   energy_per_frame joules consumed per presented frame, derived from
///                   consecutive energy_sample records
///   decision_churn  governor decisions inside a trailing window (a
///                   thrashing policy re-decides far more often than a
///                   settled one)
///
/// Each signal runs through an EWMA-baselined two-sided CUSUM: the
/// baseline mean and mean absolute deviation adapt exponentially, and
/// the standardized innovation accumulates into the classic positive /
/// negative CUSUM statistics. Crossing the decision threshold emits a
/// first-class Alert record into the stream and resets the statistic.
///
/// Determinism contract: a detector is a pure fold over the record
/// sequence — no wall clock, no randomness, and timestamps are taken
/// from the triggering record, never from a live clock. Feeding the
/// same records therefore yields byte-identical alerts whether the bank
/// runs online inside the Telemetry hub or offline over a parsed JSONL
/// log (`gw-inspect alerts`). All floating-point math lives in the
/// .cpp, so both paths execute the same object code.
///
//===----------------------------------------------------------------------===//

#ifndef GREENWEB_TELEMETRY_ANOMALYDETECTOR_H
#define GREENWEB_TELEMETRY_ANOMALYDETECTOR_H

#include "telemetry/TelemetryLog.h"

#include <cstdint>
#include <deque>
#include <vector>

namespace greenweb {

/// Tuning for every detector in a bank. Defaults are deliberately
/// conservative: alert on sustained shifts (a fault window, a thermal
/// cap, a watchdog storm), not on single noisy frames.
struct DetectorConfig {
  /// EWMA smoothing factor for the baseline mean and deviation.
  double Alpha = 0.05;
  /// CUSUM slack in deviations (shifts below this drift are absorbed).
  double CusumK = 0.5;
  /// CUSUM decision threshold in accumulated deviations.
  double CusumH = 10.0;
  /// Observations consumed to seed the baseline before any alert.
  uint64_t WarmupSamples = 16;
  /// Minimum observations between alerts from one detector.
  uint64_t CooldownSamples = 32;
  /// Trailing window (milliseconds of virtual time) over which governor
  /// decisions are counted for the churn signal.
  double ChurnWindowMs = 250.0;
};

/// One EWMA-baselined two-sided CUSUM over a scalar series; see file
/// comment for the update rule.
class EwmaCusum {
public:
  explicit EwmaCusum(const DetectorConfig &C) : Cfg(C) {}

  /// Outcome of one observation (Fired = threshold crossed).
  struct Step {
    bool Fired = false;
    double Score = 0.0; ///< The CUSUM statistic that crossed.
    int64_t Dir = 0;    ///< +1 upward shift, -1 downward.
  };

  Step observe(double X);

  double mean() const { return Mean; }
  double deviation() const { return Dev; }
  uint64_t samples() const { return N; }

private:
  DetectorConfig Cfg;
  double Mean = 0.0;
  double Dev = 0.0;
  double Pos = 0.0;
  double Neg = 0.0;
  uint64_t N = 0;
  uint64_t SinceAlert = 0;
};

/// The three-signal detector bank; see file comment. Feed every
/// non-alert record in stream order; returned Alert records are fully
/// formed (kind, timestamp, fields) and ready to append to the log.
class DetectorBank {
public:
  explicit DetectorBank(const DetectorConfig &C = {});

  /// Observes one record and returns any alerts it provoked (usually
  /// empty). Alert-kind records are ignored, so the bank may be fed a
  /// stream that already contains its own output.
  std::vector<TelemetryRecord> onRecord(const TelemetryRecord &R);

  uint64_t alertsEmitted() const { return Alerts; }
  const DetectorConfig &config() const { return Cfg; }

private:
  void score(const char *Detector, EwmaCusum &D, double X,
             const TelemetryRecord &Origin,
             std::vector<TelemetryRecord> &Out);

  DetectorConfig Cfg;
  EwmaCusum FrameLatency;
  EwmaCusum EnergyPerFrame;
  EwmaCusum DecisionChurn;
  uint64_t Alerts = 0;

  // energy_per_frame derivation state.
  double LastJoules = -1.0;
  uint64_t FramesPresented = 0;
  uint64_t FramesAtLastSample = 0;

  // decision_churn trailing window (timestamps in nanoseconds).
  std::deque<int64_t> DecisionTsNs;
};

} // namespace greenweb

#endif // GREENWEB_TELEMETRY_ANOMALYDETECTOR_H
