//===- telemetry/AnomalyDetector.cpp - Online change-point alerts ----------===//
//
// Part of the GreenWeb reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "telemetry/AnomalyDetector.h"

#include <algorithm>
#include <cmath>

using namespace greenweb;

EwmaCusum::Step EwmaCusum::observe(double X) {
  Step S;
  ++N;
  if (N == 1) {
    Mean = X;
    Dev = 0.0;
    SinceAlert = Cfg.CooldownSamples; // The first alert needs no cooldown.
    return S;
  }
  double Residual = X - Mean;
  if (N <= Cfg.WarmupSamples) {
    // Baseline seeding: adapt, never alert.
    Mean += Cfg.Alpha * Residual;
    Dev += Cfg.Alpha * (std::fabs(Residual) - Dev);
    ++SinceAlert;
    return S;
  }
  double Sigma = std::max(Dev, 1e-9);
  double Z = Residual / Sigma;
  Pos = std::max(0.0, Pos + Z - Cfg.CusumK);
  Neg = std::max(0.0, Neg - Z - Cfg.CusumK);
  ++SinceAlert;
  if ((Pos > Cfg.CusumH || Neg > Cfg.CusumH) &&
      SinceAlert > Cfg.CooldownSamples) {
    S.Fired = true;
    S.Dir = Pos > Cfg.CusumH ? 1 : -1;
    S.Score = S.Dir > 0 ? Pos : Neg;
    // Restart the statistic and re-seed the baseline at the new level,
    // so one sustained shift produces one alert, not a burst.
    Pos = Neg = 0.0;
    SinceAlert = 0;
    Mean = X;
    Dev = std::max(Dev, 1e-9);
    return S;
  }
  Mean += Cfg.Alpha * Residual;
  Dev += Cfg.Alpha * (std::fabs(Residual) - Dev);
  return S;
}

DetectorBank::DetectorBank(const DetectorConfig &C)
    : Cfg(C), FrameLatency(C), EnergyPerFrame(C), DecisionChurn(C) {}

void DetectorBank::score(const char *Detector, EwmaCusum &D, double X,
                         const TelemetryRecord &Origin,
                         std::vector<TelemetryRecord> &Out) {
  double BaselineMean = D.mean();
  EwmaCusum::Step S = D.observe(X);
  if (!S.Fired)
    return;
  ++Alerts;
  TelemetryRecord A;
  A.Kind = TelemetryEventKind::Alert;
  A.Ts = Origin.Ts; // Virtual time of the provoking record, never a clock.
  A.Fields.reserve(6);
  A.Fields.push_back({"detector", std::string(Detector)});
  A.Fields.push_back({"value", X});
  A.Fields.push_back({"baseline", BaselineMean});
  A.Fields.push_back({"score", S.Score});
  A.Fields.push_back({"dir", S.Dir});
  A.Fields.push_back({"n", int64_t(D.samples())});
  Out.push_back(std::move(A));
}

std::vector<TelemetryRecord>
DetectorBank::onRecord(const TelemetryRecord &R) {
  std::vector<TelemetryRecord> Out;
  switch (R.Kind) {
  case TelemetryEventKind::FrameStage: {
    const TelemetryField *Stage = R.find("stage");
    const std::string *Name =
        Stage ? std::get_if<std::string>(&Stage->Value) : nullptr;
    if (!Name)
      break;
    if (*Name == "present")
      ++FramesPresented;
    else if (*Name == "total")
      // Score the canonical (serialized) value so replaying the log
      // through the same detector reproduces the alert stream exactly.
      score("frame_latency", FrameLatency,
            telemetryCanonicalNumber(R.numberOr("duration_ms", 0.0)), R,
            Out);
    break;
  }
  case TelemetryEventKind::EnergySample: {
    // The energy accumulator is a free-running double that loses
    // precision in JSONL serialization; canonicalize before the delta
    // so online and offline detection see identical inputs.
    double Joules = telemetryCanonicalNumber(R.numberOr("joules", 0.0));
    if (LastJoules >= 0.0 && FramesPresented > FramesAtLastSample) {
      double PerFrameMj = (Joules - LastJoules) * 1e3 /
                          double(FramesPresented - FramesAtLastSample);
      score("energy_per_frame", EnergyPerFrame, PerFrameMj, R, Out);
    }
    LastJoules = Joules;
    FramesAtLastSample = FramesPresented;
    break;
  }
  case TelemetryEventKind::GovernorDecision: {
    int64_t Ts = R.Ts.nanos();
    int64_t WindowNs = int64_t(Cfg.ChurnWindowMs * 1e6);
    while (!DecisionTsNs.empty() && DecisionTsNs.front() < Ts - WindowNs)
      DecisionTsNs.pop_front();
    DecisionTsNs.push_back(Ts);
    score("decision_churn", DecisionChurn, double(DecisionTsNs.size()), R,
          Out);
    break;
  }
  default:
    break;
  }
  return Out;
}
