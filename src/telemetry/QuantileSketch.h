//===- telemetry/QuantileSketch.h - Mergeable quantile digest ---*- C++ -*-===//
//
// Part of the GreenWeb reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A deterministic, mergeable quantile sketch for fleet-scale streaming
/// aggregation: per-app / per-governor frame-latency and energy-per-
/// frame percentiles over thousands of runs without retaining raw
/// samples.
///
/// The digest uses fixed log-domain buckets: a positive value x = f*2^e
/// (f in [1,2), via frexp — no log/pow, only exact IEEE decomposition)
/// lands in sub-bucket j = floor((f-1)*S) of octave e, S = 32 linear
/// sub-buckets per octave. A bucket [2^e*(1+j/S), 2^e*(1+(j+1)/S)) is
/// reported at its midpoint, so the worst-case relative error of a
/// quantile estimate is half the bucket width over its lower bound:
///   |est - true| / true <= 1/(2S) = 1.5625%  (S = 32)
/// and estimates are additionally clamped to the observed [min, max].
///
/// All state is integer bucket counts plus order-insensitive min/max,
/// so merge() is associative and commutative and shard merges replay
/// byte-for-byte in any order — the same property SchedTrace relies on.
/// serialize()/deserialize() round-trip exactly (doubles travel as C99
/// hexfloats), which is what lets a fleet checkpoint resume and still
/// produce byte-identical final aggregates.
///
//===----------------------------------------------------------------------===//

#ifndef GREENWEB_TELEMETRY_QUANTILESKETCH_H
#define GREENWEB_TELEMETRY_QUANTILESKETCH_H

#include <cstdint>
#include <map>
#include <string>

namespace greenweb {

namespace json {
struct Value;
}

/// Fixed-bucket log-domain quantile digest; see the file comment.
class QuantileSketch {
public:
  /// Linear sub-buckets per power-of-two octave. Fixed for every sketch
  /// so merges never need bucket realignment.
  static constexpr int32_t SubBucketsPerOctave = 32;

  /// Folds one sample. Non-finite samples are ignored; zero and
  /// negative samples count into a dedicated zero bucket (latencies and
  /// energies are non-negative, so "<= 0" collapsing to 0 loses
  /// nothing).
  void observe(double X);

  /// Adds another sketch's buckets into this one. Associative and
  /// commutative: any merge order yields bit-identical state.
  void mergeFrom(const QuantileSketch &O);

  /// Estimated value at quantile \p Q in [0, 1]: the midpoint of the
  /// bucket holding rank floor(Q*(count-1)), clamped to the observed
  /// [min, max]. Returns 0 with no observations. Error bound: see file
  /// comment.
  double quantile(double Q) const;

  uint64_t count() const { return Count; }
  uint64_t zeroCount() const { return ZeroCount; }
  double min() const { return Count ? Lo : 0.0; }
  double max() const { return Count ? Hi : 0.0; }

  /// Exact single-line JSON state (integer buckets, hexfloat min/max):
  /// {"s":32,"count":N,"zero":N,"min":"0x...","max":"0x...",
  ///  "buckets":[[key,count],...]} with buckets in ascending key order.
  /// Deterministic: equal states serialize identically.
  std::string serialize() const;

  /// Rebuilds a sketch from serialize() output (parsed). Returns false
  /// (and sets \p Error when given) on malformed state or a sub-bucket
  /// constant mismatch.
  static bool deserialize(const json::Value &V, QuantileSketch &Out,
                          std::string *Error = nullptr);

private:
  uint64_t Count = 0;
  uint64_t ZeroCount = 0;
  double Lo = 0.0;
  double Hi = 0.0;
  /// Sparse bucket counts keyed by octave*S + sub-bucket; ordered so
  /// serialization and quantile walks are deterministic.
  std::map<int32_t, uint64_t> Buckets;
};

} // namespace greenweb

#endif // GREENWEB_TELEMETRY_QUANTILESKETCH_H
