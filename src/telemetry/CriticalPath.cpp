//===- telemetry/CriticalPath.cpp - Why did this frame miss? ---------------===//
//
// Part of the GreenWeb reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "telemetry/CriticalPath.h"

#include "support/StringUtils.h"

#include <algorithm>

using namespace greenweb;

SpanIndex::SpanIndex(const TelemetryLog &Log) {
  for (const TelemetryRecord &R : Log.records()) {
    if (R.Kind != TelemetryEventKind::Span)
      continue;
    SpanRecord S;
    S.Id = int64_t(R.numberOr("id", 0));
    S.Parent = int64_t(R.numberOr("parent", 0));
    S.Root = int64_t(R.numberOr("root", 0));
    S.Frame = int64_t(R.numberOr("frame", 0));
    S.Name = R.stringOr("name", "");
    S.Thread = R.stringOr("thread", "");
    S.BeginUs = R.numberOr("begin_us", 0.0);
    S.EndUs = S.BeginUs + R.numberOr("dur_ms", 0.0) * 1e3;
    S.Truncated = R.numberOr("open", 0.0) != 0.0;
    ById[S.Id] = Spans.size();
    Spans.push_back(std::move(S));
  }
}

const SpanRecord *SpanIndex::byId(int64_t Id) const {
  auto It = ById.find(Id);
  return It == ById.end() ? nullptr : &Spans[It->second];
}

namespace {

/// Walks parent links from \p Tail upwards until (and excluding)
/// \p StopId, returning the chain in causal (top-down) order.
std::vector<const SpanRecord *> walkUp(const SpanIndex &Index,
                                       const SpanRecord *Tail,
                                       int64_t StopId) {
  std::vector<const SpanRecord *> Chain;
  for (const SpanRecord *S = Tail; S && S->Id != StopId;
       S = Index.byId(S->Parent)) {
    // A cycle cannot occur (parents always have lower ids), but a
    // truncated log can repeat ids; bail out rather than loop.
    if (Chain.size() > Index.all().size())
      break;
    Chain.push_back(S);
  }
  std::reverse(Chain.begin(), Chain.end());
  return Chain;
}

} // namespace

CriticalPathResult greenweb::extractCriticalPath(const SpanIndex &Index,
                                                 int64_t FrameId,
                                                 int64_t RootId,
                                                 double TargetMs,
                                                 bool IncludeInputChain) {
  CriticalPathResult Result;

  // The frame's production window, opened at its VSync.
  const SpanRecord *FrameContainer = nullptr;
  for (const SpanRecord &S : Index.all())
    if (S.Frame == FrameId && S.Parent == 0 && S.Thread == "frames")
      FrameContainer = &S;
  if (!FrameContainer)
    return Result;

  // Last work to finish inside the frame; its parent links are the
  // in-frame stage chain (animate -> style -> layout -> paint ->
  // composite), whatever subset actually ran.
  const SpanRecord *FrameTail = nullptr;
  for (const SpanRecord &S : Index.all()) {
    // Timer tasks posted during a stage inherit the frame id but can
    // outlive the frame; the blocking chain ends at the present.
    if (S.Frame != FrameId || S.Id == FrameContainer->Id ||
        S.EndUs > FrameContainer->EndUs)
      continue;
    if (!FrameTail || S.EndUs > FrameTail->EndUs ||
        (S.EndUs == FrameTail->EndUs && S.Id > FrameTail->Id))
      FrameTail = &S;
  }

  std::vector<const SpanRecord *> Chain;
  if (IncludeInputChain && RootId != 0) {
    // The input event's lifetime span...
    const SpanRecord *RootContainer = nullptr;
    for (const SpanRecord &S : Index.all())
      if (S.Root == RootId && S.Parent == 0 && S.Thread == "inputs") {
        RootContainer = &S;
        break;
      }
    if (RootContainer) {
      // ...and the input-side work that fed this frame: the last
      // off-frame span of the root finishing before the frame closed.
      const SpanRecord *InputTail = nullptr;
      for (const SpanRecord &S : Index.all()) {
        if (S.Root != RootId || S.Frame != 0 ||
            S.Id == RootContainer->Id || S.EndUs > FrameContainer->EndUs)
          continue;
        if (!InputTail || S.EndUs > InputTail->EndUs ||
            (S.EndUs == InputTail->EndUs && S.Id > InputTail->Id))
          InputTail = &S;
      }
      Chain.push_back(RootContainer);
      if (InputTail) {
        std::vector<const SpanRecord *> InputChain =
            walkUp(Index, InputTail, RootContainer->Id);
        Chain.insert(Chain.end(), InputChain.begin(), InputChain.end());
      }
    }
  }

  Chain.push_back(FrameContainer);
  if (FrameTail) {
    std::vector<const SpanRecord *> FrameChain =
        walkUp(Index, FrameTail, FrameContainer->Id);
    Chain.insert(Chain.end(), FrameChain.begin(), FrameChain.end());
  }

  Result.TotalMs = (Chain.back()->EndUs - Chain.front()->BeginUs) / 1e3;
  Result.SlackMs = TargetMs >= 0.0 ? TargetMs - Result.TotalMs : 0.0;

  for (size_t I = 0; I < Chain.size(); ++I) {
    PathStep Step;
    Step.S = *Chain[I];
    if (I > 0) {
      // Containers overlap their children, so the queueing gap is
      // measured from a container's begin, not its end.
      const SpanRecord *Prev = Chain[I - 1];
      double PrevRef = Prev->isContainer() ? Prev->BeginUs : Prev->EndUs;
      Step.WaitMs = std::max(0.0, (Step.S.BeginUs - PrevRef) / 1e3);
    }
    Step.Candidate = !Step.S.isContainer();
    Step.SlackMs = Step.Candidate ? Result.SlackMs : 0.0;
    Result.Steps.push_back(std::move(Step));
  }

  for (size_t I = 0; I < Result.Steps.size(); ++I) {
    const PathStep &Step = Result.Steps[I];
    if (!Step.Candidate)
      continue;
    if (Result.Bottleneck < 0)
      Result.Bottleneck = int(I);
    else {
      const PathStep &Best = Result.Steps[size_t(Result.Bottleneck)];
      double D = Step.S.durationMs(), BD = Best.S.durationMs();
      if (D > BD || (D == BD && (Step.S.BeginUs < Best.S.BeginUs ||
                                 (Step.S.BeginUs == Best.S.BeginUs &&
                                  Step.S.Id < Best.S.Id))))
        Result.Bottleneck = int(I);
    }
  }
  return Result;
}

std::string WhyReport::format() const {
  std::string Out = formatString(
      "frame %lld root %lld [%s] %s '%s': %.1f ms against %.1f ms target "
      "(+%.1f ms over)\n",
      static_cast<long long>(FrameId), static_cast<long long>(RootId),
      QosKind.empty() ? "?" : QosKind.c_str(), Governor.c_str(),
      ModelKey.c_str(), LatencyMs, TargetMs, LatencyMs - TargetMs);
  if (HasDecision) {
    Out += formatString("  decision %.1f ms earlier: %s -> %s",
                        DecisionAgeMs, DecisionReason.c_str(),
                        DecisionConfig.c_str());
    if (PredictedMs >= 0.0)
      Out += formatString(", predicted %.1f ms (actual %.1f ms)",
                          PredictedMs, LatencyMs);
    Out += "\n";
  } else {
    Out += "  no governor decision precedes this violation\n";
  }
  if (Path.Steps.empty()) {
    Out += "  critical path: (no span data in log)\n";
    return Out;
  }
  Out += "  critical path:\n";
  for (size_t I = 0; I < Path.Steps.size(); ++I) {
    const PathStep &Step = Path.Steps[I];
    Out += formatString("    %-24s %-14s wait %8.3f ms  dur %8.3f ms%s%s\n",
                        Step.S.Name.c_str(), Step.S.Thread.c_str(),
                        Step.WaitMs, Step.S.durationMs(),
                        Step.Candidate ? "" : "  (container)",
                        int(I) == Path.Bottleneck ? "  <- bottleneck" : "");
  }
  if (const PathStep *B = Path.bottleneck())
    Out += formatString(
        "  bottleneck: %s on %s (%.3f ms); chain %.1f ms, slack %.1f ms\n",
        B->S.Name.c_str(), B->S.Thread.c_str(), B->S.durationMs(),
        Path.TotalMs, Path.SlackMs);
  return Out;
}

std::vector<WhyReport> greenweb::buildWhyReports(const TelemetryLog &Log) {
  SpanIndex Index(Log);
  std::vector<const TelemetryRecord *> Decisions =
      Log.byKind(TelemetryEventKind::GovernorDecision);
  std::vector<WhyReport> Out;
  for (const TelemetryRecord &R : Log.records()) {
    if (R.Kind != TelemetryEventKind::QosViolation)
      continue;
    WhyReport W;
    W.TsUs = R.Ts.nanos() / 1e3;
    W.FrameId = int64_t(R.numberOr("frame", 0));
    W.RootId = int64_t(R.numberOr("root", 0));
    W.Governor = R.stringOr("governor", "");
    W.ModelKey = R.stringOr("key", "");
    W.QosKind = R.stringOr("qos", "");
    W.LatencyMs = R.numberOr("latency_ms", 0.0);
    W.TargetMs = R.numberOr("target_ms", 0.0);

    // The decision to blame: the nearest preceding one for this root,
    // else the nearest preceding one overall.
    const TelemetryRecord *SameRoot = nullptr;
    const TelemetryRecord *Any = nullptr;
    for (const TelemetryRecord *D : Decisions) {
      if (D->Ts > R.Ts)
        break;
      Any = D;
      if (W.RootId != 0 && int64_t(D->numberOr("root", 0)) == W.RootId)
        SameRoot = D;
    }
    if (const TelemetryRecord *D = SameRoot ? SameRoot : Any) {
      W.HasDecision = true;
      W.DecisionReason = D->stringOr("reason", "");
      W.DecisionConfig = D->stringOr("config", "");
      W.PredictedMs = D->numberOr("predicted_ms", -1.0);
      W.DecisionAgeMs = (R.Ts - D->Ts).millis();
    }

    // Continuous targets constrain frame production only; stale input
    // spans (a fling's first touch, seconds old) would mislead.
    bool IncludeInput = W.QosKind != "continuous" && W.RootId != 0;
    W.Path = extractCriticalPath(Index, W.FrameId, W.RootId, W.TargetMs,
                                 IncludeInput);
    Out.push_back(std::move(W));
  }
  return Out;
}
