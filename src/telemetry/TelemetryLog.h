//===- telemetry/TelemetryLog.h - Structured event log ----------*- C++ -*-===//
//
// Part of the GreenWeb reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The structured event log: an append-only sequence of typed,
/// virtual-clock-timestamped records — governor decisions, feedback
/// actions, DVFS switches, pipeline-stage durations, QoS violations, and
/// energy samples. Records carry a small set of key/value fields; the log
/// serializes to JSONL (one JSON object per line) for offline analysis.
///
/// Because every timestamp comes from the simulator's virtual clock and
/// field ordering is fixed at record time, a log of a fixed-seed run is
/// byte-for-bit reproducible.
///
//===----------------------------------------------------------------------===//

#ifndef GREENWEB_TELEMETRY_TELEMETRYLOG_H
#define GREENWEB_TELEMETRY_TELEMETRYLOG_H

#include "support/Time.h"

#include <cstdint>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace greenweb {

/// Record types the telemetry layer knows about.
enum class TelemetryEventKind : uint8_t {
  GovernorDecision, ///< A policy chose a chip configuration.
  FeedbackAction,   ///< Step-up / step-down / recalibrate on feedback.
  ConfigSwitch,     ///< The chip changed configuration (DVFS/migration).
  FrameStage,       ///< One pipeline stage of one frame completed.
  QosViolation,     ///< A frame missed its active QoS target.
  EnergySample,     ///< Periodic (DAQ-style) power/energy reading.
  CounterSample,    ///< Generic time-series point for trace counters.
  Span,             ///< A completed causal span (see SpanTracer).
  Fault,            ///< A fault window opened/closed or an injection landed.
  Alert,            ///< An online anomaly detector fired (see AnomalyDetector).
  Sched,            ///< Parallel-sweep scheduler event (see SchedTrace).
};

/// Stable lowercase name used in serialized output.
const char *telemetryEventKindName(TelemetryEventKind Kind);

/// Reverse of telemetryEventKindName; false for unknown names.
bool telemetryEventKindFromName(const std::string &Name,
                                TelemetryEventKind &Out);

/// One field of a record. Integers and doubles serialize as JSON
/// numbers, strings as JSON strings.
struct TelemetryField {
  std::string Key;
  std::variant<int64_t, double, std::string> Value;
};

/// One timestamped record.
struct TelemetryRecord {
  TelemetryEventKind Kind;
  TimePoint Ts;
  std::vector<TelemetryField> Fields;

  /// Field lookup helpers (nullptr / default when absent or mistyped).
  /// string_view keys let per-record consumers pass literals without a
  /// std::string allocation per lookup.
  const TelemetryField *find(std::string_view Key) const;
  double numberOr(std::string_view Key, double Default) const;
  std::string stringOr(std::string_view Key,
                       const std::string &Default) const;
};

/// Serializes one record as the single-line JSON object toJsonl emits
/// (no trailing newline). The flight recorder reuses this for black-box
/// dumps so a dumped record is byte-identical to its log line.
std::string telemetryRecordJson(const TelemetryRecord &R);

/// Round-trips \p X through the JSONL number format (%.6f, trailing
/// zeros trimmed) and back, yielding the double an offline consumer of
/// the serialized log would see. The anomaly detectors score this
/// canonical value rather than the raw one so online detection and
/// offline replay of the log agree bit-for-bit even for fields (like
/// the free-running energy accumulator) that lose precision in
/// serialization.
double telemetryCanonicalNumber(double X);

/// Append-only record log with JSONL export.
class TelemetryLog {
public:
  void append(TelemetryEventKind Kind, TimePoint Ts,
              std::vector<TelemetryField> Fields);

  const std::vector<TelemetryRecord> &records() const { return Records; }
  size_t size() const { return Records.size(); }
  bool empty() const { return Records.empty(); }
  void clear() { Records.clear(); }

  /// Pointers into the log for one record kind, in log order.
  std::vector<const TelemetryRecord *>
  byKind(TelemetryEventKind Kind) const;

  /// One JSON object per line: {"ts_us":...,"kind":"...",<fields>}.
  std::string toJsonl() const;

  /// Parses a toJsonl()-shaped document back into a log, so offline
  /// tools (gw-inspect) analyze the exact structures the in-process
  /// analyzers see. Field values parse as int64 when the literal has
  /// no '.'/exponent (toJsonl always prints doubles with a '.', so the
  /// round trip preserves types). Lines that are not objects or name
  /// an unknown kind are skipped and counted in \p SkippedLines.
  static TelemetryLog fromJsonl(const std::string &Text,
                                size_t *SkippedLines = nullptr);

private:
  std::vector<TelemetryRecord> Records;
};

} // namespace greenweb

#endif // GREENWEB_TELEMETRY_TELEMETRYLOG_H
