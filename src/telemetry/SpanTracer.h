//===- telemetry/SpanTracer.h - Causal span recording -----------*- C++ -*-===//
//
// Part of the GreenWeb reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parent-linked span recording over the virtual clock. A span is one
/// contiguous piece of attributable work — an input event's lifetime, a
/// task on a SimThread, a frame's production window, a governor
/// decision — linked to the span that caused it. Producers propagate
/// causality through a single ambient "current span" slot that the
/// simulator saves and restores around every event callback and that
/// SimThread captures at post() time, so spans form a DAG rooted at
/// input events without any producer passing ids around explicitly.
///
/// Spans carry two attribution tags that children inherit from their
/// parent when not set explicitly: \c Root (the FrameTracker RootId of
/// the originating input, 0 for orphans) and \c Frame (the display
/// frame the work belongs to, 0 for off-frame work). Completed spans
/// are mirrored into the telemetry log as \c span records, which is the
/// only representation the offline analyzers (CriticalPath,
/// EnergyAttribution, gw-inspect) consume — in-process and
/// from-artifact diagnoses are therefore identical by construction.
///
//===----------------------------------------------------------------------===//

#ifndef GREENWEB_TELEMETRY_SPANTRACER_H
#define GREENWEB_TELEMETRY_SPANTRACER_H

#include "support/Time.h"

#include <cstdint>
#include <string>
#include <vector>

namespace greenweb {

class Telemetry;

/// Records parent-linked spans; owned by a Telemetry hub (see file
/// comment). Ids are 1-based and sequential, so a fixed-seed run
/// allocates identical ids.
class SpanTracer {
public:
  /// One piece of attributable work.
  struct Span {
    int64_t Id = 0;     ///< 1-based sequential id (0 = "no span").
    int64_t Parent = 0; ///< Causing span (0 = causal root).
    int64_t Root = 0;   ///< Originating input RootId (0 = orphan).
    int64_t Frame = 0;  ///< Display frame the work serves (0 = none).
    std::string Name;   ///< Task label / stage / "input:<type>"...
    std::string Thread; ///< Track: thread name, "inputs", "frames"...
    TimePoint Begin;
    TimePoint End;
    bool Open = true; ///< Still running (End not meaningful yet).
  };

  /// Sentinel for begin(): parent under the ambient current span.
  static constexpr int64_t UseCurrent = -1;

  explicit SpanTracer(Telemetry *Hub) : Hub(Hub) {}
  SpanTracer(const SpanTracer &) = delete;
  SpanTracer &operator=(const SpanTracer &) = delete;

  /// Tracing switch, independent of the hub's master switch. Disabled
  /// tracing makes begin() return 0 and retains nothing — the mode for
  /// metrics-only sweeps (Telemetry::setLogCapacity(0) turns it off).
  bool tracingEnabled() const { return Enabled; }
  void setTracingEnabled(bool On) { Enabled = On; }

  /// Opens a span beginning now. \p Parent may be an explicit id, 0 for
  /// a causal root, or UseCurrent for the ambient context. Root/Frame
  /// default to the parent's tags when passed as 0. Returns the id, or
  /// 0 when tracing is disabled.
  int64_t begin(std::string Name, std::string Thread, int64_t Root = 0,
                int64_t Frame = 0, int64_t Parent = UseCurrent);

  /// Closes \p Id at the current instant and mirrors it into the
  /// telemetry log. No-op for 0, unknown, or already-closed ids.
  void end(int64_t Id);

  /// Re-tags an open span's frame (used to detach aborted frames).
  void setFrame(int64_t Id, int64_t FrameId);

  /// The ambient causal context; setCurrent returns the previous value
  /// so callers can restore it (set/restore discipline, no stack).
  int64_t current() const { return Current; }
  int64_t setCurrent(int64_t Id) {
    int64_t Prev = Current;
    Current = Id;
    return Prev;
  }

  /// All spans begun so far (open and closed), by id order.
  const std::vector<Span> &spans() const { return All; }
  const Span *find(int64_t Id) const;
  size_t openCount() const;

  /// Force-closes every open span at the current instant, mirroring
  /// each with a truncation marker ("open":1) — call before exporting
  /// so work still in flight at session end is visible offline.
  void finishAll();

  void clear();

private:
  Span *findMutable(int64_t Id);

  Telemetry *Hub;
  bool Enabled = true;
  int64_t Current = 0;
  std::vector<Span> All;
};

} // namespace greenweb

#endif // GREENWEB_TELEMETRY_SPANTRACER_H
