//===- telemetry/FleetReport.h - Fleet checkpoints and reports --*- C++ -*-===//
//
// Part of the GreenWeb reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The durable half of fleet-scale observability: FleetState is the
/// folded aggregate a population run accumulates (stream aggregator,
/// per-shard rollups, worst-k devices, warm-asset keys), FleetCheckpoint
/// wraps it with a completed-item bitmap and a length+checksum integrity
/// footer so an interrupted run resumes exactly, and FleetReport derives
/// the headline document (QoS-violation distribution, energy saved per
/// million users vs a named baseline governor, shard rollups, worst-k
/// devices with flight-recorder black-box refs, warm-pool hit rate).
///
/// Everything here is deterministic: state serializes doubles as
/// hexfloats (exact round-trip), the report derives only from state —
/// never from host wall-clock — and both print with fixed formats. That
/// is what makes the two parity gates hold: a run killed mid-fleet and
/// resumed folds to a byte-identical report, and `gw-inspect fleet`
/// re-derives the report offline byte-for-byte from the checkpoint
/// alone (mirroring the `gw-inspect sched` contract).
///
//===----------------------------------------------------------------------===//

#ifndef GREENWEB_TELEMETRY_FLEETREPORT_H
#define GREENWEB_TELEMETRY_FLEETREPORT_H

#include "telemetry/StreamAggregator.h"

#include <cstdint>
#include <string>
#include <vector>

namespace greenweb {

/// Per-shard (one scheduled batch) deterministic rollup. Host wall
/// times deliberately do not appear here — they would break resume
/// parity; the fleet driver prints them live instead (and SchedTrace
/// remains the opt-in home for host-side scheduler observability).
struct FleetShardRollup {
  uint64_t Shard = 0;     ///< Batch index in plan order.
  uint64_t FirstItem = 0; ///< First plan-item index of the shard.
  uint64_t Items = 0;     ///< Items folded (the shard's size).
  uint64_t QosViolations = 0;
  uint64_t Alerts = 0;
  double Joules = 0.0;
  /// Worst device of the shard: highest scenario-scored violation
  /// percentage, ties broken toward the lower item index.
  uint64_t WorstItem = 0;
  std::string WorstLabel;
  double WorstViolationPct = 0.0;
};

/// One of the population's worst-k devices (highest violation
/// percentage; ties by higher joules, then lower item index).
struct FleetWorstDevice {
  uint64_t Item = 0;
  std::string Label; ///< "App|Governor|s<seed>|<scenario>|r<replica>".
  double ViolationPct = 0.0;
  double Joules = 0.0;
  uint64_t Alerts = 0;
  /// Flight-recorder black-box ref (a file the driver wrote next to the
  /// checkpoint), empty when the run tripped no recorder trigger or no
  /// checkpoint path was configured.
  std::string BlackBoxRef;
};

/// The folded aggregate state of a (possibly partial) fleet run.
struct FleetState {
  /// Devices retained in the worst-k list.
  static constexpr size_t WorstKCapacity = 8;

  StreamAggregator Agg;
  std::vector<FleetShardRollup> Shards; ///< In shard order.
  std::vector<FleetWorstDevice> Worst;  ///< Sorted worst-first, <= k.
  /// Distinct warm-asset keys ("app#seed") among folded items, sorted.
  /// Deterministic stand-in for live WarmCache counters: an
  /// uninterrupted run's pool builds exactly one asset per key, so
  /// hit-rate derived here equals the live rate while staying
  /// resume-exact.
  std::vector<std::string> WarmKeys;

  /// Folds \p D into the worst-k list (insertion sort + truncate).
  void noteDevice(FleetWorstDevice D);
  /// Records \p Key into WarmKeys if new (kept sorted).
  void noteWarmKey(const std::string &Key);

  /// Exact JSON round-trip (hexfloat doubles, integer counts).
  std::string toJson() const;
  static bool fromJson(const json::Value &V, FleetState &Out,
                       std::string *Error = nullptr);
};

/// A durable checkpoint: plan identity, completed-item bitmap, folded
/// state, optionally the embedded final report, and an integrity footer
/// (payload length + FNV-1a checksum) so truncation and corruption are
/// detected rather than silently re-run.
struct FleetCheckpoint {
  std::string PlanName;
  uint64_t PlanHash = 0; ///< FNV-1a of the canonical plan JSON.
  std::string BaselineGovernor;
  uint64_t ItemsTotal = 0;
  std::vector<uint8_t> DoneBitmap; ///< ceil(ItemsTotal/8) bytes.
  FleetState State;
  /// The final report (single-line JSON object, no trailing newline),
  /// embedded once the run completes; empty while partial.
  std::string ReportJson;

  bool done(uint64_t Item) const;
  void markDone(uint64_t Item);
  uint64_t doneCount() const;

  /// One JSON document ending in the integrity footer; load() verifies
  /// the footer before trusting anything else.
  std::string serialize() const;
  static bool load(const std::string &Text, FleetCheckpoint &Out,
                   std::string *Error = nullptr);
};

/// The fleet-level headline document, derived purely from checkpoint
/// state (plus plan identity), so online and offline derivations agree
/// byte-for-byte.
struct FleetReport {
  std::string PlanName;
  std::string BaselineGovernor;
  uint64_t ItemsTotal = 0;
  uint64_t ItemsDone = 0;
  FleetState State;

  static FleetReport fromCheckpoint(const FleetCheckpoint &C);

  /// Single-line deterministic JSON document (ends without newline, so
  /// it embeds verbatim into the checkpoint's "report" member).
  std::string toJson() const;
  /// Human-readable multi-section summary.
  std::string format() const;
};

/// FNV-1a 64-bit over \p Text; the checkpoint/plan hash primitive.
uint64_t fleetHash(std::string_view Text);

/// Extracts the embedded "report" JSON object byte-for-byte from a
/// checkpoint document (balanced-brace scan, string-aware). Empty when
/// the checkpoint carries no report (run still partial).
std::string fleetReportSectionFromArtifact(const std::string &Text);

} // namespace greenweb

#endif // GREENWEB_TELEMETRY_FLEETREPORT_H
