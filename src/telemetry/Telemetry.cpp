//===- telemetry/Telemetry.cpp - Telemetry hub -----------------------------===//
//
// Part of the GreenWeb reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "telemetry/Telemetry.h"

using namespace greenweb;

void Telemetry::appendRecord(TelemetryEventKind Kind,
                             std::vector<TelemetryField> Fields) {
  if (Log.size() >= LogCapacity) {
    Metrics.counter("telemetry.dropped_records").add();
    return;
  }
  Log.append(Kind, now(), std::move(Fields));
}

void Telemetry::recordGovernorDecision(const GovernorDecisionRecord &R) {
  if (!Enabled)
    return;
  Metrics.counter("governor.decisions").add();
  appendRecord(TelemetryEventKind::GovernorDecision,
               {{"governor", R.Governor},
                {"reason", R.Reason},
                {"config", R.Config},
                {"big", R.CoreIsBig},
                {"freq_mhz", R.FreqMHz},
                {"root", R.RootId},
                {"key", R.ModelKey},
                {"predicted_ms", R.PredictedMs},
                {"target_ms", R.TargetMs},
                {"offset", R.FeedbackOffset}});
}

void Telemetry::recordFeedbackAction(const FeedbackActionRecord &R) {
  if (!Enabled)
    return;
  Metrics.counter("governor.feedback_" + R.Action).add();
  appendRecord(TelemetryEventKind::FeedbackAction,
               {{"governor", R.Governor},
                {"action", R.Action},
                {"key", R.ModelKey},
                {"offset", R.NewOffset},
                {"measured_ms", R.MeasuredMs},
                {"predicted_ms", R.PredictedMs},
                {"target_ms", R.TargetMs}});
}

void Telemetry::recordConfigSwitch(const ConfigSwitchRecord &R) {
  if (!Enabled)
    return;
  if (R.FreqChanged)
    Metrics.counter("hw.freq_switches").add();
  if (R.Migrated)
    Metrics.counter("hw.migrations").add();
  Metrics.gauge("hw.switch_penalty_us_total").add(R.PenaltyUs);
  appendRecord(TelemetryEventKind::ConfigSwitch,
               {{"from", R.FromConfig},
                {"to", R.ToConfig},
                {"big", R.ToCoreIsBig},
                {"freq_mhz", R.ToFreqMHz},
                {"freq_changed", R.FreqChanged},
                {"migrated", R.Migrated},
                {"penalty_us", R.PenaltyUs}});
}

void Telemetry::recordFrameStage(const FrameStageRecord &R) {
  if (!Enabled)
    return;
  Metrics
      .histogram("browser.stage_" + R.Stage + "_ms",
                 defaultLatencyBucketsMs())
      .observe(R.DurationMs);
  appendRecord(TelemetryEventKind::FrameStage,
               {{"frame", R.FrameId},
                {"stage", R.Stage},
                {"duration_ms", R.DurationMs}});
}

void Telemetry::recordQosViolation(const QosViolationRecord &R) {
  if (!Enabled)
    return;
  Metrics.counter("qos.violations").add();
  Metrics.histogram("qos.violation_overshoot_ms", defaultLatencyBucketsMs())
      .observe(R.LatencyMs - R.TargetMs);
  appendRecord(TelemetryEventKind::QosViolation,
               {{"governor", R.Governor},
                {"root", R.RootId},
                {"key", R.ModelKey},
                {"latency_ms", R.LatencyMs},
                {"target_ms", R.TargetMs},
                {"frame", R.FrameId},
                {"qos", R.QosKind}});
}

void Telemetry::recordSpan(const SpanTracer::Span &S, bool Truncated) {
  if (!Enabled)
    return;
  Metrics.counter("telemetry.spans").add();
  appendRecord(TelemetryEventKind::Span,
               {{"id", S.Id},
                {"parent", S.Parent},
                {"root", S.Root},
                {"frame", S.Frame},
                {"name", S.Name},
                {"thread", S.Thread},
                {"begin_us", S.Begin.nanos() / 1e3},
                {"dur_ms", (S.End - S.Begin).millis()},
                {"open", int64_t(Truncated ? 1 : 0)}});
}

void Telemetry::recordEnergySample(const EnergySampleRecord &R) {
  if (!Enabled)
    return;
  Metrics.counter("hw.energy_samples").add();
  Metrics.gauge("hw.power_watts").set(R.Watts);
  Metrics.gauge("hw.cumulative_joules").set(R.CumulativeJoules);
  appendRecord(TelemetryEventKind::EnergySample,
               {{"watts", R.Watts},
                {"joules", R.CumulativeJoules},
                {"queue_depth", R.QueueDepth}});
}

void Telemetry::recordCounterSample(const std::string &Track,
                                    double Value) {
  if (!Enabled)
    return;
  Metrics.gauge("counter." + Track).set(Value);
  appendRecord(TelemetryEventKind::CounterSample,
               {{"track", Track}, {"value", Value}});
}
