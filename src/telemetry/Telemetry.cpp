//===- telemetry/Telemetry.cpp - Telemetry hub -----------------------------===//
//
// Part of the GreenWeb reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "telemetry/Telemetry.h"

#include "telemetry/AnomalyDetector.h"
#include "telemetry/FlightRecorder.h"

using namespace greenweb;

Telemetry::Telemetry() = default;

Telemetry::Telemetry(ClockFn Clock) : Clock(std::move(Clock)) {}

Telemetry::~Telemetry() = default;

void Telemetry::enableAnomalyDetectors() {
  enableAnomalyDetectors(DetectorConfig{});
}

void Telemetry::enableAnomalyDetectors(const DetectorConfig &C) {
  Bank = std::make_unique<DetectorBank>(C);
  AlertsCtr = &Metrics.counter("telemetry.alerts");
}

void Telemetry::enableFlightRecorder() {
  enableFlightRecorder(FlightRecorderConfig{});
}

void Telemetry::enableFlightRecorder(const FlightRecorderConfig &C) {
  Recorder = std::make_unique<FlightRecorder>(C);
}

void Telemetry::appendRecord(TelemetryEventKind Kind,
                             std::vector<TelemetryField> Fields) {
  if (Bank || Recorder) {
    observeAndAppend(Kind, std::move(Fields));
    return;
  }
  if (Log.size() >= LogCapacity) {
    Metrics.counter("telemetry.dropped_records").add();
    return;
  }
  Log.append(Kind, now(), std::move(Fields));
}

void Telemetry::observeAndAppend(TelemetryEventKind Kind,
                                 std::vector<TelemetryField> Fields) {
  TelemetryRecord R{Kind, now(), std::move(Fields)};
  // The ring and the detectors see every record, capped log or not —
  // that is the whole point of the flight recorder. Feed order (record,
  // then its alerts) matches replayObservability exactly, so offline
  // replay of the exported log reproduces alerts and dumps byte for
  // byte.
  std::vector<TelemetryRecord> Alerts =
      observeTelemetryRecord(R, Recorder.get(), Bank.get());
  if (Log.size() < LogCapacity)
    Log.append(R.Kind, R.Ts, std::move(R.Fields));
  else
    Metrics.counter("telemetry.dropped_records").add();
  for (TelemetryRecord &A : Alerts) {
    if (AlertsCtr)
      AlertsCtr->add();
    Metrics.counter("telemetry.alerts." + A.stringOr("detector", "?"))
        .add();
    // Alerts bypass the capacity cap: rare, and the one thing a
    // metrics-only sweep still records.
    Log.append(A.Kind, A.Ts, std::move(A.Fields));
  }
}

void Telemetry::mergeLogFrom(const TelemetryLog &Other) {
  for (const TelemetryRecord &R : Other.records()) {
    // Mirror the live append paths: Alerts always land (the bypass is
    // their whole contract — see observeAndAppend); everything else is
    // subject to this hub's capacity, with drops counted. Appended
    // alerts grow Log.size() and so count against later capacity
    // checks, exactly as live.
    if (R.Kind != TelemetryEventKind::Alert && Log.size() >= LogCapacity) {
      Metrics.counter("telemetry.dropped_records").add();
      continue;
    }
    Log.append(R.Kind, R.Ts, R.Fields);
  }
}

void Telemetry::recordGovernorDecision(const GovernorDecisionRecord &R) {
  if (!Enabled)
    return;
  Metrics.counter("governor.decisions").add();
  appendRecord(TelemetryEventKind::GovernorDecision,
               {{"governor", R.Governor},
                {"reason", R.Reason},
                {"config", R.Config},
                {"big", R.CoreIsBig},
                {"freq_mhz", R.FreqMHz},
                {"root", R.RootId},
                {"key", R.ModelKey},
                {"predicted_ms", R.PredictedMs},
                {"target_ms", R.TargetMs},
                {"offset", R.FeedbackOffset}});
}

void Telemetry::recordFeedbackAction(const FeedbackActionRecord &R) {
  if (!Enabled)
    return;
  Metrics.counter("governor.feedback_" + R.Action).add();
  appendRecord(TelemetryEventKind::FeedbackAction,
               {{"governor", R.Governor},
                {"action", R.Action},
                {"key", R.ModelKey},
                {"offset", R.NewOffset},
                {"measured_ms", R.MeasuredMs},
                {"predicted_ms", R.PredictedMs},
                {"target_ms", R.TargetMs}});
}

void Telemetry::recordConfigSwitch(const ConfigSwitchRecord &R) {
  if (!Enabled)
    return;
  if (R.FreqChanged)
    Metrics.counter("hw.freq_switches").add();
  if (R.Migrated)
    Metrics.counter("hw.migrations").add();
  Metrics.gauge("hw.switch_penalty_us_total").add(R.PenaltyUs);
  appendRecord(TelemetryEventKind::ConfigSwitch,
               {{"from", R.FromConfig},
                {"to", R.ToConfig},
                {"big", R.ToCoreIsBig},
                {"freq_mhz", R.ToFreqMHz},
                {"freq_changed", R.FreqChanged},
                {"migrated", R.Migrated},
                {"penalty_us", R.PenaltyUs}});
}

void Telemetry::recordFrameStage(const FrameStageRecord &R) {
  if (!Enabled)
    return;
  Metrics
      .histogram("browser.stage_" + R.Stage + "_ms",
                 defaultLatencyBucketsMs())
      .observe(R.DurationMs);
  // Hot per-frame path: build fields in place instead of copying an
  // initializer list of string-carrying variants.
  std::vector<TelemetryField> Fields;
  Fields.reserve(3);
  Fields.push_back({"frame", R.FrameId});
  Fields.push_back({"stage", R.Stage});
  Fields.push_back({"duration_ms", R.DurationMs});
  appendRecord(TelemetryEventKind::FrameStage, std::move(Fields));
}

void Telemetry::recordQosViolation(const QosViolationRecord &R) {
  if (!Enabled)
    return;
  Metrics.counter("qos.violations").add();
  Metrics.histogram("qos.violation_overshoot_ms", defaultLatencyBucketsMs())
      .observe(R.LatencyMs - R.TargetMs);
  appendRecord(TelemetryEventKind::QosViolation,
               {{"governor", R.Governor},
                {"root", R.RootId},
                {"key", R.ModelKey},
                {"latency_ms", R.LatencyMs},
                {"target_ms", R.TargetMs},
                {"frame", R.FrameId},
                {"qos", R.QosKind}});
}

void Telemetry::recordSpan(const SpanTracer::Span &S, bool Truncated) {
  if (!Enabled)
    return;
  Metrics.counter("telemetry.spans").add();
  // Hot path: one record per completed span.
  std::vector<TelemetryField> Fields;
  Fields.reserve(9);
  Fields.push_back({"id", S.Id});
  Fields.push_back({"parent", S.Parent});
  Fields.push_back({"root", S.Root});
  Fields.push_back({"frame", S.Frame});
  Fields.push_back({"name", S.Name});
  Fields.push_back({"thread", S.Thread});
  Fields.push_back({"begin_us", S.Begin.nanos() / 1e3});
  Fields.push_back({"dur_ms", (S.End - S.Begin).millis()});
  Fields.push_back({"open", int64_t(Truncated ? 1 : 0)});
  appendRecord(TelemetryEventKind::Span, std::move(Fields));
}

void Telemetry::recordEnergySample(const EnergySampleRecord &R) {
  if (!Enabled)
    return;
  Metrics.counter("hw.energy_samples").add();
  Metrics.gauge("hw.power_watts").set(R.Watts);
  Metrics.gauge("hw.cumulative_joules").set(R.CumulativeJoules);
  appendRecord(TelemetryEventKind::EnergySample,
               {{"watts", R.Watts},
                {"joules", R.CumulativeJoules},
                {"queue_depth", R.QueueDepth}});
}

void Telemetry::recordFaultEvent(const FaultEventRecord &R) {
  if (!Enabled)
    return;
  Metrics.counter("faults." + R.Fault + "." + R.Phase).add();
  appendRecord(TelemetryEventKind::Fault,
               {{"fault", R.Fault},
                {"phase", R.Phase},
                {"detail", R.Detail},
                {"value", R.Value}});
}

void Telemetry::recordCounterSample(const std::string &Track,
                                    double Value) {
  if (!Enabled)
    return;
  Metrics.gauge("counter." + Track).set(Value);
  appendRecord(TelemetryEventKind::CounterSample,
               {{"track", Track}, {"value", Value}});
}
