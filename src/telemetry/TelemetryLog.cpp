//===- telemetry/TelemetryLog.cpp - Structured event log -------------------===//
//
// Part of the GreenWeb reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "telemetry/TelemetryLog.h"

#include "support/StringUtils.h"

#include <cctype>
#include <cmath>
#include <cstdlib>

using namespace greenweb;

const char *greenweb::telemetryEventKindName(TelemetryEventKind Kind) {
  switch (Kind) {
  case TelemetryEventKind::GovernorDecision:
    return "governor_decision";
  case TelemetryEventKind::FeedbackAction:
    return "feedback_action";
  case TelemetryEventKind::ConfigSwitch:
    return "config_switch";
  case TelemetryEventKind::FrameStage:
    return "frame_stage";
  case TelemetryEventKind::QosViolation:
    return "qos_violation";
  case TelemetryEventKind::EnergySample:
    return "energy_sample";
  case TelemetryEventKind::CounterSample:
    return "counter_sample";
  case TelemetryEventKind::Span:
    return "span";
  case TelemetryEventKind::Fault:
    return "fault";
  case TelemetryEventKind::Alert:
    return "alert";
  case TelemetryEventKind::Sched:
    return "sched";
  }
  return "unknown";
}

bool greenweb::telemetryEventKindFromName(const std::string &Name,
                                          TelemetryEventKind &Out) {
  static const TelemetryEventKind Kinds[] = {
      TelemetryEventKind::GovernorDecision, TelemetryEventKind::FeedbackAction,
      TelemetryEventKind::ConfigSwitch,     TelemetryEventKind::FrameStage,
      TelemetryEventKind::QosViolation,     TelemetryEventKind::EnergySample,
      TelemetryEventKind::CounterSample,    TelemetryEventKind::Span,
      TelemetryEventKind::Fault,            TelemetryEventKind::Alert,
      TelemetryEventKind::Sched};
  for (TelemetryEventKind K : Kinds)
    if (Name == telemetryEventKindName(K)) {
      Out = K;
      return true;
    }
  return false;
}

const TelemetryField *TelemetryRecord::find(std::string_view Key) const {
  for (const TelemetryField &F : Fields)
    if (F.Key == Key)
      return &F;
  return nullptr;
}

double TelemetryRecord::numberOr(std::string_view Key,
                                 double Default) const {
  const TelemetryField *F = find(Key);
  if (!F)
    return Default;
  if (const int64_t *I = std::get_if<int64_t>(&F->Value))
    return double(*I);
  if (const double *D = std::get_if<double>(&F->Value))
    return *D;
  return Default;
}

std::string TelemetryRecord::stringOr(std::string_view Key,
                                      const std::string &Default) const {
  const TelemetryField *F = find(Key);
  if (!F)
    return Default;
  if (const std::string *S = std::get_if<std::string>(&F->Value))
    return *S;
  return Default;
}

void TelemetryLog::append(TelemetryEventKind Kind, TimePoint Ts,
                          std::vector<TelemetryField> Fields) {
  Records.push_back({Kind, Ts, std::move(Fields)});
}

std::vector<const TelemetryRecord *>
TelemetryLog::byKind(TelemetryEventKind Kind) const {
  std::vector<const TelemetryRecord *> Out;
  for (const TelemetryRecord &R : Records)
    if (R.Kind == Kind)
      Out.push_back(&R);
  return Out;
}

namespace {

std::string formatFieldNumber(double X) {
  std::string S = formatString("%.6f", X);
  size_t Last = S.find_last_not_of('0');
  if (S[Last] == '.')
    ++Last;
  S.erase(Last + 1);
  return S;
}

} // namespace

double greenweb::telemetryCanonicalNumber(double X) {
  return std::strtod(formatFieldNumber(X).c_str(), nullptr);
}

std::string greenweb::telemetryRecordJson(const TelemetryRecord &R) {
  std::string Out = formatString("{\"ts_us\":%.3f,\"kind\":\"%s\"",
                                 R.Ts.nanos() / 1e3,
                                 telemetryEventKindName(R.Kind));
  for (const TelemetryField &F : R.Fields) {
    Out += formatString(",\"%s\":", jsonEscape(F.Key).c_str());
    if (const int64_t *I = std::get_if<int64_t>(&F.Value))
      Out += formatString("%lld", static_cast<long long>(*I));
    else if (const double *D = std::get_if<double>(&F.Value))
      Out += formatFieldNumber(*D);
    else
      Out += formatString(
          "\"%s\"", jsonEscape(std::get<std::string>(F.Value)).c_str());
  }
  Out += "}";
  return Out;
}

std::string TelemetryLog::toJsonl() const {
  std::string Out;
  for (const TelemetryRecord &R : Records) {
    Out += telemetryRecordJson(R);
    Out += "\n";
  }
  return Out;
}

namespace {

/// Minimal parser for the flat one-object-per-line JSON that toJsonl
/// emits: string keys, string or number values, no nesting. Strings
/// understand the \" and \\ escapes jsonEscape produces.
class JsonlLineParser {
public:
  JsonlLineParser(const char *Begin, const char *End) : P(Begin), E(End) {}

  bool parse(TelemetryRecord &R, double &TsUs, std::string &KindName) {
    skipWs();
    if (!consume('{'))
      return false;
    bool First = true;
    while (true) {
      skipWs();
      if (consume('}'))
        break;
      if (!First && !consume(','))
        return false;
      First = false;
      skipWs();
      std::string Key;
      if (!parseString(Key))
        return false;
      skipWs();
      if (!consume(':'))
        return false;
      skipWs();
      if (P != E && *P == '"') {
        std::string S;
        if (!parseString(S))
          return false;
        if (Key == "kind")
          KindName = std::move(S);
        else
          R.Fields.push_back({std::move(Key), std::move(S)});
      } else {
        double D = 0.0;
        int64_t I = 0;
        bool IsInt = false;
        if (!parseNumber(D, I, IsInt))
          return false;
        if (Key == "ts_us")
          TsUs = D;
        else if (IsInt)
          R.Fields.push_back({std::move(Key), I});
        else
          R.Fields.push_back({std::move(Key), D});
      }
    }
    skipWs();
    return P == E;
  }

private:
  void skipWs() {
    while (P != E && std::isspace(static_cast<unsigned char>(*P)))
      ++P;
  }

  bool consume(char C) {
    if (P == E || *P != C)
      return false;
    ++P;
    return true;
  }

  bool parseString(std::string &Out) {
    if (!consume('"'))
      return false;
    while (P != E && *P != '"') {
      char C = *P++;
      if (C == '\\') {
        if (P == E)
          return false;
        C = *P++;
      }
      Out += C;
    }
    return consume('"');
  }

  bool parseNumber(double &D, int64_t &I, bool &IsInt) {
    const char *Start = P;
    bool Dot = false, Exp = false;
    while (P != E &&
           (std::isdigit(static_cast<unsigned char>(*P)) || *P == '.' ||
            *P == 'e' || *P == 'E' || *P == '-' || *P == '+')) {
      if (*P == '.')
        Dot = true;
      if (*P == 'e' || *P == 'E')
        Exp = true;
      ++P;
    }
    if (P == Start)
      return false;
    std::string Tok(Start, P);
    // toJsonl prints every double with a decimal point and every
    // integer without one, so the literal's shape recovers the type.
    IsInt = !Dot && !Exp;
    if (IsInt) {
      I = std::strtoll(Tok.c_str(), nullptr, 10);
      D = double(I);
    } else {
      D = std::strtod(Tok.c_str(), nullptr);
    }
    return true;
  }

  const char *P;
  const char *E;
};

} // namespace

TelemetryLog TelemetryLog::fromJsonl(const std::string &Text,
                                     size_t *SkippedLines) {
  TelemetryLog Out;
  size_t Skipped = 0;
  size_t Pos = 0;
  while (Pos < Text.size()) {
    size_t Eol = Text.find('\n', Pos);
    if (Eol == std::string::npos)
      Eol = Text.size();
    const char *B = Text.data() + Pos;
    const char *E = Text.data() + Eol;
    Pos = Eol + 1;
    bool Blank = true;
    for (const char *Q = B; Q != E; ++Q)
      if (!std::isspace(static_cast<unsigned char>(*Q))) {
        Blank = false;
        break;
      }
    if (Blank)
      continue;
    TelemetryRecord R;
    double TsUs = 0.0;
    std::string KindName;
    JsonlLineParser Parser(B, E);
    TelemetryEventKind Kind;
    if (!Parser.parse(R, TsUs, KindName) ||
        !telemetryEventKindFromName(KindName, Kind)) {
      ++Skipped;
      continue;
    }
    R.Kind = Kind;
    R.Ts = TimePoint::fromNanos(int64_t(std::llround(TsUs * 1e3)));
    Out.Records.push_back(std::move(R));
  }
  if (SkippedLines)
    *SkippedLines = Skipped;
  return Out;
}
