//===- telemetry/TelemetryLog.cpp - Structured event log -------------------===//
//
// Part of the GreenWeb reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "telemetry/TelemetryLog.h"

#include "support/StringUtils.h"

using namespace greenweb;

const char *greenweb::telemetryEventKindName(TelemetryEventKind Kind) {
  switch (Kind) {
  case TelemetryEventKind::GovernorDecision:
    return "governor_decision";
  case TelemetryEventKind::FeedbackAction:
    return "feedback_action";
  case TelemetryEventKind::ConfigSwitch:
    return "config_switch";
  case TelemetryEventKind::FrameStage:
    return "frame_stage";
  case TelemetryEventKind::QosViolation:
    return "qos_violation";
  case TelemetryEventKind::EnergySample:
    return "energy_sample";
  case TelemetryEventKind::CounterSample:
    return "counter_sample";
  }
  return "unknown";
}

const TelemetryField *TelemetryRecord::find(const std::string &Key) const {
  for (const TelemetryField &F : Fields)
    if (F.Key == Key)
      return &F;
  return nullptr;
}

double TelemetryRecord::numberOr(const std::string &Key,
                                 double Default) const {
  const TelemetryField *F = find(Key);
  if (!F)
    return Default;
  if (const int64_t *I = std::get_if<int64_t>(&F->Value))
    return double(*I);
  if (const double *D = std::get_if<double>(&F->Value))
    return *D;
  return Default;
}

std::string TelemetryRecord::stringOr(const std::string &Key,
                                      const std::string &Default) const {
  const TelemetryField *F = find(Key);
  if (!F)
    return Default;
  if (const std::string *S = std::get_if<std::string>(&F->Value))
    return *S;
  return Default;
}

void TelemetryLog::append(TelemetryEventKind Kind, TimePoint Ts,
                          std::vector<TelemetryField> Fields) {
  Records.push_back({Kind, Ts, std::move(Fields)});
}

std::vector<const TelemetryRecord *>
TelemetryLog::byKind(TelemetryEventKind Kind) const {
  std::vector<const TelemetryRecord *> Out;
  for (const TelemetryRecord &R : Records)
    if (R.Kind == Kind)
      Out.push_back(&R);
  return Out;
}

namespace {

std::string jsonEscape(const std::string &S) {
  std::string Out;
  for (char C : S) {
    if (C == '"' || C == '\\')
      Out += '\\';
    Out += C;
  }
  return Out;
}

std::string formatFieldNumber(double X) {
  std::string S = formatString("%.6f", X);
  size_t Last = S.find_last_not_of('0');
  if (S[Last] == '.')
    ++Last;
  S.erase(Last + 1);
  return S;
}

} // namespace

std::string TelemetryLog::toJsonl() const {
  std::string Out;
  for (const TelemetryRecord &R : Records) {
    Out += formatString("{\"ts_us\":%.3f,\"kind\":\"%s\"",
                        R.Ts.nanos() / 1e3,
                        telemetryEventKindName(R.Kind));
    for (const TelemetryField &F : R.Fields) {
      Out += formatString(",\"%s\":", jsonEscape(F.Key).c_str());
      if (const int64_t *I = std::get_if<int64_t>(&F.Value))
        Out += formatString("%lld", static_cast<long long>(*I));
      else if (const double *D = std::get_if<double>(&F.Value))
        Out += formatFieldNumber(*D);
      else
        Out += formatString(
            "\"%s\"",
            jsonEscape(std::get<std::string>(F.Value)).c_str());
    }
    Out += "}\n";
  }
  return Out;
}
