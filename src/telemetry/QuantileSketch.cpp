//===- telemetry/QuantileSketch.cpp - Mergeable quantile digest -----------===//
//
// Part of the GreenWeb reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "telemetry/QuantileSketch.h"

#include "support/Json.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>

using namespace greenweb;

namespace {

constexpr int32_t S = QuantileSketch::SubBucketsPerOctave;

/// Octaves outside [-40, 40] saturate into the edge buckets: values
/// below ~9e-13 or above ~2.2e12 are beyond anything the simulator
/// measures (milliseconds, millijoules), and a bounded key range keeps
/// hostile inputs from growing the map without bound.
constexpr int32_t MinKey = -40 * S;
constexpr int32_t MaxKey = 40 * S + (S - 1);

/// Bucket midpoint: key = octave*S + j covers [2^e*(1+j/S),
/// 2^e*(1+(j+1)/S)). ldexp and the linear arithmetic are exact IEEE
/// operations, so the representative is bit-stable everywhere.
double bucketMid(int32_t Key) {
  int32_t Oct = Key >= 0 ? Key / S : -((-Key + S - 1) / S);
  int32_t J = Key - Oct * S;
  double LoB = std::ldexp(1.0 + double(J) / S, Oct);
  double HiB = std::ldexp(1.0 + double(J + 1) / S, Oct);
  return 0.5 * (LoB + HiB);
}

} // namespace

void QuantileSketch::observe(double X) {
  if (!std::isfinite(X))
    return;
  double V = X <= 0.0 ? 0.0 : X;
  if (Count == 0) {
    Lo = Hi = V;
  } else {
    Lo = std::min(Lo, V);
    Hi = std::max(Hi, V);
  }
  ++Count;
  if (V == 0.0) {
    ++ZeroCount;
    return;
  }
  int E;
  double M = std::frexp(V, &E); // V = M * 2^E, M in [0.5, 1).
  double F = M * 2.0;           // F in [1, 2), V = F * 2^(E-1).
  int32_t J = int32_t((F - 1.0) * double(S));
  J = std::min(J, S - 1);
  int32_t Key = (E - 1) * S + J;
  Key = std::min(std::max(Key, MinKey), MaxKey);
  ++Buckets[Key];
}

void QuantileSketch::mergeFrom(const QuantileSketch &O) {
  if (O.Count == 0)
    return;
  if (Count == 0) {
    Lo = O.Lo;
    Hi = O.Hi;
  } else {
    Lo = std::min(Lo, O.Lo);
    Hi = std::max(Hi, O.Hi);
  }
  Count += O.Count;
  ZeroCount += O.ZeroCount;
  for (const auto &[Key, N] : O.Buckets)
    Buckets[Key] += N;
}

double QuantileSketch::quantile(double Q) const {
  if (Count == 0)
    return 0.0;
  Q = std::min(1.0, std::max(0.0, Q));
  uint64_t Rank = uint64_t(Q * double(Count - 1));
  if (Rank < ZeroCount)
    return 0.0;
  uint64_t Cum = ZeroCount;
  for (const auto &[Key, N] : Buckets) {
    Cum += N;
    if (Rank < Cum)
      return std::min(std::max(bucketMid(Key), Lo), Hi);
  }
  return Hi;
}

std::string QuantileSketch::serialize() const {
  std::string Out = formatString(
      "{\"s\":%d,\"count\":%llu,\"zero\":%llu,\"min\":\"%a\","
      "\"max\":\"%a\",\"buckets\":[",
      int(S), static_cast<unsigned long long>(Count),
      static_cast<unsigned long long>(ZeroCount), min(), max());
  bool First = true;
  for (const auto &[Key, N] : Buckets) {
    if (!First)
      Out += ",";
    First = false;
    Out += formatString("[%d,%llu]", int(Key),
                        static_cast<unsigned long long>(N));
  }
  Out += "]}";
  return Out;
}

bool QuantileSketch::deserialize(const json::Value &V, QuantileSketch &Out,
                                 std::string *Error) {
  auto Fail = [&](const char *Msg) {
    if (Error)
      *Error = Msg;
    return false;
  };
  if (!V.isObject())
    return Fail("sketch state is not an object");
  if (int(V.numberOr("s", 0)) != S)
    return Fail("sketch sub-bucket constant mismatch");
  QuantileSketch Q;
  Q.Count = uint64_t(V.numberOr("count", 0));
  Q.ZeroCount = uint64_t(V.numberOr("zero", 0));
  Q.Lo = std::strtod(V.stringOr("min", "0x0p+0").c_str(), nullptr);
  Q.Hi = std::strtod(V.stringOr("max", "0x0p+0").c_str(), nullptr);
  const json::Value *Buckets = V.get("buckets");
  if (!Buckets || !Buckets->isArray())
    return Fail("sketch state has no bucket array");
  uint64_t Sum = Q.ZeroCount;
  for (const json::Value &Entry : Buckets->Arr) {
    if (!Entry.isArray() || Entry.Arr.size() != 2 ||
        !Entry.Arr[0].isNumber() || !Entry.Arr[1].isNumber())
      return Fail("malformed sketch bucket entry");
    int32_t Key = int32_t(Entry.Arr[0].Num);
    uint64_t N = uint64_t(Entry.Arr[1].Num);
    if (Key < MinKey || Key > MaxKey)
      return Fail("sketch bucket key out of range");
    Q.Buckets[Key] += N;
    Sum += N;
  }
  if (Sum != Q.Count)
    return Fail("sketch bucket counts do not sum to the sample count");
  Out = std::move(Q);
  return true;
}
