//===- telemetry/EnergyAttribution.h - Joules per annotation ----*- C++ -*-===//
//
// Part of the GreenWeb reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Rolls the EnergyMeter's periodic samples up to QoS annotations
/// (Table 3's per-app energy breakdown, reproduced per annotation key).
/// Each sample interval's joule delta is split across the input-event
/// root spans active during the interval, proportionally to how long
/// each overlapped it — two events fully concurrent over an interval
/// get half the interval's energy each. A root's joules roll up to its
/// annotation key (the model key the governor recorded for it), or to
/// the event's "input:<type>" span name when the event never reached an
/// annotated decision. Intervals with no active root span bill to the
/// "(unattributed)" row (idle power, VSync housekeeping, profiling
/// between events), so the rows always sum to the meter total exactly.
///
/// Like CriticalPath, this reads only the telemetry log, so gw-inspect
/// reproduces the in-process tables from exported artifacts.
///
//===----------------------------------------------------------------------===//

#ifndef GREENWEB_TELEMETRY_ENERGYATTRIBUTION_H
#define GREENWEB_TELEMETRY_ENERGYATTRIBUTION_H

#include "telemetry/TelemetryLog.h"

#include <cstdint>
#include <string>
#include <vector>

namespace greenweb {

/// Row name used for energy no root span was active to absorb.
inline const char *unattributedEnergyKey() { return "(unattributed)"; }

/// Energy and QoS tallies of one annotation key.
struct AnnotationEnergy {
  std::string Key;
  double Joules = 0.0;
  uint64_t Violations = 0;
  uint64_t Roots = 0; ///< Distinct input events billed to this key.
};

struct EnergyAttributionResult {
  /// Sorted by joules descending (name ascending on ties); includes
  /// the "(unattributed)" row when it absorbed any energy.
  std::vector<AnnotationEnergy> Rows;
  double TotalJoules = 0.0;      ///< Sum of all rows == meter total.
  double AttributedJoules = 0.0; ///< Total minus "(unattributed)".
  uint64_t Samples = 0;          ///< Energy samples consumed.
};

/// Splits every energy_sample delta in \p Log across the root spans
/// active during it; see file comment for the semantics.
EnergyAttributionResult attributeEnergy(const TelemetryLog &Log);

/// Renders the top \p N rows (0 = all) as an aligned text table.
std::string formatEnergyTable(const EnergyAttributionResult &Result,
                              size_t N = 0);

} // namespace greenweb

#endif // GREENWEB_TELEMETRY_ENERGYATTRIBUTION_H
