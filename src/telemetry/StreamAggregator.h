//===- telemetry/StreamAggregator.h - Fleet-level run folding ---*- C++ -*-===//
//
// Part of the GreenWeb reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Streaming aggregation of per-run headline metrics into one
/// fleet-level summary: run counts, energy and violation distributions
/// (mergeable fixed-bucket histograms), and alert totals, grouped
/// overall / per-app / per-governor. A run folds in as one RunSample —
/// nothing per-run is retained — so aggregating thousands of
/// device x app x fault runs costs a few histograms, not a few
/// gigabytes of logs. This is the substrate a fleet driver sits on.
///
/// Aggregation is associative and order-insensitive for counts and
/// histograms (RunningStat merges are order-sensitive only in
/// floating-point rounding, which is why ParallelRunner folds in config
/// index order); toJson() iterates groups in name order with fixed
/// formats, so a deterministic sweep yields a byte-identical summary.
///
//===----------------------------------------------------------------------===//

#ifndef GREENWEB_TELEMETRY_STREAMAGGREGATOR_H
#define GREENWEB_TELEMETRY_STREAMAGGREGATOR_H

#include "telemetry/MetricsRegistry.h"

#include <cstdint>
#include <map>
#include <string>

namespace greenweb {

/// The per-run headline a StreamAggregator folds; one of these is the
/// entire footprint a finished run leaves behind.
struct RunSample {
  std::string App;
  std::string Governor;
  double Joules = 0.0;
  double ViolationPct = 0.0; ///< Scenario-scored violation percentage.
  uint64_t Frames = 0;
  uint64_t QosViolations = 0; ///< Raw qos_violation record count.
  uint64_t Alerts = 0;        ///< Online detector alerts during the run.
};

/// Streaming fleet summary; see file comment.
class StreamAggregator {
public:
  StreamAggregator();

  /// Folds one finished run into every group it belongs to.
  void addRun(const RunSample &S);

  /// Folds another aggregator (e.g. a shard's partial) into this one.
  void mergeFrom(const StreamAggregator &O);

  uint64_t runs() const { return Total.Runs; }
  uint64_t alerts() const { return Total.Alerts; }

  /// One deterministic JSON document with overall / by_app /
  /// by_governor groups, each carrying run counts, energy and
  /// violation histogram summaries (count, mean, min, max, p50, p99),
  /// and alert totals.
  std::string toJson() const;

private:
  struct Group {
    Group();
    uint64_t Runs = 0;
    uint64_t Frames = 0;
    uint64_t QosViolations = 0;
    uint64_t Alerts = 0;
    double Joules = 0.0;
    Histogram EnergyJ;      ///< Per-run total joules.
    Histogram ViolationPct; ///< Per-run violation percentage.
  };

  static void fold(Group &G, const RunSample &S);
  static void merge(Group &G, const Group &O);
  static std::string groupJson(const Group &G);

  Group Total;
  std::map<std::string, Group> ByApp;
  std::map<std::string, Group> ByGovernor;
};

} // namespace greenweb

#endif // GREENWEB_TELEMETRY_STREAMAGGREGATOR_H
