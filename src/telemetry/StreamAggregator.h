//===- telemetry/StreamAggregator.h - Fleet-level run folding ---*- C++ -*-===//
//
// Part of the GreenWeb reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Streaming aggregation of per-run headline metrics into one
/// fleet-level summary: run counts, energy and violation distributions
/// (mergeable fixed-bucket histograms), frame-latency and energy-per-
/// frame percentiles (mergeable quantile sketches), and alert totals,
/// grouped overall / per-app / per-governor. A run folds in as one
/// RunSample — nothing per-run is retained — so aggregating thousands
/// of device x app x fault runs costs a few histograms, not a few
/// gigabytes of logs. This is the substrate the fleet driver sits on.
///
/// Aggregation is associative and order-insensitive for counts,
/// histograms, and sketches (RunningStat merges are order-sensitive
/// only in floating-point rounding, which is why ParallelRunner and the
/// FleetRunner fold in config index order); toJson() iterates groups in
/// name order with fixed formats, so a deterministic sweep yields a
/// byte-identical summary. stateJson()/fromStateJson() round-trip the
/// full accumulator state exactly (hexfloat doubles), which is what
/// lets a fleet checkpoint resume and still fold to byte-identical
/// final aggregates.
///
//===----------------------------------------------------------------------===//

#ifndef GREENWEB_TELEMETRY_STREAMAGGREGATOR_H
#define GREENWEB_TELEMETRY_STREAMAGGREGATOR_H

#include "telemetry/MetricsRegistry.h"
#include "telemetry/QuantileSketch.h"

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace greenweb {

namespace json {
struct Value;
}

/// The per-run headline a StreamAggregator folds; one of these is the
/// entire footprint a finished run leaves behind.
struct RunSample {
  std::string App;
  std::string Governor;
  double Joules = 0.0;
  double ViolationPct = 0.0; ///< Scenario-scored violation percentage.
  uint64_t Frames = 0;
  uint64_t QosViolations = 0; ///< Raw qos_violation record count.
  uint64_t Alerts = 0;        ///< Online detector alerts during the run.
  /// Per-frame production latencies of the run, in event order. Folded
  /// into the group quantile sketches and then discarded — the sample
  /// itself is the only place raw latencies ever appear.
  std::vector<double> FrameLatenciesMs;
};

/// Streaming fleet summary; see file comment.
class StreamAggregator {
public:
  /// One aggregation group (overall, one app, or one governor).
  struct Group {
    Group();
    uint64_t Runs = 0;
    uint64_t Frames = 0;
    uint64_t QosViolations = 0;
    uint64_t Alerts = 0;
    double Joules = 0.0;
    Histogram EnergyJ;      ///< Per-run total joules.
    Histogram ViolationPct; ///< Per-run violation percentage.
    QuantileSketch FrameLatencyMs;   ///< Per-frame latencies.
    QuantileSketch EnergyPerFrameMj; ///< Per-run mJ per frame.
  };

  StreamAggregator();

  /// Folds one finished run into every group it belongs to.
  void addRun(const RunSample &S);

  /// Folds another aggregator (e.g. a shard's partial) into this one.
  void mergeFrom(const StreamAggregator &O);

  uint64_t runs() const { return Total.Runs; }
  uint64_t alerts() const { return Total.Alerts; }

  /// Read-only group access for report derivation (gw-fleet /
  /// gw-inspect fleet); groups iterate in name order.
  const Group &total() const { return Total; }
  const std::map<std::string, Group> &byApp() const { return ByApp; }
  const std::map<std::string, Group> &byGovernor() const {
    return ByGovernor;
  }

  /// One deterministic JSON document with overall / by_app /
  /// by_governor groups, each carrying run counts, energy and
  /// violation histogram summaries (count, mean, min, max, p50, p99),
  /// frame-latency and energy-per-frame sketch percentiles, and alert
  /// totals.
  std::string toJson() const;

  /// Exact accumulator state as one JSON object (integer counts,
  /// hexfloat doubles). fromStateJson() rebuilds a bit-identical
  /// aggregator, so fold sequences resumed from a checkpoint finish
  /// byte-identically to uninterrupted ones.
  std::string stateJson() const;
  static bool fromStateJson(const json::Value &V, StreamAggregator &Out,
                            std::string *Error = nullptr);

private:
  static void fold(Group &G, const RunSample &S);
  static void merge(Group &G, const Group &O);
  static std::string groupJson(const Group &G);

  Group Total;
  std::map<std::string, Group> ByApp;
  std::map<std::string, Group> ByGovernor;
};

} // namespace greenweb

#endif // GREENWEB_TELEMETRY_STREAMAGGREGATOR_H
