//===- telemetry/MetricsRegistry.h - Named metric registry ------*- C++ -*-===//
//
// Part of the GreenWeb reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A registry of named counters, gauges, and fixed-bucket histograms, the
/// metric half of the telemetry subsystem. Producers register a metric
/// once (names follow a "subsystem.metric" convention, e.g.
/// "sim.events_fired") and keep the returned reference for hot-path
/// updates; consumers snapshot the whole registry as JSON or CSV.
///
/// Snapshots iterate metrics in name order and format numbers with fixed
/// printf conversions, so a snapshot of a deterministic simulation is
/// byte-for-bit reproducible. Metrics that depend on the host machine
/// (wall-clock timings) are marked volatile and excluded from snapshots
/// unless explicitly requested, which keeps the determinism guarantee.
///
//===----------------------------------------------------------------------===//

#ifndef GREENWEB_TELEMETRY_METRICSREGISTRY_H
#define GREENWEB_TELEMETRY_METRICSREGISTRY_H

#include "support/Statistics.h"

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace greenweb {

/// Monotone event count.
class Counter {
public:
  void add(uint64_t N = 1) { Value += N; }
  uint64_t value() const { return Value; }
  void reset() { Value = 0; }

private:
  uint64_t Value = 0;
};

/// Last-written scalar (with accumulate support for time totals).
class Gauge {
public:
  void set(double X) { Value = X; }
  void add(double X) { Value += X; }
  double value() const { return Value; }
  void reset() { Value = 0.0; }

private:
  double Value = 0.0;
};

/// Fixed-bucket histogram plus a streaming summary (count / mean /
/// stddev / min / max via the Welford accumulator in RunningStat).
class Histogram {
public:
  /// \p UpperBounds are the inclusive upper edges of the finite buckets,
  /// strictly ascending; one overflow bucket is added implicitly.
  explicit Histogram(std::vector<double> UpperBounds);

  void observe(double X);

  /// Folds another histogram's counts and summary into this one. The
  /// bucket layouts must match (same registration site in a merged
  /// registry); asserts otherwise.
  void mergeFrom(const Histogram &O);

  /// Estimated value at quantile \p Q in [0,1] by linear interpolation
  /// within the bucket containing the rank, Prometheus-style. The first
  /// bucket interpolates from the observed minimum and the overflow
  /// bucket from the last bound to the observed maximum, so estimates
  /// never leave [min, max]. Returns 0 with no observations.
  double quantile(double Q) const;

  const std::vector<double> &upperBounds() const { return UpperBounds; }
  /// Per-bucket counts, size upperBounds().size() + 1 (last = overflow).
  const std::vector<uint64_t> &bucketCounts() const { return Counts; }
  const RunningStat &summary() const { return Summary; }
  void reset();

  /// Exact state restore for durable checkpoints: replaces the bucket
  /// counts and summary wholesale (the bucket layout stays as
  /// constructed). \p BucketCounts must have upperBounds().size() + 1
  /// entries; asserts otherwise.
  void restore(std::vector<uint64_t> BucketCounts, const RunningStat &S);

private:
  std::vector<double> UpperBounds;
  std::vector<uint64_t> Counts;
  RunningStat Summary;
};

/// Bucket edges suited to frame/stage latencies in milliseconds: sub-ms
/// through the 16.7/33.3 ms VSync targets up to one second.
const std::vector<double> &defaultLatencyBucketsMs();

/// The metric registry. Not thread-safe (the simulator is
/// single-threaded); registration is idempotent by name.
class MetricsRegistry {
public:
  /// Returns the counter named \p Name, creating it on first use. Keys
  /// are looked up heterogeneously, so hot paths can pass a
  /// string_view (or literal) without materializing a std::string.
  Counter &counter(std::string_view Name);
  Gauge &gauge(std::string_view Name);
  /// Returns the histogram named \p Name; \p UpperBounds applies only on
  /// first registration (later calls reuse the existing buckets).
  Histogram &histogram(std::string_view Name,
                       const std::vector<double> &UpperBounds);

  /// Marks \p Name as host-dependent; volatile metrics are skipped by
  /// snapshots unless IncludeVolatile is set.
  void markVolatile(std::string_view Name);

  /// True if a metric named \p Name exists (any kind).
  bool has(std::string_view Name) const;

  /// Read-only lookups (nullptr when absent) for consumers that must
  /// not create metrics as a side effect (aggregation, tests).
  const Counter *findCounter(std::string_view Name) const;
  const Gauge *findGauge(std::string_view Name) const;
  const Histogram *findHistogram(std::string_view Name) const;

  /// Folds another registry into this one: counters add, gauges take
  /// the other registry's value (last writer wins, matching Gauge::set
  /// semantics in a sequential merge), histograms merge bucket counts
  /// and summaries. Metrics absent here are created; volatile marks are
  /// unioned. Used to combine per-worker registries after a parallel
  /// sweep, in worker index order for determinism.
  void mergeFrom(const MetricsRegistry &O);

  /// Number of registered metrics.
  size_t size() const;

  /// One JSON object: {"counters":{...},"gauges":{...},"histograms":{...}}.
  std::string snapshotJson(bool IncludeVolatile = false) const;

  /// CSV with header "metric,kind,field,value"; histograms expand to one
  /// row per summary field and bucket.
  std::string snapshotCsv(bool IncludeVolatile = false) const;

  /// Drops every metric and volatile mark.
  void clear();

private:
  bool isVolatile(std::string_view Name) const;

  /// std::less<> enables find(string_view) without a key allocation.
  std::map<std::string, Counter, std::less<>> Counters;
  std::map<std::string, Gauge, std::less<>> Gauges;
  std::map<std::string, Histogram, std::less<>> Histograms;
  std::vector<std::string> VolatileNames;
};

} // namespace greenweb

#endif // GREENWEB_TELEMETRY_METRICSREGISTRY_H
