//===- telemetry/Telemetry.h - Telemetry hub --------------------*- C++ -*-===//
//
// Part of the GreenWeb reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The telemetry hub: one MetricsRegistry plus one TelemetryLog behind
/// typed recorder methods, bound to the simulator's virtual clock. The
/// hub is *opt-in*: nothing in the system owns one; an experiment or
/// example constructs it, attaches it to a Simulator (which hands the
/// pointer to every producer), and exports after the run. Producers
/// guard every record with a null-pointer + enabled() check, so the
/// disabled cost is one branch.
///
/// Recorders update the canonical metrics *and* append a log record in
/// one call, which keeps producers to a single line per event and
/// guarantees the registry and the log never disagree. Log appends can
/// be capped (setLogCapacity) for long bench sweeps that only want the
/// aggregate metrics; dropped records are themselves counted.
///
//===----------------------------------------------------------------------===//

#ifndef GREENWEB_TELEMETRY_TELEMETRY_H
#define GREENWEB_TELEMETRY_TELEMETRY_H

#include "telemetry/MetricsRegistry.h"
#include "telemetry/SpanTracer.h"
#include "telemetry/TelemetryLog.h"

#include <functional>
#include <limits>
#include <memory>
#include <string>

namespace greenweb {

class DetectorBank;
class FlightRecorder;
struct DetectorConfig;
struct FlightRecorderConfig;

/// A policy's configuration choice. Configurations travel as their
/// display label plus raw core/frequency numbers so the telemetry layer
/// stays below the hardware model in the dependency order.
struct GovernorDecisionRecord {
  std::string Governor;   ///< Policy name ("GreenWeb-I", "Interactive"...)
  std::string Reason;     ///< "predicted", "profile_max", "utilization"...
  std::string Config;     ///< Chosen configuration label ("A15@1800MHz").
  int64_t CoreIsBig = 0;  ///< 1 when the chosen cluster is the big one.
  int64_t FreqMHz = 0;    ///< Chosen frequency.
  int64_t RootId = 0;     ///< Originating input event (0 = none).
  std::string ModelKey;   ///< Per-(element,event) model key, if any.
  double PredictedMs = -1.0; ///< Predicted latency at Config (<0 = n/a).
  double TargetMs = -1.0;    ///< Active QoS target (<0 = n/a).
  int64_t FeedbackOffset = 0;
};

/// A feedback correction on measured latency.
struct FeedbackActionRecord {
  std::string Governor;
  std::string Action; ///< "step_up", "step_down", "recalibrate".
  std::string ModelKey;
  int64_t NewOffset = 0;
  double MeasuredMs = -1.0;
  double PredictedMs = -1.0;
  double TargetMs = -1.0;
};

/// The chip executed a configuration change.
struct ConfigSwitchRecord {
  std::string FromConfig;
  std::string ToConfig;
  int64_t ToCoreIsBig = 0;
  int64_t ToFreqMHz = 0;
  int64_t FreqChanged = 0;
  int64_t Migrated = 0;
  double PenaltyUs = 0.0;
};

/// One pipeline stage of one frame finished.
struct FrameStageRecord {
  int64_t FrameId = 0;
  std::string Stage; ///< "animate","style","layout","paint","composite","present".
  double DurationMs = 0.0;
};

/// A frame missed its active QoS target.
struct QosViolationRecord {
  std::string Governor;
  int64_t RootId = 0;
  std::string ModelKey;
  double LatencyMs = 0.0;
  double TargetMs = 0.0;
  int64_t FrameId = 0;  ///< Frame that missed (0 = unknown).
  std::string QosKind;  ///< "single" or "continuous" ("" = unknown).
};

/// A fault-injection event: a scheduled fault window opening or
/// closing, or one discrete injection landing inside a window.
struct FaultEventRecord {
  std::string Fault;  ///< Family name ("thermal_throttle", ...).
  std::string Phase;  ///< "begin", "end", or "inject".
  std::string Detail; ///< Human-readable parameters or injection context.
  double Value = 0.0; ///< Family-specific magnitude (cap MHz, scale, ...).
};

/// Periodic (DAQ-style) power reading plus co-sampled simulator state.
struct EnergySampleRecord {
  double Watts = 0.0;
  double CumulativeJoules = 0.0;
  int64_t QueueDepth = 0; ///< Simulator event-queue depth at the sample.
};

/// The telemetry hub; see file comment.
class Telemetry {
public:
  using ClockFn = std::function<TimePoint()>;

  /// Constructs with the clock pinned at the origin; attach to a
  /// Simulator (Simulator::setTelemetry) to follow virtual time.
  Telemetry();
  explicit Telemetry(ClockFn Clock);
  ~Telemetry();
  // Non-copyable: the span tracer back-references the hub.
  Telemetry(const Telemetry &) = delete;
  Telemetry &operator=(const Telemetry &) = delete;

  /// Rebinds the timestamp source. Simulator::setTelemetry calls this;
  /// the previous clock must not be dangling while producers record.
  void setClock(ClockFn NewClock) { Clock = std::move(NewClock); }

  /// Master switch: when false every recorder returns immediately.
  bool enabled() const { return Enabled; }
  void setEnabled(bool On) { Enabled = On; }

  /// Caps the log at \p MaxRecords appended records (metrics keep
  /// updating); 0 keeps metrics only. Default: unlimited. Capacity 0
  /// also turns span tracing off — a metrics-only sweep must not grow
  /// an unbounded span vector either.
  void setLogCapacity(size_t MaxRecords) {
    LogCapacity = MaxRecords;
    if (MaxRecords == 0)
      Spans.setTracingEnabled(false);
  }

  /// Current virtual time per the bound clock (origin when unbound).
  TimePoint now() const { return Clock ? Clock() : TimePoint::origin(); }

  MetricsRegistry &metrics() { return Metrics; }
  const MetricsRegistry &metrics() const { return Metrics; }
  TelemetryLog &log() { return Log; }
  const TelemetryLog &log() const { return Log; }
  SpanTracer &spans() { return Spans; }
  const SpanTracer &spans() const { return Spans; }

  /// Force-closes all open spans (SpanTracer::finishAll); call before
  /// exporting so in-flight work reaches the artifacts.
  void flushSpans() { Spans.finishAll(); }

  /// Re-appends another log into this hub with *live* append semantics:
  /// non-Alert records respect this hub's log capacity (drops counted in
  /// telemetry.dropped_records), Alert records keep their capacity
  /// bypass. ParallelRunner uses this for the config-order merge so a
  /// capacity-limited shared hub treats merged records exactly as it
  /// would have treated them recorded directly.
  void mergeLogFrom(const TelemetryLog &Other);

  /// --- Online observability (off by default; see FlightRecorder.h) ---
  ///
  /// Attaches the EWMA/CUSUM anomaly detectors: every record flows
  /// through the bank and resulting Alert records are appended to the
  /// log as first-class events. Alerts bypass the log capacity cap —
  /// they are rare and are exactly what a metrics-only sweep still
  /// wants to keep.
  void enableAnomalyDetectors();
  void enableAnomalyDetectors(const DetectorConfig &C);
  /// Attaches the flight recorder: a ring of recent records snapshotted
  /// into black-box dumps on trigger (QoS burst, watchdog trip, fault
  /// window, detector alert).
  void enableFlightRecorder();
  void enableFlightRecorder(const FlightRecorderConfig &C);
  /// Null when the corresponding enable* was never called.
  DetectorBank *detectors() { return Bank.get(); }
  const DetectorBank *detectors() const { return Bank.get(); }
  FlightRecorder *flightRecorder() { return Recorder.get(); }
  const FlightRecorder *flightRecorder() const { return Recorder.get(); }

  /// --- Typed recorders (no-ops when disabled) ---
  void recordGovernorDecision(const GovernorDecisionRecord &R);
  void recordFeedbackAction(const FeedbackActionRecord &R);
  void recordConfigSwitch(const ConfigSwitchRecord &R);
  void recordFrameStage(const FrameStageRecord &R);
  void recordQosViolation(const QosViolationRecord &R);
  void recordEnergySample(const EnergySampleRecord &R);
  void recordFaultEvent(const FaultEventRecord &R);
  /// Generic time-series point for an extra trace counter track.
  void recordCounterSample(const std::string &Track, double Value);

private:
  friend class SpanTracer;

  /// Appends within the log cap; counts drops otherwise. With the
  /// observability layer attached the record (and any alerts it
  /// provokes) also flows through the recorder ring and detector bank.
  void appendRecord(TelemetryEventKind Kind,
                    std::vector<TelemetryField> Fields);

  /// Slow path of appendRecord when detectors / recorder are attached.
  void observeAndAppend(TelemetryEventKind Kind,
                        std::vector<TelemetryField> Fields);

  /// Mirrors a completed span into the metrics + log (SpanTracer only).
  void recordSpan(const SpanTracer::Span &S, bool Truncated);

  ClockFn Clock;
  bool Enabled = true;
  size_t LogCapacity = std::numeric_limits<size_t>::max();
  MetricsRegistry Metrics;
  TelemetryLog Log;
  SpanTracer Spans{this};
  std::unique_ptr<DetectorBank> Bank;
  std::unique_ptr<FlightRecorder> Recorder;
  Counter *AlertsCtr = nullptr; ///< Cached "telemetry.alerts".
};

} // namespace greenweb

#endif // GREENWEB_TELEMETRY_TELEMETRY_H
