//===- telemetry/FlightRecorder.h - Always-on black box ---------*- C++ -*-===//
//
// Part of the GreenWeb reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The flight recorder: a fixed-size ring of the most recent telemetry
/// records (spans included — they are mirrored into the record stream)
/// that costs one slot write per record in steady state, plus trigger
/// detection that snapshots the ring into a self-contained "black box"
/// dump when something goes wrong. Always-on capture therefore no
/// longer requires unbounded TelemetryLog files: metrics-only sweeps
/// keep the full context of the last few hundred records around every
/// incident for free.
///
/// Triggers are derived purely from the record stream, so the very same
/// code produces byte-identical dumps online (inside the Telemetry hub)
/// and offline (`gw-inspect blackbox` replaying a JSONL log):
///
///   qos_burst       >= BurstCount qos_violation records inside
///                   BurstWindowMs of virtual time
///   watchdog_trip   a governor_decision with reason
///                   "watchdog_fallback" (GreenWebRuntime's watchdog)
///   fault_window    a fault record with phase "begin" (FaultInjector)
///   alert:<name>    any Alert record (AnomalyDetector)
///
/// observeTelemetryRecord() is the canonical per-record feed order
/// shared by the hub and the offline replayers; replayObservability()
/// re-runs a parsed log through fresh instances exactly as the hub
/// would have online, which is how `gw-inspect alerts` verifies
/// online/offline parity.
///
//===----------------------------------------------------------------------===//

#ifndef GREENWEB_TELEMETRY_FLIGHTRECORDER_H
#define GREENWEB_TELEMETRY_FLIGHTRECORDER_H

#include "telemetry/TelemetryLog.h"

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

namespace greenweb {

class DetectorBank;

/// Flight-recorder tuning; the defaults keep one dump around 256
/// records and bound per-run memory at MaxDumps rings.
struct FlightRecorderConfig {
  /// Ring slots; a dump carries at most this many records.
  size_t RingCapacity = 256;
  /// QoS violations within BurstWindowMs that constitute a burst.
  size_t BurstCount = 8;
  double BurstWindowMs = 100.0;
  /// Black boxes retained per run; further triggers only count.
  size_t MaxDumps = 8;
  /// Records that must pass between dumps (a watchdog storm must not
  /// dump the same ring eight times).
  size_t CooldownRecords = 64;
};

/// One snapshotted black box.
struct BlackBoxDump {
  std::string Trigger; ///< "qos_burst", "watchdog_trip", ...
  std::string Detail;  ///< Trigger-specific context.
  TimePoint Ts;        ///< Virtual time of the triggering record.
  uint64_t Seq = 0;    ///< Records observed when the trigger fired.
  std::vector<TelemetryRecord> Records; ///< Ring contents, oldest first.

  /// Self-contained JSON object; records use the exact JSONL line
  /// format of TelemetryLog::toJsonl.
  std::string toJson() const;
};

/// The recorder; see file comment.
class FlightRecorder {
public:
  explicit FlightRecorder(const FlightRecorderConfig &C = {});

  /// Pushes \p R into the ring, then evaluates triggers against it.
  void onRecord(const TelemetryRecord &R);

  const std::vector<BlackBoxDump> &dumps() const { return Dumps; }
  /// Triggers seen, including those suppressed by cooldown or MaxDumps.
  uint64_t triggers() const { return Triggers; }
  /// Triggers that produced no dump (cooldown window).
  uint64_t suppressed() const { return Suppressed; }
  /// Triggers dropped because MaxDumps black boxes already exist.
  uint64_t dropped() const { return Dropped; }
  uint64_t recordsObserved() const { return Seq; }
  const FlightRecorderConfig &config() const { return Cfg; }

  /// Every dump plus the trigger counters as one JSON document
  /// ({"kind":"blackbox","dumps":[...],...}); byte-identical for a
  /// byte-identical record stream.
  std::string dumpsJson() const;

private:
  void trigger(const std::string &Reason, std::string Detail,
               const TelemetryRecord &R);

  FlightRecorderConfig Cfg;
  std::vector<TelemetryRecord> Ring; ///< Ring storage, Seq % capacity.
  uint64_t Seq = 0;                  ///< Total records observed.
  uint64_t LastDumpSeq = 0;
  uint64_t Triggers = 0;
  uint64_t Suppressed = 0;
  uint64_t Dropped = 0;
  std::deque<int64_t> ViolationTsNs; ///< qos_burst trailing window.
  std::vector<BlackBoxDump> Dumps;
};

/// Canonical per-record observation order shared by the online hub and
/// the offline replayers: the record enters the ring, then the detector
/// bank scores it, and every resulting alert enters the ring in turn
/// (where it may itself trigger a dump). Returns the alerts so the
/// caller can append them to its log / alert stream. Either pointer may
/// be null.
std::vector<TelemetryRecord> observeTelemetryRecord(const TelemetryRecord &R,
                                                    FlightRecorder *Recorder,
                                                    DetectorBank *Bank);

/// Replays \p Log through \p Bank (and \p Recorder, when given) exactly
/// as the hub feeds records online, skipping Alert records already in
/// the log — they are the online output being reproduced. Returns the
/// regenerated alert stream in emission order.
std::vector<TelemetryRecord> replayObservability(const TelemetryLog &Log,
                                                 DetectorBank &Bank,
                                                 FlightRecorder *Recorder);

} // namespace greenweb

#endif // GREENWEB_TELEMETRY_FLIGHTRECORDER_H
