//===- telemetry/FlightRecorder.cpp - Always-on black box ------------------===//
//
// Part of the GreenWeb reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "telemetry/FlightRecorder.h"

#include "support/StringUtils.h"
#include "telemetry/AnomalyDetector.h"

using namespace greenweb;

FlightRecorder::FlightRecorder(const FlightRecorderConfig &C) : Cfg(C) {
  if (Cfg.RingCapacity == 0)
    Cfg.RingCapacity = 1;
  Ring.reserve(Cfg.RingCapacity);
}

void FlightRecorder::trigger(const std::string &Reason, std::string Detail,
                             const TelemetryRecord &R) {
  ++Triggers;
  // LastDumpSeq == 0 means no dump yet; the first trigger always fires.
  if (LastDumpSeq != 0 && Seq - LastDumpSeq < Cfg.CooldownRecords) {
    ++Suppressed;
    return;
  }
  if (Dumps.size() >= Cfg.MaxDumps) {
    ++Dropped;
    return;
  }
  BlackBoxDump D;
  D.Trigger = Reason;
  D.Detail = std::move(Detail);
  D.Ts = R.Ts;
  D.Seq = Seq;
  // Ring snapshot, oldest first. Before the first wrap the ring is
  // simply [0, Seq); afterwards slot Seq % capacity is the oldest.
  size_t N = Ring.size();
  size_t Start = Seq >= Cfg.RingCapacity ? size_t(Seq % Cfg.RingCapacity) : 0;
  D.Records.reserve(N);
  for (size_t I = 0; I < N; ++I)
    D.Records.push_back(Ring[(Start + I) % N]);
  Dumps.push_back(std::move(D));
  LastDumpSeq = Seq;
}

void FlightRecorder::onRecord(const TelemetryRecord &R) {
  if (Ring.size() < Cfg.RingCapacity)
    Ring.push_back(R);
  else
    Ring[size_t(Seq % Cfg.RingCapacity)] = R;
  ++Seq;

  switch (R.Kind) {
  case TelemetryEventKind::QosViolation: {
    int64_t Ts = R.Ts.nanos();
    int64_t WindowNs = int64_t(Cfg.BurstWindowMs * 1e6);
    while (!ViolationTsNs.empty() && ViolationTsNs.front() < Ts - WindowNs)
      ViolationTsNs.pop_front();
    ViolationTsNs.push_back(Ts);
    if (ViolationTsNs.size() >= Cfg.BurstCount) {
      trigger("qos_burst",
              formatString("%zu violations in %.0f ms",
                           ViolationTsNs.size(), Cfg.BurstWindowMs),
              R);
      ViolationTsNs.clear();
    }
    break;
  }
  case TelemetryEventKind::GovernorDecision:
    if (R.stringOr("reason", "") == "watchdog_fallback")
      trigger("watchdog_trip", R.stringOr("governor", ""), R);
    break;
  case TelemetryEventKind::Fault:
    if (R.stringOr("phase", "") == "begin")
      trigger("fault_window", R.stringOr("fault", ""), R);
    break;
  case TelemetryEventKind::Alert:
    trigger("alert:" + R.stringOr("detector", "?"),
            formatString("value %.3f score %.3f",
                         R.numberOr("value", 0.0), R.numberOr("score", 0.0)),
            R);
    break;
  default:
    break;
  }
}

std::string BlackBoxDump::toJson() const {
  std::string Out = formatString(
      "{\"trigger\":\"%s\",\"detail\":\"%s\",\"ts_us\":%.3f,"
      "\"seq\":%llu,\"records\":[\n",
      jsonEscape(Trigger).c_str(), jsonEscape(Detail).c_str(),
      Ts.nanos() / 1e3, static_cast<unsigned long long>(Seq));
  for (size_t I = 0; I < Records.size(); ++I) {
    Out += telemetryRecordJson(Records[I]);
    Out += I + 1 < Records.size() ? ",\n" : "\n";
  }
  Out += "]}";
  return Out;
}

std::string FlightRecorder::dumpsJson() const {
  std::string Out = formatString(
      "{\"kind\":\"blackbox\",\"triggers\":%llu,\"suppressed\":%llu,"
      "\"dropped\":%llu,\"records_observed\":%llu,\"dumps\":[\n",
      static_cast<unsigned long long>(Triggers),
      static_cast<unsigned long long>(Suppressed),
      static_cast<unsigned long long>(Dropped),
      static_cast<unsigned long long>(Seq));
  for (size_t I = 0; I < Dumps.size(); ++I) {
    Out += Dumps[I].toJson();
    Out += I + 1 < Dumps.size() ? ",\n" : "\n";
  }
  Out += "]}\n";
  return Out;
}

std::vector<TelemetryRecord>
greenweb::observeTelemetryRecord(const TelemetryRecord &R,
                                 FlightRecorder *Recorder,
                                 DetectorBank *Bank) {
  if (Recorder)
    Recorder->onRecord(R);
  std::vector<TelemetryRecord> Alerts;
  if (Bank && R.Kind != TelemetryEventKind::Alert) {
    Alerts = Bank->onRecord(R);
    if (Recorder)
      for (const TelemetryRecord &A : Alerts)
        Recorder->onRecord(A);
  }
  return Alerts;
}

std::vector<TelemetryRecord>
greenweb::replayObservability(const TelemetryLog &Log, DetectorBank &Bank,
                              FlightRecorder *Recorder) {
  std::vector<TelemetryRecord> Alerts;
  for (const TelemetryRecord &R : Log.records()) {
    if (R.Kind == TelemetryEventKind::Alert)
      continue; // Online output; this replay regenerates it.
    std::vector<TelemetryRecord> New =
        observeTelemetryRecord(R, Recorder, &Bank);
    for (TelemetryRecord &A : New)
      Alerts.push_back(std::move(A));
  }
  return Alerts;
}
