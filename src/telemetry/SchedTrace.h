//===- telemetry/SchedTrace.h - Sweep scheduler observability ---*- C++ -*-===//
//
// Part of the GreenWeb reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Scheduler observability for the parallel sweep path. A SchedTrace
/// gives every ParallelRunner worker a private per-thread event buffer
/// (lock-free by construction: each worker appends only to its own
/// vector) recording, for every work item, the config index, worker id,
/// start offset, run wall time, and a phase breakdown — plus the
/// post-batch serialized merge time per item. A SchedReport folds the
/// buffers into makespan, per-worker busy/idle fractions, parallel
/// efficiency, straggler top-k, and a speedup-loss attribution
/// (imbalance vs. merge serialization vs. scheduling overhead).
///
/// Unlike the rest of the telemetry layer, timestamps here are *host*
/// nanoseconds from std::chrono::steady_clock, relative to the batch
/// start — scheduling is a wall-clock phenomenon the virtual clock
/// cannot see. The trace is therefore opt-in and never merged into the
/// deterministic telemetry artifacts by default; the report *structure*
/// (item→worker assignment, counts, labels) is deterministic under
/// jobs=1, and the exported artifact replays byte-for-byte through
/// `gw-inspect sched` (the report is recomputed from the raw items and
/// compared against the embedded copy).
///
/// SchedProgress is the companion live progress meter: a TTY-aware,
/// throttled one-line status (completed/total, ETA, per-worker
/// utilization) written to stderr so instrumented stdout stays
/// byte-deterministic.
///
//===----------------------------------------------------------------------===//

#ifndef GREENWEB_TELEMETRY_SCHEDTRACE_H
#define GREENWEB_TELEMETRY_SCHEDTRACE_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace greenweb {

/// One work item as its worker saw it. All times are host nanoseconds;
/// StartNs is relative to the batch begin stamp.
struct SchedItem {
  uint64_t Item = 0;      ///< Config index in the sweep.
  unsigned Worker = 0;    ///< Claiming worker (0 = caller thread).
  std::string Label;      ///< Display label ("App|Governor", "seed 7").
  int64_t StartNs = 0;    ///< Claim time, relative to batch begin.
  int64_t RunNs = 0;      ///< Total wall time of the work item.
  int64_t SetupNs = 0;    ///< Phase: config copy + private hub setup.
  int64_t SimNs = 0;      ///< Phase: the simulation itself.
  int64_t HookNs = 0;     ///< Phase: the per-run hook.
  int64_t MergeNs = 0;    ///< Post-batch serialized merge of this item.
  int64_t HubRecords = 0; ///< Log records left in the private hub.
};

/// Per-worker scheduler event buffers plus the batch/merge window
/// stamps. Workers call record() concurrently (each on its own
/// buffer); everything else happens on the caller thread before or
/// after the batch.
class SchedTrace {
public:
  /// Arms the trace for a batch run by \p Workers workers. Resets any
  /// previous batch.
  void beginBatch(unsigned Workers, size_t Items);
  /// Stamps the end of the parallel window (before the serial merge).
  void endBatch();

  bool active() const { return Workers > 0; }
  /// Host nanoseconds since beginBatch (0 when inactive).
  int64_t sinceBatchBeginNs() const;

  /// Appends one finished item to its worker's private buffer. Only
  /// the owning worker thread may call this for a given Worker id.
  void record(SchedItem Item);

  /// Post-batch (caller thread): the serialized merge cost of \p Item.
  void noteMerge(uint64_t Item, int64_t MergeNs, int64_t HubRecords);
  /// Post-batch: the whole serialized merge window.
  void setMergeWindowNs(int64_t Ns) { MergeWindowNs = Ns; }

  unsigned workers() const { return Workers; }
  int64_t batchNs() const { return BatchNs; }
  int64_t mergeWindowNs() const { return MergeWindowNs; }

  /// All items across workers with merge costs folded in, sorted by
  /// item index (deterministic regardless of completion order).
  std::vector<SchedItem> items() const;

  /// Rebuilds a trace from exported parts (the gw-inspect replay path).
  static SchedTrace fromParts(unsigned Workers, int64_t BatchNs,
                              int64_t MergeWindowNs,
                              std::vector<SchedItem> Items);

private:
  unsigned Workers = 0;
  int64_t BatchNs = 0;
  int64_t MergeWindowNs = 0;
  std::chrono::steady_clock::time_point BatchBegin;
  std::vector<std::vector<SchedItem>> PerWorker;
  struct MergeNote {
    uint64_t Item;
    int64_t MergeNs;
    int64_t HubRecords;
  };
  std::vector<MergeNote> Merges;
};

/// The folded scheduler report; every number derives from the integer
/// nanosecond values in the trace, so recomputing it from an exported
/// artifact reproduces it byte-for-byte.
struct SchedReport {
  struct Worker {
    unsigned Id = 0;
    uint64_t Items = 0;
    int64_t BusyNs = 0; ///< Sum of item run times.
    int64_t WaitNs = 0; ///< Handout gaps (first claim + between items).
    double Utilization = 0.0; ///< BusyNs / batch window.
  };
  struct Straggler {
    uint64_t Item = 0;
    unsigned Worker = 0;
    std::string Label;
    int64_t RunNs = 0;
  };

  unsigned Workers = 0;
  uint64_t Items = 0;
  int64_t BatchNs = 0;
  int64_t MergeNs = 0;    ///< Serialized merge window.
  int64_t MakespanNs = 0; ///< BatchNs + MergeNs.
  int64_t SerialSumNs = 0;
  int64_t MaxBusyNs = 0;
  double Speedup = 0.0;    ///< SerialSumNs / MakespanNs.
  double Efficiency = 0.0; ///< SerialSumNs / (Workers * MakespanNs).
  /// Speedup-loss attribution: fractions of the makespan, summing to 1.
  ///   compute    = mean busy (the ideal parallel time)
  ///   imbalance  = max busy - mean busy (stragglers)
  ///   overhead   = batch - max busy (spawn/join/handout)
  ///   merge      = the serialized config-order merge
  double ComputeFraction = 0.0;
  double ImbalanceFraction = 0.0;
  double OverheadFraction = 0.0;
  double MergeFraction = 0.0;
  /// Phase totals across items; ItemOverheadNs is run time not
  /// accounted to any phase (allocation, result copies, ...).
  int64_t SetupNs = 0;
  int64_t SimNs = 0;
  int64_t HookNs = 0;
  int64_t ItemOverheadNs = 0;
  int64_t HubRecords = 0;
  std::vector<Worker> PerWorker;
  std::vector<Straggler> Stragglers; ///< Top-k by run time.

  static SchedReport fromTrace(const SchedTrace &Trace,
                               size_t StragglerTopK = 3);

  /// Deterministic JSON (integer nanoseconds, %.6f ratios).
  std::string toJson() const;
  /// Human-readable table for stdout.
  std::string format() const;
};

/// The --sched=<path> artifact: raw items + window stamps + the
/// embedded report, as one JSON document.
std::string schedArtifactJson(const SchedTrace &Trace,
                              const SchedReport &Report);

/// Parses a schedArtifactJson document back into a trace; false (with
/// \p Error set) when the document is not a sched artifact.
bool schedTraceFromArtifact(const std::string &Text, SchedTrace &Out,
                            std::string *Error = nullptr);

/// Extracts the embedded report object from a schedArtifactJson
/// document *byte-for-byte* (brace matching, string-aware), so parity
/// checks compare against exactly what the producer wrote. Empty when
/// absent.
std::string schedReportSectionFromArtifact(const std::string &Text);

/// Chrome-trace fragment: one track per worker with an item slice per
/// work item (phase breakdown in args) and a "(wait)" slice per
/// handout gap, plus the serialized merge on the caller track. Starts
/// with ",\n" so callers splice it into an event array before the
/// closing ']' — the same contract as prof::perfettoHostTrackJson.
/// Empty when the trace holds no items.
std::string schedPerfettoTrackJson(const SchedTrace &Trace);

/// TTY-aware live progress for long sweeps. Workers call itemDone()
/// concurrently; rendering is throttled and goes to stderr (or the
/// configured stream) so instrumented stdout stays deterministic. On a
/// TTY the line redraws in place; otherwise plain lines are emitted at
/// a coarser cadence so CI logs stay readable.
class SchedProgress {
public:
  explicit SchedProgress(std::FILE *Out = stderr);

  void begin(unsigned Workers, size_t Items, std::string Label);
  /// Marks one item complete; \p BusyNs is the item's run wall time.
  void itemDone(unsigned Worker, int64_t BusyNs);
  /// Final render (with a newline) and disarm.
  void finish();

  /// The current status line (exposed for tests; no I/O).
  std::string renderLine() const;

private:
  void maybeRender(bool Force);

  std::FILE *Out;
  bool Tty = false;
  bool Armed = false;
  bool Rendered = false;
  unsigned Workers = 0;
  size_t Items = 0;
  std::string Label;
  std::chrono::steady_clock::time_point Begin;
  std::chrono::steady_clock::time_point LastRender;
  std::atomic<size_t> Done{0};
  std::unique_ptr<std::atomic<int64_t>[]> BusyNs;
  std::mutex RenderMu;
};

} // namespace greenweb

#endif // GREENWEB_TELEMETRY_SCHEDTRACE_H
