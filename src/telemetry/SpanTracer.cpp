//===- telemetry/SpanTracer.cpp - Causal span recording --------------------===//
//
// Part of the GreenWeb reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "telemetry/SpanTracer.h"

#include "telemetry/Telemetry.h"

using namespace greenweb;

SpanTracer::Span *SpanTracer::findMutable(int64_t Id) {
  // Ids are 1-based indices into All, so lookup is O(1).
  if (Id < 1 || size_t(Id) > All.size())
    return nullptr;
  return &All[size_t(Id) - 1];
}

const SpanTracer::Span *SpanTracer::find(int64_t Id) const {
  return const_cast<SpanTracer *>(this)->findMutable(Id);
}

int64_t SpanTracer::begin(std::string Name, std::string Thread, int64_t Root,
                          int64_t Frame, int64_t Parent) {
  if (!Enabled)
    return 0;
  if (Parent == UseCurrent)
    Parent = Current;
  if (const Span *P = find(Parent)) {
    if (Root == 0)
      Root = P->Root;
    if (Frame == 0)
      Frame = P->Frame;
  }
  Span S;
  S.Id = int64_t(All.size()) + 1;
  S.Parent = Parent;
  S.Root = Root;
  S.Frame = Frame;
  S.Name = std::move(Name);
  S.Thread = std::move(Thread);
  S.Begin = Hub->now();
  S.End = S.Begin;
  All.push_back(std::move(S));
  return All.back().Id;
}

void SpanTracer::end(int64_t Id) {
  Span *S = findMutable(Id);
  if (!S || !S->Open)
    return;
  S->End = Hub->now();
  S->Open = false;
  Hub->recordSpan(*S, /*Truncated=*/false);
}

void SpanTracer::setFrame(int64_t Id, int64_t FrameId) {
  if (Span *S = findMutable(Id))
    if (S->Open)
      S->Frame = FrameId;
}

size_t SpanTracer::openCount() const {
  size_t N = 0;
  for (const Span &S : All)
    if (S.Open)
      ++N;
  return N;
}

void SpanTracer::finishAll() {
  TimePoint Now = Hub->now();
  for (Span &S : All) {
    if (!S.Open)
      continue;
    S.End = Now;
    S.Open = false;
    Hub->recordSpan(S, /*Truncated=*/true);
  }
  Current = 0;
}

void SpanTracer::clear() {
  All.clear();
  Current = 0;
}
