//===- telemetry/CriticalPath.h - Why did this frame miss? ------*- C++ -*-===//
//
// Part of the GreenWeb reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Critical-path extraction over the span records a SpanTracer mirrors
/// into the telemetry log. For a QoS violation the analyzer walks
/// parent links backwards from the last span of the violating frame —
/// across threads, through IPC hops and VSync waits — up to the input
/// event that caused it, yielding the serial blocking chain. Because a
/// GreenWeb frame's pipeline is a serial chain (Fig. 7), every stage on
/// the path shares one slack budget: the amount all of them together
/// could have slowed down (by running at a lower DVFS configuration)
/// without crossing the QoS target.
///
/// The analyzer reads *only* the log, never SpanTracer state, so
/// gw-inspect running on an exported JSONL file reproduces the exact
/// in-process diagnosis.
///
//===----------------------------------------------------------------------===//

#ifndef GREENWEB_TELEMETRY_CRITICALPATH_H
#define GREENWEB_TELEMETRY_CRITICALPATH_H

#include "telemetry/TelemetryLog.h"

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace greenweb {

/// One span reconstructed from a "span" log record.
struct SpanRecord {
  int64_t Id = 0;
  int64_t Parent = 0;
  int64_t Root = 0;
  int64_t Frame = 0;
  std::string Name;
  std::string Thread;
  double BeginUs = 0.0;
  double EndUs = 0.0;
  bool Truncated = false; ///< Force-closed by flushSpans, not its producer.

  double durationMs() const { return (EndUs - BeginUs) / 1e3; }
  /// Container spans ("inputs" root lifetimes, "frames" production
  /// windows) wrap the real work and are never bottleneck candidates.
  bool isContainer() const {
    return Thread == "inputs" || Thread == "frames";
  }
};

/// Id-indexed view of every span record in a log.
class SpanIndex {
public:
  explicit SpanIndex(const TelemetryLog &Log);

  const SpanRecord *byId(int64_t Id) const;
  const std::vector<SpanRecord> &all() const { return Spans; }
  bool empty() const { return Spans.empty(); }

private:
  std::vector<SpanRecord> Spans;
  std::map<int64_t, size_t> ById;
};

/// One step of a critical path, in causal order.
struct PathStep {
  SpanRecord S;
  double WaitMs = 0.0;  ///< Gap behind the previous step (queueing/VSync).
  double SlackMs = 0.0; ///< Shared slowdown budget (candidates only).
  bool Candidate = false; ///< Eligible as the bottleneck (non-container).
};

/// A blocking chain through the span DAG.
struct CriticalPathResult {
  std::vector<PathStep> Steps; ///< Causal order, containers included.
  int Bottleneck = -1;         ///< Index into Steps (-1 = none).
  double TotalMs = 0.0;        ///< First step begin -> last step end.
  double SlackMs = 0.0;        ///< TargetMs - TotalMs (<0 = violated).

  const PathStep *bottleneck() const {
    return Bottleneck >= 0 ? &Steps[size_t(Bottleneck)] : nullptr;
  }
};

/// Extracts the blocking chain that produced frame \p FrameId: the
/// in-frame stage chain (animate → ... → composite), optionally
/// prefixed by the input-side chain of \p RootId (input task → IPC →
/// callback) when \p IncludeInputChain — the right shape for "single"
/// QoS events, whose latency runs input-to-display, while "continuous"
/// targets only constrain the frame production window. The bottleneck
/// is the longest-duration candidate step (earliest begin, then lowest
/// id, on ties). Empty result when the log holds no span for the frame.
CriticalPathResult extractCriticalPath(const SpanIndex &Index,
                                       int64_t FrameId, int64_t RootId,
                                       double TargetMs,
                                       bool IncludeInputChain);

/// The per-violation diagnosis: which stage blocked the frame, what the
/// governor had decided just before, and how prediction compared to
/// reality.
struct WhyReport {
  double TsUs = 0.0; ///< When the violation was recorded.
  int64_t FrameId = 0;
  int64_t RootId = 0;
  std::string Governor;
  std::string ModelKey;
  std::string QosKind; ///< "single" / "continuous" / "".
  double LatencyMs = 0.0;
  double TargetMs = 0.0;
  bool HasDecision = false;
  std::string DecisionReason;
  std::string DecisionConfig;
  double PredictedMs = -1.0;  ///< Governor's prediction (<0 = none).
  double DecisionAgeMs = 0.0; ///< Decision-to-violation distance.
  CriticalPathResult Path;

  /// Multi-line human-readable diagnosis.
  std::string format() const;
};

/// Builds one WhyReport per qos_violation record in \p Log, pairing
/// each with the nearest preceding governor decision (preferring one
/// for the same root) and its critical path.
std::vector<WhyReport> buildWhyReports(const TelemetryLog &Log);

} // namespace greenweb

#endif // GREENWEB_TELEMETRY_CRITICALPATH_H
