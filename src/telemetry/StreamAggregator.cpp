//===- telemetry/StreamAggregator.cpp - Fleet-level run folding ------------===//
//
// Part of the GreenWeb reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "telemetry/StreamAggregator.h"

#include "support/Json.h"
#include "support/StringUtils.h"

#include <cstdlib>

using namespace greenweb;

namespace {

/// Per-run total energy in joules: the full_evaluation sessions land in
/// single-digit joules, chaos soaks in tens; the tail bucket absorbs
/// pathological runs.
const std::vector<double> &energyBucketsJ() {
  static const std::vector<double> Buckets = {0.1, 0.2, 0.5, 1,  2,   5,
                                              10,  20,  50,  100, 200, 500};
  return Buckets;
}

/// Violation percentages; edges mirror the QoS bands the paper reports.
const std::vector<double> &violationBucketsPct() {
  static const std::vector<double> Buckets = {0.5, 1,  2,  5,  10, 15,
                                              20,  30, 50, 75, 90, 100};
  return Buckets;
}

} // namespace

StreamAggregator::Group::Group()
    : EnergyJ(energyBucketsJ()), ViolationPct(violationBucketsPct()) {}

StreamAggregator::StreamAggregator() = default;

void StreamAggregator::fold(Group &G, const RunSample &S) {
  ++G.Runs;
  G.Frames += S.Frames;
  G.QosViolations += S.QosViolations;
  G.Alerts += S.Alerts;
  G.Joules += S.Joules;
  G.EnergyJ.observe(S.Joules);
  G.ViolationPct.observe(S.ViolationPct);
  for (double L : S.FrameLatenciesMs)
    G.FrameLatencyMs.observe(L);
  if (S.Frames > 0)
    G.EnergyPerFrameMj.observe(S.Joules * 1000.0 / double(S.Frames));
}

void StreamAggregator::merge(Group &G, const Group &O) {
  G.Runs += O.Runs;
  G.Frames += O.Frames;
  G.QosViolations += O.QosViolations;
  G.Alerts += O.Alerts;
  G.Joules += O.Joules;
  G.EnergyJ.mergeFrom(O.EnergyJ);
  G.ViolationPct.mergeFrom(O.ViolationPct);
  G.FrameLatencyMs.mergeFrom(O.FrameLatencyMs);
  G.EnergyPerFrameMj.mergeFrom(O.EnergyPerFrameMj);
}

void StreamAggregator::addRun(const RunSample &S) {
  fold(Total, S);
  fold(ByApp[S.App.empty() ? "?" : S.App], S);
  fold(ByGovernor[S.Governor.empty() ? "?" : S.Governor], S);
}

void StreamAggregator::mergeFrom(const StreamAggregator &O) {
  merge(Total, O.Total);
  for (const auto &[Name, G] : O.ByApp)
    merge(ByApp[Name], G);
  for (const auto &[Name, G] : O.ByGovernor)
    merge(ByGovernor[Name], G);
}

namespace {

std::string histJson(const Histogram &H) {
  const RunningStat &S = H.summary();
  return formatString("{\"count\":%llu,\"mean\":%.4f,\"min\":%.4f,"
                      "\"max\":%.4f,\"p50\":%.4f,\"p99\":%.4f}",
                      static_cast<unsigned long long>(S.count()),
                      S.count() ? S.mean() : 0.0, S.count() ? S.min() : 0.0,
                      S.count() ? S.max() : 0.0, H.quantile(0.5),
                      H.quantile(0.99));
}

std::string sketchJson(const QuantileSketch &Q) {
  return formatString("{\"count\":%llu,\"p50\":%.4f,\"p90\":%.4f,"
                      "\"p99\":%.4f,\"max\":%.4f}",
                      static_cast<unsigned long long>(Q.count()),
                      Q.quantile(0.5), Q.quantile(0.9), Q.quantile(0.99),
                      Q.max());
}

} // namespace

std::string StreamAggregator::groupJson(const Group &G) {
  return formatString("{\"runs\":%llu,\"frames\":%llu,"
                      "\"qos_violations\":%llu,\"alerts\":%llu,"
                      "\"joules_total\":%.4f,\"energy_j\":",
                      static_cast<unsigned long long>(G.Runs),
                      static_cast<unsigned long long>(G.Frames),
                      static_cast<unsigned long long>(G.QosViolations),
                      static_cast<unsigned long long>(G.Alerts), G.Joules) +
         histJson(G.EnergyJ) +
         ",\"violation_pct\":" + histJson(G.ViolationPct) +
         ",\"frame_latency_ms\":" + sketchJson(G.FrameLatencyMs) +
         ",\"energy_per_frame_mj\":" + sketchJson(G.EnergyPerFrameMj) + "}";
}

std::string StreamAggregator::toJson() const {
  std::string Out = "{\"kind\":\"fleet_summary\",\"overall\":";
  Out += groupJson(Total);
  auto Section = [&Out](const char *Key,
                        const std::map<std::string, Group> &Groups) {
    Out += formatString(",\"%s\":{", Key);
    bool First = true;
    for (const auto &[Name, G] : Groups) {
      if (!First)
        Out += ",";
      First = false;
      Out += formatString("\"%s\":", jsonEscape(Name).c_str());
      Out += groupJson(G);
    }
    Out += "}";
  };
  Section("by_app", ByApp);
  Section("by_governor", ByGovernor);
  Out += "}\n";
  return Out;
}

//===----------------------------------------------------------------------===//
// Exact state round-trip (fleet checkpoints)
//===----------------------------------------------------------------------===//

namespace {

/// Hexfloats round-trip doubles exactly through strtod, unlike any
/// fixed decimal format — the whole point of the state serialization.
std::string hexDouble(double X) { return formatString("\"%a\"", X); }

double parseHexDouble(const json::Value &V, std::string_view Key) {
  const json::Value *F = V.get(Key);
  if (!F || !F->isString())
    return 0.0;
  return std::strtod(F->Str.c_str(), nullptr);
}

std::string statStateJson(const RunningStat &S) {
  RunningStatState St = S.state();
  return formatString("{\"n\":%llu,\"sum\":", static_cast<unsigned long long>(
                                                  St.N)) +
         hexDouble(St.Sum) + ",\"min\":" + hexDouble(St.Min) +
         ",\"max\":" + hexDouble(St.Max) +
         ",\"mean\":" + hexDouble(St.WelfordMean) +
         ",\"m2\":" + hexDouble(St.M2) + "}";
}

bool statFromJson(const json::Value &V, RunningStat &Out,
                  std::string *Error) {
  if (!V.isObject()) {
    if (Error)
      *Error = "running-stat state is not an object";
    return false;
  }
  RunningStatState St;
  St.N = size_t(V.numberOr("n", 0));
  St.Sum = parseHexDouble(V, "sum");
  St.Min = parseHexDouble(V, "min");
  St.Max = parseHexDouble(V, "max");
  St.WelfordMean = parseHexDouble(V, "mean");
  St.M2 = parseHexDouble(V, "m2");
  Out = RunningStat::fromState(St);
  return true;
}

std::string histStateJson(const Histogram &H) {
  std::string Out = "{\"counts\":[";
  const std::vector<uint64_t> &Counts = H.bucketCounts();
  for (size_t I = 0; I < Counts.size(); ++I)
    Out += formatString(I ? ",%llu" : "%llu",
                        static_cast<unsigned long long>(Counts[I]));
  Out += "],\"stat\":" + statStateJson(H.summary()) + "}";
  return Out;
}

bool histFromJson(const json::Value &V, Histogram &Out,
                  std::string *Error) {
  auto Fail = [&](const char *Msg) {
    if (Error)
      *Error = Msg;
    return false;
  };
  if (!V.isObject())
    return Fail("histogram state is not an object");
  const json::Value *Counts = V.get("counts");
  if (!Counts || !Counts->isArray())
    return Fail("histogram state has no counts array");
  if (Counts->Arr.size() != Out.upperBounds().size() + 1)
    return Fail("histogram state counts do not match the bucket layout");
  std::vector<uint64_t> C;
  C.reserve(Counts->Arr.size());
  for (const json::Value &N : Counts->Arr) {
    if (!N.isNumber())
      return Fail("histogram state count is not a number");
    C.push_back(uint64_t(N.Num));
  }
  RunningStat S;
  const json::Value *Stat = V.get("stat");
  if (!Stat || !statFromJson(*Stat, S, Error))
    return false;
  Out.restore(std::move(C), S);
  return true;
}

std::string groupStateJson(const StreamAggregator::Group &G) {
  return formatString("{\"runs\":%llu,\"frames\":%llu,\"qos\":%llu,"
                      "\"alerts\":%llu,\"joules\":",
                      static_cast<unsigned long long>(G.Runs),
                      static_cast<unsigned long long>(G.Frames),
                      static_cast<unsigned long long>(G.QosViolations),
                      static_cast<unsigned long long>(G.Alerts)) +
         hexDouble(G.Joules) + ",\"energy_j\":" + histStateJson(G.EnergyJ) +
         ",\"violation_pct\":" + histStateJson(G.ViolationPct) +
         ",\"frame_latency_ms\":" + G.FrameLatencyMs.serialize() +
         ",\"energy_per_frame_mj\":" + G.EnergyPerFrameMj.serialize() + "}";
}

bool groupFromJson(const json::Value &V, StreamAggregator::Group &Out,
                   std::string *Error) {
  auto Fail = [&](const char *Msg) {
    if (Error)
      *Error = Msg;
    return false;
  };
  if (!V.isObject())
    return Fail("group state is not an object");
  Out.Runs = uint64_t(V.numberOr("runs", 0));
  Out.Frames = uint64_t(V.numberOr("frames", 0));
  Out.QosViolations = uint64_t(V.numberOr("qos", 0));
  Out.Alerts = uint64_t(V.numberOr("alerts", 0));
  Out.Joules = parseHexDouble(V, "joules");
  const json::Value *E = V.get("energy_j");
  const json::Value *P = V.get("violation_pct");
  const json::Value *L = V.get("frame_latency_ms");
  const json::Value *M = V.get("energy_per_frame_mj");
  if (!E || !histFromJson(*E, Out.EnergyJ, Error))
    return false;
  if (!P || !histFromJson(*P, Out.ViolationPct, Error))
    return false;
  if (!L || !QuantileSketch::deserialize(*L, Out.FrameLatencyMs, Error))
    return false;
  if (!M || !QuantileSketch::deserialize(*M, Out.EnergyPerFrameMj, Error))
    return false;
  return true;
}

} // namespace

std::string StreamAggregator::stateJson() const {
  std::string Out = "{\"total\":" + groupStateJson(Total);
  auto Section = [&Out](const char *Key,
                        const std::map<std::string, Group> &Groups) {
    Out += formatString(",\"%s\":{", Key);
    bool First = true;
    for (const auto &[Name, G] : Groups) {
      if (!First)
        Out += ",";
      First = false;
      Out += formatString("\"%s\":", jsonEscape(Name).c_str());
      Out += groupStateJson(G);
    }
    Out += "}";
  };
  Section("by_app", ByApp);
  Section("by_governor", ByGovernor);
  Out += "}";
  return Out;
}

bool StreamAggregator::fromStateJson(const json::Value &V,
                                     StreamAggregator &Out,
                                     std::string *Error) {
  auto Fail = [&](const char *Msg) {
    if (Error)
      *Error = Msg;
    return false;
  };
  if (!V.isObject())
    return Fail("aggregator state is not an object");
  StreamAggregator A;
  const json::Value *T = V.get("total");
  if (!T || !groupFromJson(*T, A.Total, Error))
    return false;
  auto Section = [&](const char *Key, std::map<std::string, Group> &Groups) {
    const json::Value *Sec = V.get(Key);
    if (!Sec || !Sec->isObject())
      return Fail("aggregator state section missing");
    for (const auto &[Name, G] : Sec->Obj)
      if (!groupFromJson(G, Groups[Name], Error))
        return false;
    return true;
  };
  if (!Section("by_app", A.ByApp) || !Section("by_governor", A.ByGovernor))
    return false;
  Out = std::move(A);
  return true;
}
