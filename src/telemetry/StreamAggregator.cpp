//===- telemetry/StreamAggregator.cpp - Fleet-level run folding ------------===//
//
// Part of the GreenWeb reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "telemetry/StreamAggregator.h"

#include "support/StringUtils.h"

using namespace greenweb;

namespace {

/// Per-run total energy in joules: the full_evaluation sessions land in
/// single-digit joules, chaos soaks in tens; the tail bucket absorbs
/// pathological runs.
const std::vector<double> &energyBucketsJ() {
  static const std::vector<double> Buckets = {0.1, 0.2, 0.5, 1,  2,   5,
                                              10,  20,  50,  100, 200, 500};
  return Buckets;
}

/// Violation percentages; edges mirror the QoS bands the paper reports.
const std::vector<double> &violationBucketsPct() {
  static const std::vector<double> Buckets = {0.5, 1,  2,  5,  10, 15,
                                              20,  30, 50, 75, 90, 100};
  return Buckets;
}

} // namespace

StreamAggregator::Group::Group()
    : EnergyJ(energyBucketsJ()), ViolationPct(violationBucketsPct()) {}

StreamAggregator::StreamAggregator() = default;

void StreamAggregator::fold(Group &G, const RunSample &S) {
  ++G.Runs;
  G.Frames += S.Frames;
  G.QosViolations += S.QosViolations;
  G.Alerts += S.Alerts;
  G.Joules += S.Joules;
  G.EnergyJ.observe(S.Joules);
  G.ViolationPct.observe(S.ViolationPct);
}

void StreamAggregator::merge(Group &G, const Group &O) {
  G.Runs += O.Runs;
  G.Frames += O.Frames;
  G.QosViolations += O.QosViolations;
  G.Alerts += O.Alerts;
  G.Joules += O.Joules;
  G.EnergyJ.mergeFrom(O.EnergyJ);
  G.ViolationPct.mergeFrom(O.ViolationPct);
}

void StreamAggregator::addRun(const RunSample &S) {
  fold(Total, S);
  fold(ByApp[S.App.empty() ? "?" : S.App], S);
  fold(ByGovernor[S.Governor.empty() ? "?" : S.Governor], S);
}

void StreamAggregator::mergeFrom(const StreamAggregator &O) {
  merge(Total, O.Total);
  for (const auto &[Name, G] : O.ByApp)
    merge(ByApp[Name], G);
  for (const auto &[Name, G] : O.ByGovernor)
    merge(ByGovernor[Name], G);
}

namespace {

std::string histJson(const Histogram &H) {
  const RunningStat &S = H.summary();
  return formatString("{\"count\":%llu,\"mean\":%.4f,\"min\":%.4f,"
                      "\"max\":%.4f,\"p50\":%.4f,\"p99\":%.4f}",
                      static_cast<unsigned long long>(S.count()),
                      S.count() ? S.mean() : 0.0, S.count() ? S.min() : 0.0,
                      S.count() ? S.max() : 0.0, H.quantile(0.5),
                      H.quantile(0.99));
}

} // namespace

std::string StreamAggregator::groupJson(const Group &G) {
  return formatString("{\"runs\":%llu,\"frames\":%llu,"
                      "\"qos_violations\":%llu,\"alerts\":%llu,"
                      "\"joules_total\":%.4f,\"energy_j\":",
                      static_cast<unsigned long long>(G.Runs),
                      static_cast<unsigned long long>(G.Frames),
                      static_cast<unsigned long long>(G.QosViolations),
                      static_cast<unsigned long long>(G.Alerts), G.Joules) +
         histJson(G.EnergyJ) +
         ",\"violation_pct\":" + histJson(G.ViolationPct) + "}";
}

std::string StreamAggregator::toJson() const {
  std::string Out = "{\"kind\":\"fleet_summary\",\"overall\":";
  Out += groupJson(Total);
  auto Section = [&Out](const char *Key,
                        const std::map<std::string, Group> &Groups) {
    Out += formatString(",\"%s\":{", Key);
    bool First = true;
    for (const auto &[Name, G] : Groups) {
      if (!First)
        Out += ",";
      First = false;
      Out += formatString("\"%s\":", jsonEscape(Name).c_str());
      Out += groupJson(G);
    }
    Out += "}";
  };
  Section("by_app", ByApp);
  Section("by_governor", ByGovernor);
  Out += "}\n";
  return Out;
}
