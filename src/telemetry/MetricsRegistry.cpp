//===- telemetry/MetricsRegistry.cpp - Named metric registry ---------------===//
//
// Part of the GreenWeb reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "telemetry/MetricsRegistry.h"

#include "support/StringUtils.h"

#include <algorithm>
#include <cassert>

using namespace greenweb;

//===----------------------------------------------------------------------===//
// Histogram
//===----------------------------------------------------------------------===//

Histogram::Histogram(std::vector<double> UpperBoundsIn)
    : UpperBounds(std::move(UpperBoundsIn)),
      Counts(UpperBounds.size() + 1, 0) {
  assert(std::is_sorted(UpperBounds.begin(), UpperBounds.end()) &&
         "histogram bounds must ascend");
}

void Histogram::observe(double X) {
  size_t Bucket =
      size_t(std::lower_bound(UpperBounds.begin(), UpperBounds.end(), X) -
             UpperBounds.begin());
  ++Counts[Bucket];
  Summary.add(X);
}

void Histogram::mergeFrom(const Histogram &O) {
  assert(UpperBounds == O.UpperBounds &&
         "merging histograms with different bucket layouts");
  for (size_t I = 0; I < Counts.size(); ++I)
    Counts[I] += O.Counts[I];
  Summary.merge(O.Summary);
}

void Histogram::reset() {
  std::fill(Counts.begin(), Counts.end(), 0);
  Summary = RunningStat();
}

void Histogram::restore(std::vector<uint64_t> BucketCounts,
                        const RunningStat &S) {
  assert(BucketCounts.size() == UpperBounds.size() + 1 &&
         "restored counts must match the bucket layout");
  Counts = std::move(BucketCounts);
  Summary = S;
}

double Histogram::quantile(double Q) const {
  uint64_t Total = Summary.count();
  if (Total == 0)
    return 0.0;
  Q = std::min(1.0, std::max(0.0, Q));
  double Rank = Q * double(Total);
  double Cum = 0.0;
  for (size_t I = 0; I < Counts.size(); ++I) {
    double N = double(Counts[I]);
    if (N == 0.0)
      continue;
    if (Cum + N + 1e-9 >= Rank) {
      double Lo = I == 0 ? Summary.min() : UpperBounds[I - 1];
      double Hi = I < UpperBounds.size() ? UpperBounds[I] : Summary.max();
      double Frac = std::min(1.0, std::max(0.0, (Rank - Cum) / N));
      double V = Lo + (Hi - Lo) * Frac;
      return std::min(Summary.max(), std::max(Summary.min(), V));
    }
    Cum += N;
  }
  return Summary.max();
}

const std::vector<double> &greenweb::defaultLatencyBucketsMs() {
  static const std::vector<double> Buckets = {
      0.5, 1.0, 2.0, 4.0, 8.0, 16.7, 33.3, 50.0, 100.0, 200.0, 500.0,
      1000.0};
  return Buckets;
}

//===----------------------------------------------------------------------===//
// MetricsRegistry
//===----------------------------------------------------------------------===//

Counter &MetricsRegistry::counter(std::string_view Name) {
  auto It = Counters.find(Name);
  if (It != Counters.end())
    return It->second;
  return Counters.emplace(std::string(Name), Counter()).first->second;
}

Gauge &MetricsRegistry::gauge(std::string_view Name) {
  auto It = Gauges.find(Name);
  if (It != Gauges.end())
    return It->second;
  return Gauges.emplace(std::string(Name), Gauge()).first->second;
}

Histogram &MetricsRegistry::histogram(std::string_view Name,
                                      const std::vector<double> &Bounds) {
  auto It = Histograms.find(Name);
  if (It != Histograms.end())
    return It->second;
  return Histograms.emplace(std::string(Name), Histogram(Bounds))
      .first->second;
}

void MetricsRegistry::markVolatile(std::string_view Name) {
  if (!isVolatile(Name))
    VolatileNames.emplace_back(Name);
}

bool MetricsRegistry::isVolatile(std::string_view Name) const {
  return std::find(VolatileNames.begin(), VolatileNames.end(), Name) !=
         VolatileNames.end();
}

bool MetricsRegistry::has(std::string_view Name) const {
  return Counters.find(Name) != Counters.end() ||
         Gauges.find(Name) != Gauges.end() ||
         Histograms.find(Name) != Histograms.end();
}

const Counter *MetricsRegistry::findCounter(std::string_view Name) const {
  auto It = Counters.find(Name);
  return It != Counters.end() ? &It->second : nullptr;
}

const Gauge *MetricsRegistry::findGauge(std::string_view Name) const {
  auto It = Gauges.find(Name);
  return It != Gauges.end() ? &It->second : nullptr;
}

const Histogram *
MetricsRegistry::findHistogram(std::string_view Name) const {
  auto It = Histograms.find(Name);
  return It != Histograms.end() ? &It->second : nullptr;
}

void MetricsRegistry::mergeFrom(const MetricsRegistry &O) {
  for (const auto &[Name, C] : O.Counters)
    counter(Name).add(C.value());
  for (const auto &[Name, G] : O.Gauges)
    gauge(Name).set(G.value());
  for (const auto &[Name, H] : O.Histograms) {
    Histogram &Mine = histogram(Name, H.upperBounds());
    Mine.mergeFrom(H);
  }
  for (const std::string &Name : O.VolatileNames)
    markVolatile(Name);
}

size_t MetricsRegistry::size() const {
  return Counters.size() + Gauges.size() + Histograms.size();
}

void MetricsRegistry::clear() {
  Counters.clear();
  Gauges.clear();
  Histograms.clear();
  VolatileNames.clear();
}

namespace {

/// Formats a double compactly but deterministically: %.6f with trailing
/// zeros trimmed (always keeping one digit after the point), so snapshots
/// are stable across runs and readable for humans.
std::string formatNumber(double X) {
  std::string S = formatString("%.6f", X);
  size_t Last = S.find_last_not_of('0');
  if (S[Last] == '.')
    ++Last;
  S.erase(Last + 1);
  return S;
}

} // namespace

std::string MetricsRegistry::snapshotJson(bool IncludeVolatile) const {
  std::string Out = "{\n  \"counters\": {";
  bool First = true;
  for (const auto &[Name, C] : Counters) {
    if (!IncludeVolatile && isVolatile(Name))
      continue;
    Out += formatString("%s\n    \"%s\": %llu", First ? "" : ",",
                        Name.c_str(),
                        static_cast<unsigned long long>(C.value()));
    First = false;
  }
  Out += First ? "},\n" : "\n  },\n";

  Out += "  \"gauges\": {";
  First = true;
  for (const auto &[Name, G] : Gauges) {
    if (!IncludeVolatile && isVolatile(Name))
      continue;
    Out += formatString("%s\n    \"%s\": %s", First ? "" : ",",
                        Name.c_str(), formatNumber(G.value()).c_str());
    First = false;
  }
  Out += First ? "},\n" : "\n  },\n";

  Out += "  \"histograms\": {";
  First = true;
  for (const auto &[Name, H] : Histograms) {
    if (!IncludeVolatile && isVolatile(Name))
      continue;
    const RunningStat &S = H.summary();
    std::string Buckets;
    for (size_t I = 0; I < H.bucketCounts().size(); ++I)
      Buckets += formatString(
          "%s%llu", I == 0 ? "" : ",",
          static_cast<unsigned long long>(H.bucketCounts()[I]));
    std::string Bounds;
    for (size_t I = 0; I < H.upperBounds().size(); ++I)
      Bounds += formatString("%s%s", I == 0 ? "" : ",",
                             formatNumber(H.upperBounds()[I]).c_str());
    Out += formatString(
        "%s\n    \"%s\": {\"count\": %llu, \"mean\": %s, \"stddev\": %s, "
        "\"min\": %s, \"max\": %s, \"p50\": %s, \"p90\": %s, \"p95\": %s, "
        "\"p99\": %s, \"bounds\": [%s], \"buckets\": [%s]}",
        First ? "" : ",", Name.c_str(),
        static_cast<unsigned long long>(S.count()),
        formatNumber(S.mean()).c_str(), formatNumber(S.stddev()).c_str(),
        formatNumber(S.min()).c_str(), formatNumber(S.max()).c_str(),
        formatNumber(H.quantile(0.50)).c_str(),
        formatNumber(H.quantile(0.90)).c_str(),
        formatNumber(H.quantile(0.95)).c_str(),
        formatNumber(H.quantile(0.99)).c_str(), Bounds.c_str(),
        Buckets.c_str());
    First = false;
  }
  Out += First ? "}\n}\n" : "\n  }\n}\n";
  return Out;
}

std::string MetricsRegistry::snapshotCsv(bool IncludeVolatile) const {
  std::string Out = "metric,kind,field,value\n";
  for (const auto &[Name, C] : Counters) {
    if (!IncludeVolatile && isVolatile(Name))
      continue;
    Out += formatString("%s,counter,value,%llu\n", Name.c_str(),
                        static_cast<unsigned long long>(C.value()));
  }
  for (const auto &[Name, G] : Gauges) {
    if (!IncludeVolatile && isVolatile(Name))
      continue;
    Out += formatString("%s,gauge,value,%s\n", Name.c_str(),
                        formatNumber(G.value()).c_str());
  }
  for (const auto &[Name, H] : Histograms) {
    if (!IncludeVolatile && isVolatile(Name))
      continue;
    const RunningStat &S = H.summary();
    Out += formatString("%s,histogram,count,%llu\n", Name.c_str(),
                        static_cast<unsigned long long>(S.count()));
    Out += formatString("%s,histogram,mean,%s\n", Name.c_str(),
                        formatNumber(S.mean()).c_str());
    Out += formatString("%s,histogram,stddev,%s\n", Name.c_str(),
                        formatNumber(S.stddev()).c_str());
    Out += formatString("%s,histogram,min,%s\n", Name.c_str(),
                        formatNumber(S.min()).c_str());
    Out += formatString("%s,histogram,max,%s\n", Name.c_str(),
                        formatNumber(S.max()).c_str());
    Out += formatString("%s,histogram,p50,%s\n", Name.c_str(),
                        formatNumber(H.quantile(0.50)).c_str());
    Out += formatString("%s,histogram,p90,%s\n", Name.c_str(),
                        formatNumber(H.quantile(0.90)).c_str());
    Out += formatString("%s,histogram,p95,%s\n", Name.c_str(),
                        formatNumber(H.quantile(0.95)).c_str());
    Out += formatString("%s,histogram,p99,%s\n", Name.c_str(),
                        formatNumber(H.quantile(0.99)).c_str());
    for (size_t I = 0; I < H.bucketCounts().size(); ++I) {
      std::string Edge = I < H.upperBounds().size()
                             ? "le_" + formatNumber(H.upperBounds()[I])
                             : std::string("overflow");
      Out += formatString(
          "%s,histogram,bucket_%s,%llu\n", Name.c_str(), Edge.c_str(),
          static_cast<unsigned long long>(H.bucketCounts()[I]));
    }
  }
  return Out;
}
