//===- telemetry/SchedTrace.cpp - Sweep scheduler observability -----------===//
//
// Part of the GreenWeb reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "telemetry/SchedTrace.h"

#include "support/Json.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <cmath>
#include <unistd.h>

using namespace greenweb;

//===----------------------------------------------------------------------===//
// SchedTrace
//===----------------------------------------------------------------------===//

void SchedTrace::beginBatch(unsigned WorkersIn, size_t Items) {
  Workers = WorkersIn;
  BatchNs = 0;
  MergeWindowNs = 0;
  PerWorker.assign(Workers, {});
  Merges.clear();
  for (auto &Buf : PerWorker)
    Buf.reserve(Workers ? Items / Workers + 1 : 0);
  BatchBegin = std::chrono::steady_clock::now();
}

void SchedTrace::endBatch() { BatchNs = sinceBatchBeginNs(); }

int64_t SchedTrace::sinceBatchBeginNs() const {
  if (Workers == 0)
    return 0;
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - BatchBegin)
      .count();
}

void SchedTrace::record(SchedItem Item) {
  if (Item.Worker < PerWorker.size())
    PerWorker[Item.Worker].push_back(std::move(Item));
}

void SchedTrace::noteMerge(uint64_t Item, int64_t MergeNs,
                           int64_t HubRecords) {
  Merges.push_back({Item, MergeNs, HubRecords});
}

std::vector<SchedItem> SchedTrace::items() const {
  std::vector<SchedItem> All;
  for (const auto &Buf : PerWorker)
    All.insert(All.end(), Buf.begin(), Buf.end());
  std::sort(All.begin(), All.end(),
            [](const SchedItem &A, const SchedItem &B) {
              return A.Item < B.Item;
            });
  for (const MergeNote &N : Merges)
    for (SchedItem &I : All)
      if (I.Item == N.Item) {
        I.MergeNs = N.MergeNs;
        I.HubRecords = N.HubRecords;
        break;
      }
  return All;
}

SchedTrace SchedTrace::fromParts(unsigned Workers, int64_t BatchNs,
                                 int64_t MergeWindowNs,
                                 std::vector<SchedItem> Items) {
  SchedTrace T;
  T.Workers = Workers;
  T.BatchNs = BatchNs;
  T.MergeWindowNs = MergeWindowNs;
  T.PerWorker.assign(std::max(1u, Workers), {});
  for (SchedItem &I : Items)
    if (I.Worker < T.PerWorker.size())
      T.PerWorker[I.Worker].push_back(std::move(I));
  return T;
}

//===----------------------------------------------------------------------===//
// SchedReport
//===----------------------------------------------------------------------===//

SchedReport SchedReport::fromTrace(const SchedTrace &Trace,
                                   size_t StragglerTopK) {
  SchedReport R;
  R.Workers = Trace.workers();
  R.BatchNs = Trace.batchNs();
  R.MergeNs = Trace.mergeWindowNs();
  R.MakespanNs = R.BatchNs + R.MergeNs;

  std::vector<SchedItem> Items = Trace.items();
  R.Items = Items.size();
  R.PerWorker.resize(R.Workers);
  for (unsigned W = 0; W < R.Workers; ++W)
    R.PerWorker[W].Id = W;

  // Per-worker busy/wait: replay each worker's timeline in claim
  // order; the gap before an item (first claim included) is handout
  // wait, everything inside RunNs is busy.
  std::vector<SchedItem> ByStart = Items;
  std::sort(ByStart.begin(), ByStart.end(),
            [](const SchedItem &A, const SchedItem &B) {
              if (A.StartNs != B.StartNs)
                return A.StartNs < B.StartNs;
              return A.Item < B.Item;
            });
  std::vector<int64_t> PrevEnd(R.Workers, 0);
  for (const SchedItem &I : ByStart) {
    if (I.Worker >= R.Workers)
      continue;
    Worker &W = R.PerWorker[I.Worker];
    ++W.Items;
    W.BusyNs += I.RunNs;
    W.WaitNs += std::max<int64_t>(0, I.StartNs - PrevEnd[I.Worker]);
    PrevEnd[I.Worker] = I.StartNs + I.RunNs;
  }

  for (const SchedItem &I : Items) {
    R.SerialSumNs += I.RunNs;
    R.SetupNs += I.SetupNs;
    R.SimNs += I.SimNs;
    R.HookNs += I.HookNs;
    R.HubRecords += I.HubRecords;
  }
  R.ItemOverheadNs = R.SerialSumNs - R.SetupNs - R.SimNs - R.HookNs;

  for (Worker &W : R.PerWorker) {
    R.MaxBusyNs = std::max(R.MaxBusyNs, W.BusyNs);
    W.Utilization =
        R.BatchNs > 0 ? double(W.BusyNs) / double(R.BatchNs) : 0.0;
  }

  if (R.MakespanNs > 0) {
    double Makespan = double(R.MakespanNs);
    R.Speedup = double(R.SerialSumNs) / Makespan;
    R.Efficiency =
        R.Workers ? double(R.SerialSumNs) / (double(R.Workers) * Makespan)
                  : 0.0;
    double MeanBusy =
        R.Workers ? double(R.SerialSumNs) / double(R.Workers) : 0.0;
    R.ComputeFraction = MeanBusy / Makespan;
    R.ImbalanceFraction = (double(R.MaxBusyNs) - MeanBusy) / Makespan;
    R.OverheadFraction =
        (double(R.BatchNs) - double(R.MaxBusyNs)) / Makespan;
    R.MergeFraction = double(R.MergeNs) / Makespan;
  }

  // Straggler top-k by run time (ties broken by item index so the
  // ranking is deterministic).
  std::vector<SchedItem> ByRun = Items;
  std::sort(ByRun.begin(), ByRun.end(),
            [](const SchedItem &A, const SchedItem &B) {
              if (A.RunNs != B.RunNs)
                return A.RunNs > B.RunNs;
              return A.Item < B.Item;
            });
  for (size_t I = 0; I < ByRun.size() && I < StragglerTopK; ++I)
    R.Stragglers.push_back(
        {ByRun[I].Item, ByRun[I].Worker, ByRun[I].Label, ByRun[I].RunNs});
  return R;
}

std::string SchedReport::toJson() const {
  std::string Out = formatString(
      "{\"workers\":%u,\"items\":%llu,\"batch_ns\":%lld,"
      "\"merge_ns\":%lld,\"makespan_ns\":%lld,\"serial_sum_ns\":%lld,"
      "\"max_busy_ns\":%lld,\"speedup\":%.6f,\"efficiency\":%.6f",
      Workers, static_cast<unsigned long long>(Items),
      static_cast<long long>(BatchNs), static_cast<long long>(MergeNs),
      static_cast<long long>(MakespanNs),
      static_cast<long long>(SerialSumNs),
      static_cast<long long>(MaxBusyNs), Speedup, Efficiency);
  Out += formatString(
      ",\"attribution\":{\"compute\":%.6f,\"imbalance\":%.6f,"
      "\"overhead\":%.6f,\"merge_serialization\":%.6f}",
      ComputeFraction, ImbalanceFraction, OverheadFraction, MergeFraction);
  Out += formatString(",\"phases\":{\"setup_ns\":%lld,\"sim_ns\":%lld,"
                      "\"hook_ns\":%lld,\"item_overhead_ns\":%lld}",
                      static_cast<long long>(SetupNs),
                      static_cast<long long>(SimNs),
                      static_cast<long long>(HookNs),
                      static_cast<long long>(ItemOverheadNs));
  Out += formatString(",\"hub_records\":%lld,\"per_worker\":[",
                      static_cast<long long>(HubRecords));
  for (size_t I = 0; I < PerWorker.size(); ++I) {
    const Worker &W = PerWorker[I];
    Out += formatString(
        "%s{\"worker\":%u,\"items\":%llu,\"busy_ns\":%lld,"
        "\"wait_ns\":%lld,\"utilization\":%.6f}",
        I ? "," : "", W.Id, static_cast<unsigned long long>(W.Items),
        static_cast<long long>(W.BusyNs), static_cast<long long>(W.WaitNs),
        W.Utilization);
  }
  Out += "],\"stragglers\":[";
  for (size_t I = 0; I < Stragglers.size(); ++I) {
    const Straggler &S = Stragglers[I];
    Out += formatString(
        "%s{\"item\":%llu,\"worker\":%u,\"label\":\"%s\",\"run_ns\":%lld}",
        I ? "," : "", static_cast<unsigned long long>(S.Item), S.Worker,
        jsonEscape(S.Label).c_str(), static_cast<long long>(S.RunNs));
  }
  Out += "]}";
  return Out;
}

std::string SchedReport::format() const {
  std::string Out = formatString(
      "scheduler report: %llu items on %u workers\n"
      "  makespan %.3f ms = batch %.3f ms + merge %.3f ms "
      "(serial sum %.3f ms)\n"
      "  speedup %.2fx, parallel efficiency %.1f%%\n"
      "  attribution: compute %.1f%%, imbalance %.1f%%, overhead %.1f%%, "
      "merge serialization %.1f%%\n"
      "  phases: setup %.3f ms, simulate %.3f ms, hooks %.3f ms, "
      "per-item overhead %.3f ms (%lld hub records)\n",
      static_cast<unsigned long long>(Items), Workers,
      double(MakespanNs) / 1e6, double(BatchNs) / 1e6,
      double(MergeNs) / 1e6, double(SerialSumNs) / 1e6, Speedup,
      Efficiency * 100.0, ComputeFraction * 100.0,
      ImbalanceFraction * 100.0, OverheadFraction * 100.0,
      MergeFraction * 100.0, double(SetupNs) / 1e6, double(SimNs) / 1e6,
      double(HookNs) / 1e6, double(ItemOverheadNs) / 1e6,
      static_cast<long long>(HubRecords));
  for (const Worker &W : PerWorker)
    Out += formatString(
        "  worker %-2u %3llu items  busy %8.3f ms  wait %8.3f ms  "
        "utilization %5.1f%%\n",
        W.Id, static_cast<unsigned long long>(W.Items),
        double(W.BusyNs) / 1e6, double(W.WaitNs) / 1e6,
        W.Utilization * 100.0);
  if (!Stragglers.empty()) {
    Out += "  stragglers:\n";
    for (const Straggler &S : Stragglers)
      Out += formatString("    item %-3llu %-24s worker %-2u %8.3f ms\n",
                          static_cast<unsigned long long>(S.Item),
                          S.Label.c_str(), S.Worker,
                          double(S.RunNs) / 1e6);
  }
  return Out;
}

//===----------------------------------------------------------------------===//
// Artifact round trip
//===----------------------------------------------------------------------===//

std::string greenweb::schedArtifactJson(const SchedTrace &Trace,
                                        const SchedReport &Report) {
  std::string Out = formatString(
      "{\n  \"kind\": \"sched_trace\",\n  \"workers\": %u,\n"
      "  \"batch_ns\": %lld,\n  \"merge_ns\": %lld,\n  \"items\": [\n",
      Trace.workers(), static_cast<long long>(Trace.batchNs()),
      static_cast<long long>(Trace.mergeWindowNs()));
  std::vector<SchedItem> Items = Trace.items();
  for (size_t I = 0; I < Items.size(); ++I) {
    const SchedItem &It = Items[I];
    Out += formatString(
        "    {\"item\":%llu,\"worker\":%u,\"label\":\"%s\","
        "\"start_ns\":%lld,\"run_ns\":%lld,\"setup_ns\":%lld,"
        "\"sim_ns\":%lld,\"hook_ns\":%lld,\"merge_ns\":%lld,"
        "\"hub_records\":%lld}%s\n",
        static_cast<unsigned long long>(It.Item), It.Worker,
        jsonEscape(It.Label).c_str(), static_cast<long long>(It.StartNs),
        static_cast<long long>(It.RunNs),
        static_cast<long long>(It.SetupNs),
        static_cast<long long>(It.SimNs),
        static_cast<long long>(It.HookNs),
        static_cast<long long>(It.MergeNs),
        static_cast<long long>(It.HubRecords),
        I + 1 < Items.size() ? "," : "");
  }
  Out += "  ],\n  \"report\": " + Report.toJson() + "\n}\n";
  return Out;
}

bool greenweb::schedTraceFromArtifact(const std::string &Text,
                                      SchedTrace &Out, std::string *Error) {
  auto Fail = [Error](const char *Msg) {
    if (Error)
      *Error = Msg;
    return false;
  };
  std::string ParseError;
  std::optional<json::Value> Doc = json::parse(Text, &ParseError);
  if (!Doc)
    return Fail(("invalid JSON: " + ParseError).c_str());
  if (!Doc->isObject() || Doc->stringOr("kind", "") != "sched_trace")
    return Fail("not a sched artifact (expected kind \"sched_trace\")");
  const json::Value *Items = Doc->get("items");
  if (!Items || !Items->isArray())
    return Fail("sched artifact has no items array");

  // Every numeric field is an integer nanosecond count well under
  // 2^53, so the double round trip through the JSON parser is exact.
  auto AsI64 = [](const json::Value &V, std::string_view Key) {
    return int64_t(std::llround(V.numberOr(Key, 0.0)));
  };
  std::vector<SchedItem> Parsed;
  Parsed.reserve(Items->Arr.size());
  for (const json::Value &V : Items->Arr) {
    SchedItem I;
    I.Item = uint64_t(AsI64(V, "item"));
    I.Worker = unsigned(AsI64(V, "worker"));
    I.Label = V.stringOr("label", "");
    I.StartNs = AsI64(V, "start_ns");
    I.RunNs = AsI64(V, "run_ns");
    I.SetupNs = AsI64(V, "setup_ns");
    I.SimNs = AsI64(V, "sim_ns");
    I.HookNs = AsI64(V, "hook_ns");
    I.MergeNs = AsI64(V, "merge_ns");
    I.HubRecords = AsI64(V, "hub_records");
    Parsed.push_back(std::move(I));
  }
  Out = SchedTrace::fromParts(
      unsigned(std::llround(Doc->numberOr("workers", 0.0))),
      int64_t(std::llround(Doc->numberOr("batch_ns", 0.0))),
      int64_t(std::llround(Doc->numberOr("merge_ns", 0.0))),
      std::move(Parsed));
  return true;
}

std::string
greenweb::schedReportSectionFromArtifact(const std::string &Text) {
  size_t Key = Text.find("\"report\":");
  if (Key == std::string::npos)
    return {};
  size_t Open = Text.find('{', Key);
  if (Open == std::string::npos)
    return {};
  // Balanced-brace scan, skipping string contents (labels may hold
  // arbitrary escaped text).
  int Depth = 0;
  bool InString = false;
  for (size_t I = Open; I < Text.size(); ++I) {
    char C = Text[I];
    if (InString) {
      if (C == '\\')
        ++I;
      else if (C == '"')
        InString = false;
      continue;
    }
    if (C == '"')
      InString = true;
    else if (C == '{')
      ++Depth;
    else if (C == '}' && --Depth == 0)
      return Text.substr(Open, I - Open + 1);
  }
  return {};
}

//===----------------------------------------------------------------------===//
// Perfetto export
//===----------------------------------------------------------------------===//

std::string greenweb::schedPerfettoTrackJson(const SchedTrace &Trace) {
  std::vector<SchedItem> Items = Trace.items();
  if (Items.empty())
    return {};
  // A dedicated pid keeps the host-time scheduler tracks visually
  // separate from the simulated-time tracks (gw-prof uses 9000).
  constexpr int SchedPid = 9100;
  std::string Out = formatString(
      ",\n{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":0,"
      "\"args\":{\"name\":\"sweep scheduler (host time)\"}}",
      SchedPid);
  for (unsigned W = 0; W < Trace.workers(); ++W)
    Out += formatString(
        ",\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":%u,"
        "\"args\":{\"name\":\"worker %u%s\"}}",
        SchedPid, W, W, W == 0 ? " (caller)" : "");

  std::vector<SchedItem> ByStart = Items;
  std::sort(ByStart.begin(), ByStart.end(),
            [](const SchedItem &A, const SchedItem &B) {
              if (A.StartNs != B.StartNs)
                return A.StartNs < B.StartNs;
              return A.Item < B.Item;
            });
  std::vector<int64_t> PrevEnd(Trace.workers(), 0);
  for (const SchedItem &I : ByStart) {
    if (I.Worker < PrevEnd.size()) {
      int64_t Wait = I.StartNs - PrevEnd[I.Worker];
      if (Wait > 0)
        Out += formatString(
            ",\n{\"name\":\"(wait)\",\"cat\":\"sched\",\"ph\":\"X\","
            "\"pid\":%d,\"tid\":%u,\"ts\":%.3f,\"dur\":%.3f,"
            "\"args\":{\"queue_wait_ns\":%lld}}",
            SchedPid, I.Worker, double(PrevEnd[I.Worker]) / 1e3,
            double(Wait) / 1e3, static_cast<long long>(Wait));
      PrevEnd[I.Worker] = I.StartNs + I.RunNs;
    }
    Out += formatString(
        ",\n{\"name\":\"%s\",\"cat\":\"sched\",\"ph\":\"X\",\"pid\":%d,"
        "\"tid\":%u,\"ts\":%.3f,\"dur\":%.3f,\"args\":{\"item\":%llu,"
        "\"setup_ns\":%lld,\"sim_ns\":%lld,\"hook_ns\":%lld,"
        "\"merge_ns\":%lld,\"hub_records\":%lld}}",
        jsonEscape(I.Label.empty() ? formatString("item %llu",
                                                  (unsigned long long)I.Item)
                                   : I.Label)
            .c_str(),
        SchedPid, I.Worker, double(I.StartNs) / 1e3, double(I.RunNs) / 1e3,
        static_cast<unsigned long long>(I.Item),
        static_cast<long long>(I.SetupNs), static_cast<long long>(I.SimNs),
        static_cast<long long>(I.HookNs),
        static_cast<long long>(I.MergeNs),
        static_cast<long long>(I.HubRecords));
  }
  // The serialized merge occupies the caller track after the batch.
  if (Trace.mergeWindowNs() > 0)
    Out += formatString(
        ",\n{\"name\":\"merge (serialized)\",\"cat\":\"sched\","
        "\"ph\":\"X\",\"pid\":%d,\"tid\":0,\"ts\":%.3f,\"dur\":%.3f,"
        "\"args\":{\"merge_ns\":%lld}}",
        SchedPid, double(Trace.batchNs()) / 1e3,
        double(Trace.mergeWindowNs()) / 1e3,
        static_cast<long long>(Trace.mergeWindowNs()));
  return Out;
}

//===----------------------------------------------------------------------===//
// SchedProgress
//===----------------------------------------------------------------------===//

SchedProgress::SchedProgress(std::FILE *OutIn) : Out(OutIn) {
  Tty = isatty(fileno(Out)) != 0;
}

void SchedProgress::begin(unsigned WorkersIn, size_t ItemsIn,
                          std::string LabelIn) {
  Workers = WorkersIn;
  Items = ItemsIn;
  Label = std::move(LabelIn);
  Done.store(0);
  BusyNs = std::make_unique<std::atomic<int64_t>[]>(Workers);
  for (unsigned W = 0; W < Workers; ++W)
    BusyNs[W].store(0);
  Begin = std::chrono::steady_clock::now();
  LastRender = Begin;
  Armed = true;
  Rendered = false;
}

void SchedProgress::itemDone(unsigned Worker, int64_t ItemBusyNs) {
  if (!Armed)
    return;
  if (Worker < Workers)
    BusyNs[Worker].fetch_add(ItemBusyNs, std::memory_order_relaxed);
  Done.fetch_add(1, std::memory_order_relaxed);
  maybeRender(/*Force=*/false);
}

void SchedProgress::finish() {
  if (!Armed)
    return;
  maybeRender(/*Force=*/true);
  if (Rendered && Tty)
    std::fputc('\n', Out);
  Armed = false;
}

std::string SchedProgress::renderLine() const {
  double Elapsed = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - Begin)
                       .count();
  size_t D = Done.load(std::memory_order_relaxed);
  std::string Line = formatString("[%s] %zu/%zu items  %.1fs elapsed",
                                  Label.c_str(), D, Items, Elapsed);
  if (D > 0 && D < Items)
    Line += formatString("  eta %.1fs",
                         Elapsed * double(Items - D) / double(D));
  if (Workers > 0 && Elapsed > 0) {
    Line += "  util";
    // Cap the per-worker list so wide fleets keep a one-line status.
    unsigned Shown = std::min(Workers, 8u);
    for (unsigned W = 0; W < Shown; ++W)
      Line += formatString(
          " w%u %.0f%%", W,
          100.0 * double(BusyNs[W].load(std::memory_order_relaxed)) /
              (Elapsed * 1e9));
    if (Shown < Workers)
      Line += formatString(" (+%u more)", Workers - Shown);
  }
  return Line;
}

void SchedProgress::maybeRender(bool Force) {
  // Redraw-in-place on a TTY at ~10 Hz; plain lines elsewhere at a
  // cadence coarse enough to keep CI logs readable.
  const auto MinGap =
      Tty ? std::chrono::milliseconds(100) : std::chrono::seconds(2);
  std::unique_lock<std::mutex> Lock(RenderMu, std::try_to_lock);
  if (!Lock.owns_lock())
    return; // Another worker is rendering; this update can wait.
  auto Now = std::chrono::steady_clock::now();
  if (!Force && Rendered && Now - LastRender < MinGap)
    return;
  LastRender = Now;
  Rendered = true;
  std::string Line = renderLine();
  if (Tty) {
    // Pad over any longer previous render.
    std::fprintf(Out, "\r%-100s", Line.c_str());
  } else {
    std::fprintf(Out, "%s\n", Line.c_str());
  }
  std::fflush(Out);
}
