//===- telemetry/EnergyAttribution.cpp - Joules per annotation -------------===//
//
// Part of the GreenWeb reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "telemetry/EnergyAttribution.h"

#include "support/StringUtils.h"

#include <algorithm>
#include <map>
#include <set>

using namespace greenweb;

namespace {

/// An input event's lifetime window.
struct RootWindow {
  int64_t Root = 0;
  double BeginUs = 0.0;
  double EndUs = 0.0;
  std::string Name; ///< "input:<type>" — the fallback annotation key.
};

} // namespace

EnergyAttributionResult greenweb::attributeEnergy(const TelemetryLog &Log) {
  EnergyAttributionResult Result;

  // Root lifetimes from the span records; annotation keys and violation
  // counts from the governor's records.
  std::vector<RootWindow> Roots;
  std::map<int64_t, std::string> KeyByRoot;
  std::map<int64_t, uint64_t> ViolationsByRoot;
  std::vector<std::pair<double, double>> Samples; // (ts_us, cumulative J)
  for (const TelemetryRecord &R : Log.records()) {
    switch (R.Kind) {
    case TelemetryEventKind::Span: {
      if (R.stringOr("thread", "") != "inputs")
        break;
      RootWindow W;
      W.Root = int64_t(R.numberOr("root", 0));
      if (W.Root == 0)
        break;
      W.BeginUs = R.numberOr("begin_us", 0.0);
      W.EndUs = W.BeginUs + R.numberOr("dur_ms", 0.0) * 1e3;
      W.Name = R.stringOr("name", "input:?");
      Roots.push_back(std::move(W));
      break;
    }
    case TelemetryEventKind::GovernorDecision:
    case TelemetryEventKind::QosViolation: {
      int64_t Root = int64_t(R.numberOr("root", 0));
      if (R.Kind == TelemetryEventKind::QosViolation)
        ++ViolationsByRoot[Root];
      std::string Key = R.stringOr("key", "");
      if (Root != 0 && !Key.empty() && !KeyByRoot.count(Root))
        KeyByRoot[Root] = std::move(Key);
      break;
    }
    case TelemetryEventKind::EnergySample:
      Samples.emplace_back(R.Ts.nanos() / 1e3, R.numberOr("joules", 0.0));
      break;
    default:
      break;
    }
  }
  Result.Samples = Samples.size();

  auto keyOfRoot = [&](int64_t Root, const std::string &Fallback) {
    auto It = KeyByRoot.find(Root);
    return It == KeyByRoot.end() ? Fallback : It->second;
  };

  std::map<std::string, AnnotationEnergy> ByKey;
  std::map<std::string, std::set<int64_t>> RootsOfKey;
  double Unattributed = 0.0;

  // Walk sample intervals and split each delta by overlap. The first
  // sample's interval is reconstructed from the sampling period (the
  // gap to the second sample); a negative delta means the meter was
  // reset mid-run, so the cumulative counter restarted from zero.
  for (size_t I = 0; I < Samples.size(); ++I) {
    double B = Samples[I].first;
    double A;
    if (I > 0)
      A = Samples[I - 1].first;
    else if (Samples.size() > 1)
      A = B - (Samples[1].first - Samples[0].first);
    else
      A = B;
    double Delta = I > 0 ? Samples[I].second - Samples[I - 1].second
                         : Samples[I].second;
    if (Delta < 0.0)
      Delta = Samples[I].second;
    if (Delta <= 0.0)
      continue;
    Result.TotalJoules += Delta;

    double TotalOverlap = 0.0;
    for (const RootWindow &W : Roots)
      TotalOverlap +=
          std::max(0.0, std::min(B, W.EndUs) - std::max(A, W.BeginUs));
    if (TotalOverlap <= 0.0) {
      Unattributed += Delta;
      continue;
    }
    for (const RootWindow &W : Roots) {
      double Overlap =
          std::max(0.0, std::min(B, W.EndUs) - std::max(A, W.BeginUs));
      if (Overlap <= 0.0)
        continue;
      std::string Key = keyOfRoot(W.Root, W.Name);
      AnnotationEnergy &Row = ByKey[Key];
      Row.Key = Key;
      Row.Joules += Delta * (Overlap / TotalOverlap);
      RootsOfKey[Key].insert(W.Root);
    }
  }

  // Violations roll up by the same key resolution, through the root's
  // window name when the violation itself carries no key.
  std::map<int64_t, std::string> NameByRoot;
  for (const RootWindow &W : Roots)
    if (!NameByRoot.count(W.Root))
      NameByRoot[W.Root] = W.Name;
  for (const auto &[Root, Count] : ViolationsByRoot) {
    auto NameIt = NameByRoot.find(Root);
    std::string Key = keyOfRoot(
        Root, NameIt == NameByRoot.end() ? "(unknown)" : NameIt->second);
    AnnotationEnergy &Row = ByKey[Key];
    Row.Key = Key;
    Row.Violations += Count;
  }

  for (auto &[Key, Row] : ByKey) {
    Row.Roots = RootsOfKey[Key].size();
    Result.Rows.push_back(Row);
  }
  if (Unattributed > 0.0) {
    AnnotationEnergy Row;
    Row.Key = unattributedEnergyKey();
    Row.Joules = Unattributed;
    Result.Rows.push_back(Row);
  }
  Result.AttributedJoules = Result.TotalJoules - Unattributed;

  std::sort(Result.Rows.begin(), Result.Rows.end(),
            [](const AnnotationEnergy &X, const AnnotationEnergy &Y) {
              if (X.Joules != Y.Joules)
                return X.Joules > Y.Joules;
              return X.Key < Y.Key;
            });
  return Result;
}

std::string greenweb::formatEnergyTable(const EnergyAttributionResult &Result,
                                        size_t N) {
  std::string Out = formatString("%-44s %12s %8s %7s %11s\n", "annotation",
                                 "energy (mJ)", "share", "events",
                                 "violations");
  size_t Shown = 0;
  for (const AnnotationEnergy &Row : Result.Rows) {
    if (N != 0 && Shown++ >= N)
      break;
    double Share = Result.TotalJoules > 0.0
                       ? 100.0 * Row.Joules / Result.TotalJoules
                       : 0.0;
    Out += formatString("%-44s %12.2f %7.1f%% %7llu %11llu\n",
                        Row.Key.c_str(), Row.Joules * 1e3, Share,
                        static_cast<unsigned long long>(Row.Roots),
                        static_cast<unsigned long long>(Row.Violations));
  }
  Out += formatString("%-44s %12.2f %7.1f%%\n", "total",
                      Result.TotalJoules * 1e3, 100.0);
  return Out;
}
