//===- greenweb/Features.h - Learned-governor feature pipeline --*- C++ -*-===//
//
// Part of the GreenWeb reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The learned-governor feature pipeline (Yuan et al., "Using Machine
/// Learning to Optimize Web Interactions on Heterogeneous Mobile
/// Systems"): a fixed feature schema shared between training and
/// serving, the online FeatureExtractor that maintains it from the same
/// observables the LTM runtime sees, an offline label generator that
/// sweeps the config ladder against a frame's ground-truth cost, a
/// dependency-free CART trainer whose output is byte-deterministic and
/// invariant to input row order, and the JSON model the
/// PredictiveGovernor loads at attach time.
///
/// Train/serve skew is the classic failure mode of this design, so both
/// sides are deliberately the same code: the FeatureProbe that exports
/// training rows during fleet runs and the PredictiveGovernor that
/// queries the model at decision time build their vectors through one
/// FeatureExtractor with one feature order (kFeatureNames).
///
//===----------------------------------------------------------------------===//

#ifndef GREENWEB_GREENWEB_FEATURES_H
#define GREENWEB_GREENWEB_FEATURES_H

#include "browser/FrameTracker.h"
#include "greenweb/Qos.h"
#include "support/Time.h"

#include <array>
#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace greenweb {

class AcmpChip;
class AnnotationRegistry;
struct AcmpConfig;

//===----------------------------------------------------------------------===//
// Feature schema
//===----------------------------------------------------------------------===//

/// Number of features per row. The order below is the one canonical
/// feature order; models record it and refuse to load against a
/// different schema.
inline constexpr size_t kNumFeatures = 9;

/// Canonical feature names, in vector order:
///   0 event_rate_hz      inputs in the trailing window, per second
///   1 prev_frame_mcycles previous frame's charged cycles, millions
///   2 ewma_frame_mcycles EWMA of charged frame cycles, millions
///   3 prev_frame_fixed_ms previous frame's frequency-independent time
///   4 is_continuous      1 for smoothness (continuous) QoS, else 0
///   5 target_ms          the event's active QoS target
///   6 event_kind         small enum of the root event type
///   7 cur_is_big         1 when the chip sits on the big cluster
///   8 cur_freq_mhz       current chip frequency
const std::array<const char *, kNumFeatures> &featureNames();

/// Small enum used for feature 6; unknown types collapse to one code so
/// the model never sees an unbounded categorical.
int eventKindCode(const std::string &Type);

/// One training example: the feature vector known before a frame ran,
/// labeled with the minimum-energy ladder level that would have met the
/// frame's QoS target given its ground-truth cost.
struct FeatureRow {
  std::array<double, kNumFeatures> F{};
  int Label = 0;
};

//===----------------------------------------------------------------------===//
// Online feature extraction
//===----------------------------------------------------------------------===//

/// Maintains the running feature state from runtime-visible observables
/// (input arrivals and completed frames). Shared by the training-data
/// probe and the serving-time governor.
class FeatureExtractor {
public:
  /// Trailing window for the event-rate feature.
  static constexpr double kRateWindowSecs = 1.0;
  /// EWMA smoothing factor for frame cycles.
  static constexpr double kEwmaAlpha = 0.3;

  void noteInput(TimePoint Now);
  void noteFrame(const FrameRecord &Frame);
  void reset();

  /// True once at least one frame has been observed. Before that the
  /// cost features are degenerate zeros: the exporter skips such rows
  /// and the serving governor declines to predict from them.
  bool hasHistory() const { return SeenFrame; }

  /// Builds the canonical feature vector for deciding the next frame of
  /// an event with the given QoS shape, at the given chip state.
  std::array<double, kNumFeatures> features(TimePoint Now, bool Continuous,
                                            double TargetMs, int EventKind,
                                            bool CurIsBig,
                                            double CurFreqMHz) const;

private:
  std::deque<TimePoint> InputTimes;
  double PrevMcycles = 0.0;
  double EwmaMcycles = 0.0;
  double PrevFixedMs = 0.0;
  bool SeenFrame = false;
};

//===----------------------------------------------------------------------===//
// Offline label generation
//===----------------------------------------------------------------------===//

/// Sweeps \p Ladder and returns the index of the minimum-energy level
/// whose latency — \p Fixed plus \p Cycles at the level's effective
/// rate — lands within \p Target scaled by \p SafetyMargin. Falls back
/// to the top level when nothing qualifies. This is the exporter's
/// privilege: it sees the frame's ground-truth cost after the fact,
/// which the online runtime never does.
int bestLadderLevel(const AcmpChip &Chip,
                    const std::vector<AcmpConfig> &Ladder, double Cycles,
                    Duration Fixed, Duration Target,
                    double SafetyMargin = 0.95);

//===----------------------------------------------------------------------===//
// Feature table (JSONL)
//===----------------------------------------------------------------------===//

/// Parsed feature table: the header's ladder size plus all rows. The
/// on-disk form is JSONL — an optional {"kind":"meta",...} line, one
/// required {"kind":"feature_header",...} line naming the schema, and
/// one {"kind":"feature_row",...} line per example.
struct FeatureTable {
  size_t LadderLevels = 0;
  std::vector<FeatureRow> Rows;

  static bool parse(const std::string &Text, FeatureTable &Out,
                    std::string *Error = nullptr);
};

/// The {"kind":"feature_header",...} line (fixed key order).
std::string featureHeaderLine(size_t LadderLevels);
/// One {"kind":"feature_row",...} line. \p App / \p Governor / \p Seed
/// tag the row's provenance for slicing; training ignores them.
std::string featureRowLine(const FeatureRow &Row, const std::string &App,
                           const std::string &Governor, uint64_t Seed);

//===----------------------------------------------------------------------===//
// Decision-tree model
//===----------------------------------------------------------------------===//

/// One tree node. Internal nodes split on F[Feature] < Threshold (left)
/// vs >= (right); leaves carry the majority label with its vote share.
struct TreeNode {
  int Feature = -1; ///< -1 marks a leaf.
  double Threshold = 0.0;
  int Left = -1;
  int Right = -1;
  int Leaf = 0;            ///< Majority ladder level (leaves).
  double Confidence = 0.0; ///< Majority vote share in [0, 1] (leaves).
  uint64_t Count = 0;      ///< Training rows that reached this leaf.
};

/// A trained classifier mapping feature vectors to ladder levels.
struct DecisionTreeModel {
  size_t LadderLevels = 0;
  unsigned MaxDepth = 0;
  unsigned MinSamplesLeaf = 0;
  uint64_t TrainedRows = 0;
  std::vector<TreeNode> Nodes; ///< Node 0 is the root; empty = untrained.

  struct Prediction {
    int Level = 0;
    double Confidence = 0.0;
  };
  /// Walks the tree; asserts on an untrained model.
  Prediction predict(const std::array<double, kNumFeatures> &F) const;

  /// Canonical JSON document (fixed key order, %.17g floats): identical
  /// inputs serialize byte-for-byte.
  std::string toJson() const;

  /// Parses and validates a model document. Wrong kind, wrong schema
  /// version, a foreign feature list, or malformed nodes all fail with
  /// a diagnostic — the governor treats any failure as "no model".
  static bool parse(const std::string &Text, DecisionTreeModel &Out,
                    std::string *Error = nullptr);

  bool loaded() const { return !Nodes.empty(); }
};

/// CART training options.
struct TrainOptions {
  unsigned MaxDepth = 8;
  unsigned MinSamplesLeaf = 4;
};

/// Trains a CART classifier over \p Rows. Deterministic by
/// construction: rows are first sorted into a canonical order (so the
/// result is invariant to input shuffling), the exhaustive Gini split
/// search breaks ties toward the lowest feature index then the lowest
/// threshold, and leaf ties break toward the lower ladder level (the
/// more energy-conservative choice under our ladder ordering is the
/// *higher* level, so ties preferring lower levels must be earned by
/// actual majority).
DecisionTreeModel trainDecisionTree(std::vector<FeatureRow> Rows,
                                    size_t LadderLevels,
                                    const TrainOptions &Opts = {});

//===----------------------------------------------------------------------===//
// Training-data probe
//===----------------------------------------------------------------------===//

/// FrameObserver that exports one labeled FeatureRow per frame
/// attributed to an annotated event, mirroring the runtime's event
/// bookkeeping (single events stop at their response frame, continuous
/// events run to quiescence). Attach alongside any governor: labels
/// come from ground-truth frame costs, not from what the chip ran.
class FeatureProbe : public FrameObserver {
public:
  FeatureProbe(const AnnotationRegistry &Registry, AcmpChip &Chip,
               UsageScenario Scenario, std::vector<FeatureRow> &Out);

  void onInputDispatched(uint64_t RootId, const std::string &Type,
                         Element *Target) override;
  void onFrameReady(const FrameRecord &Frame) override;
  void onEventQuiescent(uint64_t RootId) override;

  /// Label-generation safety margin. Deliberately tighter than the
  /// runtime's 0.95 budget fraction: the label is a counterfactual that
  /// assumes the next frame costs exactly what this one did, so the
  /// headroom absorbs frame-to-frame cycle variance the model cannot
  /// see. 0.80 keeps ablation QoS at parity with the LTM baseline.
  static constexpr double kLabelSafetyMargin = 0.80;

private:
  struct Active {
    bool Continuous = false;
    Duration Target;
    int Kind = 0;
  };

  const AnnotationRegistry &Registry;
  AcmpChip &Chip;
  UsageScenario Scenario;
  std::vector<FeatureRow> &Out;
  std::vector<AcmpConfig> Ladder;
  FeatureExtractor Extractor;
  std::map<uint64_t, Active> ActiveRoots;
};

} // namespace greenweb

#endif // GREENWEB_GREENWEB_FEATURES_H
