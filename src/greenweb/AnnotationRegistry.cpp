//===- greenweb/AnnotationRegistry.cpp - QoS annotation lookup ------------------===//
//
// Part of the GreenWeb reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "greenweb/AnnotationRegistry.h"

#include "browser/Browser.h"
#include "dom/Dom.h"

using namespace greenweb;

void AnnotationRegistry::annotate(const Element &E,
                                  const std::string &EventName,
                                  QosSpec Spec) {
  Specs[{E.nodeId(), EventName}] = Spec;
}

std::optional<QosSpec>
AnnotationRegistry::lookup(const Element &E,
                           const std::string &EventName) const {
  return lookup(E.nodeId(), EventName);
}

std::optional<QosSpec>
AnnotationRegistry::lookup(uint64_t NodeId,
                           const std::string &EventName) const {
  auto It = Specs.find({NodeId, EventName});
  if (It == Specs.end())
    return std::nullopt;
  return It->second;
}

size_t AnnotationRegistry::loadFromPage(Browser &B,
                                        std::vector<std::string> *Diags) {
  if (!B.document())
    return 0;
  size_t Added = 0;
  for (const css::QosAnnotation &Ann :
       B.styleResolver().collectQosAnnotations(*B.document(), Diags)) {
    Specs[{Ann.Target->nodeId(), Ann.EventName}] = lowerQosValue(Ann.Value);
    ++Added;
  }
  return Added;
}

double AnnotationRegistry::annotatedEventFraction(Browser &B) const {
  if (!B.document())
    return 0.0;
  size_t Total = 0;
  size_t Annotated = 0;
  B.document()->forEachElement([&](Element &E) {
    for (const std::string &Type : E.listenedEventTypes()) {
      if (!isUserInputEvent(Type))
        continue;
      ++Total;
      if (lookup(E, Type))
        ++Annotated;
    }
  });
  if (Total == 0)
    return 0.0;
  return double(Annotated) / double(Total);
}
