//===- greenweb/Governors.cpp - Baseline CPU governors ---------------------------===//
//
// Part of the GreenWeb reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "greenweb/Governors.h"

#include "browser/Browser.h"
#include "support/StringUtils.h"
#include "telemetry/Telemetry.h"

#include <algorithm>
#include <cassert>

using namespace greenweb;

namespace {

/// Applies \p Config and, when it actually changed, logs the decision.
/// Baseline governors log only effective changes: their timers
/// re-evaluate continuously and an unchanged choice carries no signal.
bool applyAndLog(Browser &B, const std::string &Gov, const char *Reason,
                 const AcmpConfig &Config) {
  bool Changed = B.chip().setConfig(Config);
  if (!Changed)
    return false;
  if (Telemetry *T = B.simulator().telemetry(); T && T->enabled()) {
    GovernorDecisionRecord R;
    R.Governor = Gov;
    R.Reason = Reason;
    R.Config = Config.str();
    R.CoreIsBig = Config.Core == CoreKind::Big ? 1 : 0;
    R.FreqMHz = int64_t(Config.FreqMHz);
    T->recordGovernorDecision(R);
  }
  return true;
}

} // namespace

Governor::~Governor() = default;

void Governor::detach() {}

std::vector<AcmpConfig> greenweb::buildConfigLadder(const AcmpChip &Chip) {
  std::vector<AcmpConfig> Ladder = Chip.spec().allConfigs();
  std::stable_sort(Ladder.begin(), Ladder.end(),
                   [&Chip](const AcmpConfig &A, const AcmpConfig &B) {
                     return Chip.effectiveHzFor(A) < Chip.effectiveHzFor(B);
                   });
  return Ladder;
}

void PerfGovernor::attach(Browser &B) {
  applyAndLog(B, name(), "pin_peak", B.chip().spec().maxConfig());
}

void PowersaveGovernor::attach(Browser &B) {
  applyAndLog(B, name(), "pin_min", B.chip().spec().minConfig());
}

//===----------------------------------------------------------------------===//
// Interactive
//===----------------------------------------------------------------------===//

namespace {

/// Utilization of the busiest browser thread over the last window.
double sampleMaxUtilization(Browser &B, Duration (&LastBusy)[3],
                            TimePoint &LastSample) {
  SimThread *Threads[3] = {&B.mainThread(), &B.compositorThread(),
                           &B.browserThread()};
  Duration Window = B.simulator().now() - LastSample;
  LastSample = B.simulator().now();
  double MaxUtil = 0.0;
  for (int I = 0; I < 3; ++I) {
    Duration Busy = Threads[I]->totalBusyTime();
    Duration Delta = Busy - LastBusy[I];
    LastBusy[I] = Busy;
    if (!Window.isZero())
      MaxUtil = std::max(MaxUtil, double(Delta.nanos()) /
                                      double(Window.nanos()));
  }
  return std::min(1.0, MaxUtil);
}

} // namespace

InteractiveGovernor::InteractiveGovernor() : P(Params{}) {}

InteractiveGovernor::InteractiveGovernor(Params PIn) : P(PIn) {}

void InteractiveGovernor::attach(Browser &Browser_) {
  B = &Browser_;
  Ladder = buildConfigLadder(B->chip());
  for (Duration &Busy : LastBusy)
    Busy = Duration::zero();
  LastSample = B->simulator().now();
  LastRaise = B->simulator().now();
  // Boot at the lowest speed, as after idle.
  B->chip().setConfig(Ladder.front());
  if (P.TouchBoost)
    B->addFrameObserver(this);
  Timer = B->simulator().schedule(P.Timer, [this] { onTimer(); });
}

void InteractiveGovernor::detach() {
  Timer.cancel();
  if (B && P.TouchBoost)
    B->removeFrameObserver(this);
  B = nullptr;
}

void InteractiveGovernor::onInputDispatched(uint64_t /*RootId*/,
                                            const std::string & /*Type*/,
                                            Element * /*Target*/) {
  // Input booster: pulse to hispeed immediately; the regular timer path
  // decides when load allows dropping again.
  if (!B)
    return;
  applyAndLog(*B, name(), "touch_boost", Ladder.back());
  LastRaise = B->simulator().now();
}

void InteractiveGovernor::onFrameReady(const FrameRecord & /*Frame*/) {}

void InteractiveGovernor::onTimer() {
  assert(B && "timer fired while detached");
  double Util = sampleUtilization();
  AcmpChip &Chip = B->chip();
  AcmpConfig Current = Chip.config();
  double CurrentHz = Chip.effectiveHzFor(Current);
  TimePoint Now = B->simulator().now();

  AcmpConfig Desired = Current;
  if (Util >= P.GoHispeedLoad) {
    // Load burst: jump to the highest speed (hispeed_freq == max).
    Desired = Ladder.back();
  } else {
    // Track the target load proportionally.
    double DesiredHz = CurrentHz * Util / P.TargetLoad;
    Desired = Ladder.front();
    for (const AcmpConfig &Config : Ladder) {
      Desired = Config;
      if (Chip.effectiveHzFor(Config) >= DesiredHz)
        break;
    }
  }

  double DesiredHz = Chip.effectiveHzFor(Desired);
  if (DesiredHz > CurrentHz) {
    applyAndLog(*B, name(),
                Util >= P.GoHispeedLoad ? "go_hispeed" : "track_load",
                Desired);
    LastRaise = Now;
  } else if (DesiredHz < CurrentHz) {
    // Hysteresis: hold the raised speed for min_sample_time, then step
    // down one ladder level per tick (the real governor's target-load
    // churn re-evaluates every timer window, producing this gradual
    // descent rather than a cliff).
    if (Now - LastRaise >= P.MinSampleTime) {
      auto It = std::find(Ladder.begin(), Ladder.end(), Current);
      if (It != Ladder.begin() && It != Ladder.end())
        applyAndLog(*B, name(), "step_down", *(It - 1));
    }
  }
  Timer = B->simulator().schedule(P.Timer, [this] { onTimer(); });
}

double InteractiveGovernor::sampleUtilization() {
  return sampleMaxUtilization(*B, LastBusy, LastSample);
}

//===----------------------------------------------------------------------===//
// EBS (event-based scheduling, Zhu et al. HPCA'15)
//===----------------------------------------------------------------------===//

EbsGovernor::EbsGovernor() : P(Params{}) {}

EbsGovernor::EbsGovernor(Params PIn) : P(PIn) {}

void EbsGovernor::attach(Browser &Browser_) {
  B = &Browser_;
  B->addFrameObserver(this);
  B->chip().setConfig(B->chip().spec().minConfig());
}

void EbsGovernor::detach() {
  IdleDrop.cancel();
  if (B)
    B->removeFrameObserver(this);
  B = nullptr;
  ActiveRoots.clear();
}

std::string EbsGovernor::keyFor(const Element *Target,
                                const std::string &Type) const {
  return formatString("%llu:%s",
                      static_cast<unsigned long long>(
                          Target ? Target->nodeId() : 0),
                      Type.c_str());
}

void EbsGovernor::applyFor(GuessKind Guess) {
  AcmpChip &Chip = B->chip();
  switch (Guess) {
  case GuessKind::Unknown:
    // First occurrence: no measurement yet; EBS plays it safe and runs
    // fast (this is also how it learns the latency).
    applyAndLog(*B, name(), "learn_fast", Chip.spec().maxConfig());
    return;
  case GuessKind::Short:
    // Measured fast -> presumed latency-sensitive -> keep fast.
    if (P.BoostShortToMax)
      applyAndLog(*B, name(), "guess_short", Chip.spec().maxConfig());
    else
      applyAndLog(*B, name(), "guess_short",
                  {CoreKind::Big, Chip.spec().Big.minFreq()});
    return;
  case GuessKind::Medium:
    applyAndLog(*B, name(), "guess_medium",
                {CoreKind::Big, Chip.spec().Big.minFreq()});
    return;
  case GuessKind::Long:
    // Measured slow -> EBS *guesses* the user tolerates it -> go slow.
    // The guess is wrong whenever the latency was long because the
    // event is heavyweight, not because the user is patient.
    applyAndLog(*B, name(), "guess_long",
                {CoreKind::Little, Chip.spec().Little.maxFreq()});
    return;
  }
}

void EbsGovernor::onInputDispatched(uint64_t RootId,
                                    const std::string &Type,
                                    Element *Target) {
  if (!B)
    return;
  IdleDrop.cancel();
  std::string Key = keyFor(Target, Type);
  ActiveRoots[RootId] = Key;
  applyFor(Guesses.count(Key) ? Guesses[Key] : GuessKind::Unknown);
}

void EbsGovernor::onFrameReady(const FrameRecord &Frame) {
  if (!B)
    return;
  // Learn from every root this frame belongs to; the event's response
  // frame also retires it from the active set (EBS thinks in events,
  // not in animation closures — one of the gaps the paper points out).
  for (const MsgLatency &L : Frame.Latencies) {
    auto It = ActiveRoots.find(L.Msg.RootId);
    if (It == ActiveRoots.end())
      continue;
    GuessKind Guess = GuessKind::Medium;
    if (L.Latency < P.ShortLatencyThreshold)
      Guess = GuessKind::Short;
    else if (L.Latency > P.LongLatencyThreshold)
      Guess = GuessKind::Long;
    Guesses[It->second] = Guess;
    ActiveRoots.erase(It);
  }
  if (ActiveRoots.empty() && !IdleDrop.isActive())
    IdleDrop = B->simulator().schedule(P.IdleHold, [this] {
      if (B && ActiveRoots.empty())
        applyAndLog(*B, name(), "idle_drop",
                    B->chip().spec().minConfig());
    });
}

void EbsGovernor::onEventQuiescent(uint64_t RootId) {
  if (!B)
    return;
  ActiveRoots.erase(RootId);
}

//===----------------------------------------------------------------------===//
// Ondemand
//===----------------------------------------------------------------------===//

OndemandGovernor::OndemandGovernor() : P(Params{}) {}

OndemandGovernor::OndemandGovernor(Params PIn) : P(PIn) {}

void OndemandGovernor::attach(Browser &Browser_) {
  B = &Browser_;
  Ladder = buildConfigLadder(B->chip());
  for (Duration &Busy : LastBusy)
    Busy = Duration::zero();
  LastSample = B->simulator().now();
  B->chip().setConfig(Ladder.front());
  Timer = B->simulator().schedule(P.Timer, [this] { onTimer(); });
}

void OndemandGovernor::detach() {
  Timer.cancel();
  B = nullptr;
}

void OndemandGovernor::onTimer() {
  assert(B && "timer fired while detached");
  double Util = sampleMaxUtilization(*B, LastBusy, LastSample);
  AcmpChip &Chip = B->chip();

  if (Util >= P.UpThreshold) {
    applyAndLog(*B, name(), "over_threshold", Ladder.back());
  } else {
    // Scale to the lowest speed that would have kept utilization just
    // under the threshold.
    double NeededHz =
        Chip.effectiveHzFor(Chip.config()) * Util / P.UpThreshold;
    AcmpConfig Desired = Ladder.front();
    for (const AcmpConfig &Config : Ladder) {
      Desired = Config;
      if (Chip.effectiveHzFor(Config) >= NeededHz)
        break;
    }
    applyAndLog(*B, name(), "scale_to_load", Desired);
  }
  Timer = B->simulator().schedule(P.Timer, [this] { onTimer(); });
}
