//===- greenweb/AnnotationRegistry.h - QoS annotation lookup ----*- C++ -*-===//
//
// Part of the GreenWeb reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Maps (element, event) pairs to resolved QoS specifications. Populated
/// from a page's GreenWeb CSS annotations (the cascade result of every
/// `:QoS` rule), by AutoGreen, or programmatically. The GreenWeb runtime
/// consults the registry on every input event; unannotated events are
/// not optimization targets (Sec. 3.1 note in Table 3).
///
//===----------------------------------------------------------------------===//

#ifndef GREENWEB_GREENWEB_ANNOTATIONREGISTRY_H
#define GREENWEB_GREENWEB_ANNOTATIONREGISTRY_H

#include "greenweb/Qos.h"

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace greenweb {

class Browser;
class Element;

/// Per-page registry of GreenWeb annotations.
class AnnotationRegistry {
public:
  /// Registers (or overrides) the spec for an element/event pair.
  void annotate(const Element &E, const std::string &EventName,
                QosSpec Spec);

  /// Looks up the spec for an element/event pair.
  std::optional<QosSpec> lookup(const Element &E,
                                const std::string &EventName) const;
  std::optional<QosSpec> lookup(uint64_t NodeId,
                                const std::string &EventName) const;

  /// Number of annotated (element, event) pairs.
  size_t size() const { return Specs.size(); }
  bool empty() const { return Specs.empty(); }

  /// Drops every annotation (before re-loading a page).
  void clear() { Specs.clear(); }

  /// Rebuilds the registry from a loaded page's stylesheet: collects
  /// every `:QoS` rule's declarations through the cascade and lowers
  /// them. Returns the number of annotations found; malformed
  /// declarations land in \p Diags when non-null.
  size_t loadFromPage(Browser &B, std::vector<std::string> *Diags = nullptr);

  /// Fraction of user-input (element, event) listener pairs in the page
  /// that carry annotations — the "Annotation" column of Table 3.
  /// Counts only mobile-input events (click/scroll/touch*/load).
  double annotatedEventFraction(Browser &B) const;

private:
  using Key = std::pair<uint64_t, std::string>;
  std::map<Key, QosSpec> Specs;
};

} // namespace greenweb

#endif // GREENWEB_GREENWEB_ANNOTATIONREGISTRY_H
