//===- greenweb/PredictiveGovernor.cpp - Learned DVFS governor ------------===//
//
// Part of the GreenWeb reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "greenweb/PredictiveGovernor.h"

#include "browser/Browser.h"
#include "hw/AcmpChip.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>

using namespace greenweb;

PredictiveGovernor::PredictiveGovernor(AnnotationRegistry &Registry,
                                       Params P, Options O)
    : GreenWebRuntime(Registry, P), Opts(std::move(O)) {
  if (Opts.SharedModel) {
    if (Opts.SharedModel->loaded())
      Model = Opts.SharedModel;
    else
      LoadError = "shared model is untrained (no nodes)";
    return;
  }
  if (Opts.ModelPath.empty()) {
    LoadError = "no model configured";
    return;
  }
  std::ifstream In(Opts.ModelPath, std::ios::binary);
  if (!In) {
    LoadError = "cannot open model file: " + Opts.ModelPath;
    return;
  }
  std::ostringstream Buf;
  Buf << In.rdbuf();
  std::string Error;
  if (!DecisionTreeModel::parse(Buf.str(), OwnedModel, &Error)) {
    LoadError = Error;
    return;
  }
  Model = &OwnedModel;
}

std::string PredictiveGovernor::name() const {
  return params().Scenario == UsageScenario::Imperceptible ? "Predictive-I"
                                                           : "Predictive-U";
}

void PredictiveGovernor::attach(Browser &Browser_) {
  GreenWebRuntime::attach(Browser_);
  // The model's levels are indices into this chip's ladder; a model
  // trained against a different ladder shape must not steer this chip.
  LadderMatches = Model && Model->LadderLevels == Ladder.size();
  if (Model && !LadderMatches)
    LoadError = formatString(
        "model ladder (%zu levels) does not match this chip (%zu levels)",
        Model->LadderLevels, Ladder.size());
  PStats.ModelLoaded = LadderMatches;
  Quarantined = false;
  Extractor.reset();
  Boosts.clear();
}

void PredictiveGovernor::onInputDispatched(uint64_t RootId,
                                           const std::string &Type,
                                           Element *Target) {
  if (B)
    Extractor.noteInput(B->chip().simulator().now());
  GreenWebRuntime::onInputDispatched(RootId, Type, Target);
}

void PredictiveGovernor::onFrameReady(const FrameRecord &Frame) {
  // Close the loop before the base class erases completed single
  // events: violations on model-driven frames boost the chosen level,
  // comfortable streaks decay the boost.
  if (B && LadderMatches) {
    std::map<uint64_t, Duration> WorstByRoot;
    for (const MsgLatency &L : Frame.Latencies) {
      Duration &Slot = WorstByRoot[L.Msg.RootId];
      Slot = std::max(Slot, L.Latency);
    }
    for (const auto &[Root, Latency] : WorstByRoot) {
      auto It = ActiveEvents.find(Root);
      if (It == ActiveEvents.end())
        continue;
      const ActiveEvent &Event = It->second;
      Duration Effective = Event.Spec.Type == QosType::Continuous
                               ? Frame.ReadyTime - Frame.BeginTime
                               : Latency;
      if (stats().WatchdogTrips > 0) {
        // Quarantine: the LTM path owns every remaining decision, but
        // keys the model had been serving never finished profiling. A
        // NeedMinProfile key would pay its min-profile frames at the
        // ladder floor right when the environment is at its worst —
        // the exact stall the watchdog exists to prevent. Seed those
        // fits from whatever the floor frames observe instead; the
        // recalibration hair-trigger cleans up any seed the fault
        // window distorted.
        ModelState &State = Models[Event.Key];
        if (State.ModelPhase != Phase::Ready)
          seedModel(State, Event.Spec.Type == QosType::Continuous,
                    Effective, Frame);
        continue;
      }
      if (InFallback)
        continue;
      Feedback &F = Boosts[Event.Key];
      if (F.Suspended) {
        // Suspended keys run on the LTM path with the conservative
        // offset their seed installed. The base loop's own decay wants
        // frames 20% under target, which an accurately seeded fit at a
        // boosted config rarely produces — so the predictive side
        // decays it on any non-violating streak instead, reclaiming
        // the energy once the key proves stable. Violations ratchet
        // the offset back up through the base loop as usual.
        ModelState &State = Models[Event.Key];
        if (Effective <= Event.Target && State.FeedbackOffset > 0) {
          if (++F.SafeStreak >= kDecayStreak) {
            --State.FeedbackOffset;
            F.SafeStreak = 0;
          }
        } else if (Effective > Event.Target) {
          F.SafeStreak = 0;
        }
        continue;
      }
      if (Effective > Event.Target) {
        double Overshoot =
            (Effective - Event.Target).secs() / Event.Target.secs();
        bool AtCap = F.Boost >= kMaxBoost;
        if (Overshoot > kGrossMissFraction ||
            (AtCap && ++F.MaxBoostViolations >= kSuspendStreak)) {
          // The model is out of its depth on this key: suspend it and
          // let the LTM path own the rest of the run. The base class
          // kept profiling the model-driven frames (handleEventFrame
          // sees every frame), so its fit is often Ready already; when
          // it is not, pre-calibrate it from this frame — the frame's
          // truly frequency-independent charge is the fixed term, and
          // every other observed millisecond (execution cycles and
          // queueing behind other frames, both of which speed up with
          // the clock) is converted to equivalent cycles at the config
          // the frame ran at — so the handover spends no profiling
          // frames either way.
          F.Suspended = true;
          ModelState &State = Models[Event.Key];
          if (State.ModelPhase != Phase::Ready)
            seedModel(State, Event.Spec.Type == QosType::Continuous,
                      Effective, Frame);
          ++PStats.KeySuspensions;
          bumpMetric("governor.predictive_suspensions");
        } else if (!AtCap) {
          ++F.Boost;
          ++PStats.FeedbackBoosts;
          bumpMetric("governor.predictive_boosts");
        }
        F.SafeStreak = 0;
      } else if (Effective.secs() < kComfortFraction * Event.Target.secs()) {
        if (++F.SafeStreak >= kDecayStreak) {
          if (F.Boost > 0)
            --F.Boost;
          F.SafeStreak = 0;
        }
      } else {
        F.SafeStreak = 0;
      }
    }
  }
  Extractor.noteFrame(Frame);
  GreenWebRuntime::onFrameReady(Frame);
}

void PredictiveGovernor::seedModel(ModelState &State, bool Continuous,
                                   Duration Effective,
                                   const FrameRecord &Frame) {
  // One-point fit with optimistic attribution: the frame's truly
  // frequency-independent charge is the fixed term, and every other
  // observed millisecond (execution cycles and queueing behind other
  // frames, both of which speed up with the clock) is converted to
  // equivalent cycles at the config the frame ran at — so the handover
  // to the LTM path spends no profiling frames.
  double ScalableSecs = std::max(0.0, (Effective - Frame.FixedCharged).secs());
  State.Model.Independent = Frame.FixedCharged;
  State.Model.Cycles =
      ScalableSecs * B->chip().effectiveHzFor(B->chip().config());
  State.ModelPhase = Phase::Ready;
  // Deliberately no forced recalibration: sending the key back through
  // a min-config profiling frame in the middle of a fault window is
  // worse than any error the one-point fit carries.
  State.ConsecutiveMispredicts = 0;
  // Seeding always follows a failure, so a continuous key's handover
  // opens with the conservatism the LTM feedback loop would have
  // ratcheted up to by now; its rapid frames let the predictive side's
  // non-violating-streak decay reclaim the energy within ~100ms once
  // the key proves stable. Single keys see one frame per interaction —
  // a lingering offset there burns whole frames at an inflated config
  // against a fit that is typically already accurate — so they hand
  // over without it.
  if (Continuous)
    State.FeedbackOffset =
        std::max(State.FeedbackOffset, kSeedFeedbackOffset);
}

std::optional<GreenWebRuntime::Desired>
PredictiveGovernor::predictOverride(const ActiveEvent &Event) {
  if (!LadderMatches || Ladder.empty())
    return std::nullopt;
  // A watchdog trip is the runtime's own signal that the environment
  // has left the distribution the model was trained on (thermal caps,
  // latency spikes, injected noise). From the first trip on, the whole
  // run belongs to the proven LTM + watchdog machinery; a fleet model
  // must never argue with the safety net.
  if (stats().WatchdogTrips > 0) {
    if (!Quarantined) {
      Quarantined = true;
      ++PStats.WatchdogQuarantines;
      bumpMetric("governor.predictive_quarantines");
    }
    return std::nullopt;
  }
  // No frame history yet: the cost features are all zeros, which the
  // training set deliberately excludes. Let the LTM path (max-profile
  // first) take the opening frame.
  if (!Extractor.hasHistory()) {
    ++PStats.ColdStartFallbacks;
    bumpMetric("governor.cold_start_fallbacks");
    return std::nullopt;
  }
  // A key that violated its way through the whole boost range is one
  // the model cannot serve; the LTM path owns it for the rest of the
  // run.
  if (auto It = Boosts.find(Event.Key);
      It != Boosts.end() && It->second.Suspended)
    return std::nullopt;
  // The model key is "tag|type|spec"; the middle field is the event
  // type the feature schema encodes.
  std::vector<std::string_view> Parts = split(Event.Key, '|');
  int Kind = eventKindCode(
      Parts.size() > 1 ? std::string(Parts[1]) : std::string());
  AcmpConfig Cur = B->chip().config();
  DecisionTreeModel::Prediction Pred = Model->predict(Extractor.features(
      B->chip().simulator().now(), Event.Spec.Type == QosType::Continuous,
      Event.Target.millis(), Kind, Cur.Core == CoreKind::Big,
      double(Cur.FreqMHz)));
  if (Pred.Confidence < Opts.ConfidenceThreshold) {
    ++PStats.LowConfidenceFallbacks;
    bumpMetric("governor.low_confidence_fallbacks");
    return std::nullopt;
  }
  int Boost = 0;
  if (auto It = Boosts.find(Event.Key); It != Boosts.end())
    Boost = It->second.Boost;
  int Level = std::clamp(Pred.Level + Boost, 0, int(Ladder.size()) - 1);
  ++PStats.ModelPredictions;
  bumpMetric("governor.model_predictions");
  return Desired{Ladder[size_t(Level)], "model", -1.0, Boost};
}
