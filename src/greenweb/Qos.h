//===- greenweb/Qos.h - QoS abstractions -------------------------*- C++ -*-===//
//
// Part of the GreenWeb reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's two QoS abstractions (Sec. 3):
///
///  * QoS type  - whether user experience is judged by the latency of a
///                single response frame or by every frame of a continuous
///                sequence (Sec. 3.2).
///  * QoS target- the performance level needed for a given experience:
///                the imperceptible target TI and the usable target TU
///                (Sec. 3.3).
///
/// Table 1 defaults: continuous (16.6 ms, 33.3 ms); single/short
/// (100 ms, 300 ms); single/long (1 s, 10 s).
///
//===----------------------------------------------------------------------===//

#ifndef GREENWEB_GREENWEB_QOS_H
#define GREENWEB_GREENWEB_QOS_H

#include "css/CssValues.h"
#include "support/Time.h"

#include <string>

namespace greenweb {

/// The QoS type abstraction.
enum class QosType {
  /// One response frame determines the experience.
  Single,
  /// Every frame in a generated sequence determines the experience.
  Continuous,
};

const char *qosTypeName(QosType Type);

/// A (TI, TU) pair: the imperceptible and usable frame-latency targets.
struct QosTarget {
  Duration Imperceptible;
  Duration Usable;

  bool operator==(const QosTarget &) const = default;
};

/// Table 1 default targets.
QosTarget defaultContinuousTarget(); ///< (16.6 ms, 33.3 ms)
QosTarget defaultSingleShortTarget(); ///< (100 ms, 300 ms)
QosTarget defaultSingleLongTarget();  ///< (1 s, 10 s)

/// A fully-resolved QoS specification for one (element, event) pair.
struct QosSpec {
  QosType Type = QosType::Single;
  QosTarget Target = defaultSingleShortTarget();

  bool operator==(const QosSpec &) const = default;

  /// Renders e.g. "continuous (16.6ms, 33.3ms)".
  std::string str() const;
};

/// The battery-driven usage scenarios of Sec. 7.1.
enum class UsageScenario {
  /// Abundant battery; users expect imperceptible latency (use TI).
  Imperceptible,
  /// Tight battery; users tolerate usable latency (use TU).
  Usable,
};

const char *usageScenarioName(UsageScenario Scenario);

/// The active frame-latency target for a spec under a scenario.
Duration activeTarget(const QosSpec &Spec, UsageScenario Scenario);

/// Lowers a parsed GreenWeb CSS value into a full spec, filling Table 1
/// defaults per the Table 2 semantics (continuous defaults to the
/// continuous targets; `single, short|long` selects the corresponding
/// row; explicit TI/TU override everything).
QosSpec lowerQosValue(const css::QosValue &Value);

} // namespace greenweb

#endif // GREENWEB_GREENWEB_QOS_H
