//===- greenweb/PerfModel.h - DVFS performance/energy model -----*- C++ -*-===//
//
// Part of the GreenWeb reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The frame performance model of Sec. 6.2, based on the classical DVFS
/// analytical model of Xie et al. (Equ. 1 in the paper):
///
///     T = T_independent + N_nonoverlap / f
///
/// The two unknowns are solved from two profiled frame latencies — one
/// at the maximum-performance configuration and one at the minimum —
/// after which latency is predictable at every <core, frequency> tuple.
/// The energy model combines the prediction with the statically profiled
/// power table (PowerModel); the predictor sweeps all configurations and
/// returns the minimum-energy one that meets the QoS target.
///
//===----------------------------------------------------------------------===//

#ifndef GREENWEB_GREENWEB_PERFMODEL_H
#define GREENWEB_GREENWEB_PERFMODEL_H

#include "hw/AcmpChip.h"
#include "support/Time.h"

#include <optional>

namespace greenweb {

/// One profiled observation: a frame latency at a known configuration.
struct LatencyObservation {
  AcmpConfig Config;
  Duration Latency;
};

/// A fitted T = T_ind + N / f_eff model.
struct DvfsModel {
  /// Frequency-independent latency.
  Duration Independent;
  /// Effective cycles that scale with 1/f.
  double Cycles = 0.0;

  /// Predicted frame latency at effective rate \p EffectiveHz.
  Duration predict(double EffectiveHz) const;
};

/// Fits the two-point model from observations at two distinct effective
/// frequencies. Returns nullopt when the observations are degenerate
/// (same effective frequency). Negative solutions are clamped to zero,
/// which happens when measurement noise exceeds the frequency effect.
std::optional<DvfsModel> fitDvfsModel(const AcmpChip &Chip,
                                      const LatencyObservation &AtMax,
                                      const LatencyObservation &AtMin);

/// Result of a configuration-space sweep.
struct ConfigChoice {
  AcmpConfig Config;
  Duration PredictedLatency;
  double PredictedJoules = 0.0;
  /// False when no configuration met the target and the maximum one was
  /// returned as the fallback.
  bool MeetsTarget = true;
};

/// Sweeps every configuration of \p Chip and returns the minimum-energy
/// one whose predicted latency is within \p Target scaled by
/// \p SafetyMargin (e.g. 0.95 keeps 5% headroom). Falls back to the
/// maximum-performance configuration when nothing qualifies.
ConfigChoice chooseMinEnergyConfig(const AcmpChip &Chip,
                                   const DvfsModel &Model, Duration Target,
                                   double SafetyMargin = 1.0);

} // namespace greenweb

#endif // GREENWEB_GREENWEB_PERFMODEL_H
