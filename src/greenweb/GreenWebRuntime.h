//===- greenweb/GreenWebRuntime.h - The GreenWeb runtime ---------*- C++ -*-===//
//
// Part of the GreenWeb reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The GreenWeb runtime of Sec. 6: a QoS-aware governor that consumes
/// the page's GreenWeb annotations and drives the ACMP chip so that each
/// annotated event's frames meet their QoS target with minimal energy.
///
/// Operation per annotated event:
///  1. On input dispatch, look up the (element, event) QoS spec; the
///     active target is TI or TU depending on the usage scenario.
///  2. While the per-(element, event) DVFS model is uncalibrated, run
///     profiling frames: one at the maximum configuration, one at the
///     minimum (the source of the visible QoS violations on single-type
///     events in Fig. 9b), then solve Equ. 1.
///  3. Once calibrated, sweep the configuration space for the
///     minimum-energy configuration meeting the target (Sec. 6.2) and
///     apply it; "single" events are optimized only until their response
///     frame, "continuous" events for every associated frame until the
///     event quiesces (Sec. 6.4).
///  4. Use measured frame latencies as feedback: violations step the
///     configuration up, over-predictions step it down, and repeated
///     mispredictions trigger re-profiling.
///
//===----------------------------------------------------------------------===//

#ifndef GREENWEB_GREENWEB_GREENWEBRUNTIME_H
#define GREENWEB_GREENWEB_GREENWEBRUNTIME_H

#include "browser/FrameTracker.h"
#include "greenweb/AnnotationRegistry.h"
#include "greenweb/Governors.h"
#include "greenweb/PerfModel.h"
#include "greenweb/Qos.h"

#include <map>
#include <optional>
#include <string>

namespace greenweb {

class EnergyMeter;

/// The GreenWeb QoS-aware governor.
class GreenWebRuntime : public Governor, public FrameObserver {
public:
  struct Params {
    /// Battery scenario: selects TI or TU as the active target.
    UsageScenario Scenario = UsageScenario::Imperceptible;
    /// Headroom kept below the target when choosing configurations.
    double SafetyMargin = 0.95;
    /// Relative prediction error above which a frame counts as a
    /// misprediction.
    double MispredictTolerance = 0.50;
    /// Consecutive mispredictions before the model is re-profiled.
    unsigned RecalibrateAfter = 6;
    /// Consecutive comfortably-on-target frames before one feedback
    /// boost level decays (the "opposite adjustment" of Sec. 6.2 for
    /// transient complexity bumps).
    unsigned FeedbackDecayAfter = 10;
    /// Feedback fine-tuning on measured latencies (ablation A1 turns
    /// this off).
    bool EnableFeedback = true;
    /// Mis-annotation defense (Sec. 8): when set, annotation targets
    /// are clamped to be no tighter than the Table 1 defaults for the
    /// annotated QoS type, so an adversarially low target cannot pin
    /// the chip at peak performance.
    bool ClampTargetsToDefaults = false;
    /// UAI energy-budget policy (Sec. 8): once the attached meter shows
    /// this many joules consumed, ClampTargetsToDefaults switches on
    /// automatically.
    std::optional<double> EnergyBudgetJoules;
    /// How long to hold the last configuration after the final active
    /// event quiesces before dropping to the idle configuration.
    /// Prevents migration thrash between back-to-back scroll events.
    Duration IdleHold = Duration::milliseconds(400);
  };

  /// Statistics exposed for the evaluation and ablations.
  struct Stats {
    uint64_t AnnotatedEvents = 0;
    uint64_t UnannotatedEvents = 0;
    uint64_t ProfilingFrames = 0;
    uint64_t PredictedFrames = 0;
    uint64_t FeedbackStepsUp = 0;
    uint64_t FeedbackStepsDown = 0;
    uint64_t Recalibrations = 0;
    uint64_t TargetClampsApplied = 0;
  };

  explicit GreenWebRuntime(AnnotationRegistry &Registry);
  GreenWebRuntime(AnnotationRegistry &Registry, Params P);

  /// --- Governor interface ---
  std::string name() const override;
  void attach(Browser &B) override;
  void detach() override;

  /// Optional energy meter used by the UAI energy-budget defense.
  void setEnergyMeter(const EnergyMeter *Meter) { Meter_ = Meter; }

  /// --- FrameObserver interface ---
  void onInputDispatched(uint64_t RootId, const std::string &Type,
                         Element *Target) override;
  void onFrameReady(const FrameRecord &Frame) override;
  void onEventQuiescent(uint64_t RootId) override;

  const Stats &stats() const { return Counters; }
  const Params &params() const { return P; }

  /// Number of events currently being optimized.
  size_t activeEventCount() const { return ActiveEvents.size(); }

private:
  /// Calibration state of one (element, event) model.
  enum class Phase { NeedMaxProfile, NeedMinProfile, Ready };

  struct ModelState {
    Phase ModelPhase = Phase::NeedMaxProfile;
    LatencyObservation MaxObs;
    DvfsModel Model;
    /// Ladder-level offset applied on top of predictions by feedback.
    int FeedbackOffset = 0;
    unsigned ConsecutiveMispredicts = 0;
    /// Frames in a row that landed comfortably under the target while a
    /// boost was active.
    unsigned SafeStreak = 0;
  };

  struct ActiveEvent {
    uint64_t RootId = 0;
    std::string Key;
    QosSpec Spec;
    Duration Target;
  };

  /// One configuration choice with its provenance; feeds both the chip
  /// and the telemetry decision log.
  struct Desired {
    AcmpConfig Config;
    const char *Reason = "";  ///< "profile_max", "profile_min", "predicted".
    double PredictedMs = -1.0; ///< Model prediction at Config (<0 = n/a).
    int FeedbackOffset = 0;
  };

  std::string modelKey(const Element *Target, const std::string &Type,
                       const QosSpec &Spec) const;
  Duration resolveTarget(const QosSpec &Spec);
  /// The configuration this event wants right now.
  Desired desiredConfigFor(const ActiveEvent &Event);
  /// Telemetry hub reachable through the attached browser's simulator
  /// (nullptr when detached or none is attached).
  Telemetry *telemetry() const;
  /// Mirrors a Stats increment into the telemetry registry.
  void bumpMetric(const char *Name);
  /// Emits a zero-length "decision:<reason>" span on the governor track
  /// so traces and critical-path reports can anchor decision points.
  void recordDecisionSpan(Telemetry &T, const std::string &Reason,
                          int64_t RootId);
  /// Applies the highest-performance desired configuration across all
  /// active events, or the idle (minimum) configuration when none.
  void applyDesiredConfig();
  /// Handles one frame attributed to an active event.
  void handleEventFrame(ActiveEvent &Event, const FrameRecord &Frame,
                        Duration Latency);
  /// Shifts \p Config by \p Levels steps along the config ladder.
  AcmpConfig shiftConfig(const AcmpConfig &Config, int Levels) const;
  void maybeEngageEnergyBudget();

  AnnotationRegistry &Registry;
  Params P;
  Browser *B = nullptr;
  const EnergyMeter *Meter_ = nullptr;
  std::vector<AcmpConfig> Ladder;

  std::map<std::string, ModelState> Models;
  std::map<uint64_t, ActiveEvent> ActiveEvents;
  EventHandle IdleDrop;
  Stats Counters;
};

} // namespace greenweb

#endif // GREENWEB_GREENWEB_GREENWEBRUNTIME_H
