//===- greenweb/GreenWebRuntime.h - The GreenWeb runtime ---------*- C++ -*-===//
//
// Part of the GreenWeb reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The GreenWeb runtime of Sec. 6: a QoS-aware governor that consumes
/// the page's GreenWeb annotations and drives the ACMP chip so that each
/// annotated event's frames meet their QoS target with minimal energy.
///
/// Operation per annotated event:
///  1. On input dispatch, look up the (element, event) QoS spec; the
///     active target is TI or TU depending on the usage scenario.
///  2. While the per-(element, event) DVFS model is uncalibrated, run
///     profiling frames: one at the maximum configuration, one at the
///     minimum (the source of the visible QoS violations on single-type
///     events in Fig. 9b), then solve Equ. 1.
///  3. Once calibrated, sweep the configuration space for the
///     minimum-energy configuration meeting the target (Sec. 6.2) and
///     apply it; "single" events are optimized only until their response
///     frame, "continuous" events for every associated frame until the
///     event quiesces (Sec. 6.4).
///  4. Use measured frame latencies as feedback: violations step the
///     configuration up, over-predictions step it down, and repeated
///     mispredictions trigger re-profiling.
///
//===----------------------------------------------------------------------===//

#ifndef GREENWEB_GREENWEB_GREENWEBRUNTIME_H
#define GREENWEB_GREENWEB_GREENWEBRUNTIME_H

#include "browser/FrameTracker.h"
#include "greenweb/AnnotationRegistry.h"
#include "greenweb/Governors.h"
#include "greenweb/PerfModel.h"
#include "greenweb/Qos.h"

#include <deque>
#include <map>
#include <optional>
#include <string>

namespace greenweb {

class EnergyMeter;

/// The GreenWeb QoS-aware governor.
class GreenWebRuntime : public Governor, public FrameObserver {
public:
  struct Params {
    /// Battery scenario: selects TI or TU as the active target.
    UsageScenario Scenario = UsageScenario::Imperceptible;
    /// Headroom kept below the target when choosing configurations.
    double SafetyMargin = 0.95;
    /// Relative prediction error above which a frame counts as a
    /// misprediction.
    double MispredictTolerance = 0.50;
    /// Consecutive mispredictions before the model is re-profiled.
    unsigned RecalibrateAfter = 6;
    /// Consecutive comfortably-on-target frames before one feedback
    /// boost level decays (the "opposite adjustment" of Sec. 6.2 for
    /// transient complexity bumps).
    unsigned FeedbackDecayAfter = 10;
    /// Feedback fine-tuning on measured latencies (ablation A1 turns
    /// this off).
    bool EnableFeedback = true;
    /// Mis-annotation defense (Sec. 8): when set, annotation targets
    /// are clamped to be no tighter than the Table 1 defaults for the
    /// annotated QoS type, so an adversarially low target cannot pin
    /// the chip at peak performance.
    bool ClampTargetsToDefaults = false;
    /// UAI energy-budget policy (Sec. 8): once the attached meter shows
    /// this many joules consumed, ClampTargetsToDefaults switches on
    /// automatically.
    std::optional<double> EnergyBudgetJoules;
    /// How long to hold the last configuration after the final active
    /// event quiesces before dropping to the idle configuration.
    /// Prevents migration thrash between back-to-back scroll events.
    Duration IdleHold = Duration::milliseconds(400);
    /// Graceful-degradation watchdog: when enabled, sustained
    /// predicted-vs-actual divergence (or repeated violations) trips a
    /// fallback that pins a conservative frequency floor, then
    /// re-engages prediction once the floor has held QoS clean for a
    /// while (calibrated models are kept: a persistent fault re-trips
    /// cheaply instead of forcing a recalibration storm). The defense
    /// against injected hardware/workload faults (docs/ROBUSTNESS.md).
    bool EnableWatchdog = false;
    /// Sliding window of recent calibrated frames the watchdog judges.
    unsigned WatchdogWindow = 8;
    /// Bad frames (mispredicted or violating) within the window that
    /// trip the fallback.
    unsigned WatchdogTripThreshold = 4;
    /// Minimum time the fallback floor is held before re-engagement is
    /// considered. Held long on purpose: most injected faults persist
    /// for seconds, and every premature re-engagement is a fresh burst
    /// of mispredicted frames before the next trip. A re-trip shortly
    /// after re-engagement doubles the effective hold (up to
    /// WatchdogMaxHoldFactor x), so a persistent fault converges to
    /// mostly-pinned operation instead of cycling.
    Duration WatchdogHold = Duration::seconds(3);
    /// Exponential-backoff ceiling on the effective hold, as a multiple
    /// of WatchdogHold.
    unsigned WatchdogMaxHoldFactor = 16;
    /// Ladder position of the fallback floor (0 = idle config, 1 = the
    /// peak config). Defaults to peak: under active faults the model
    /// cannot be trusted, so QoS is preserved at an energy cost.
    double WatchdogFloorPosition = 1.0;
  };

  /// Statistics exposed for the evaluation and ablations.
  struct Stats {
    uint64_t AnnotatedEvents = 0;
    uint64_t UnannotatedEvents = 0;
    uint64_t ProfilingFrames = 0;
    uint64_t PredictedFrames = 0;
    uint64_t FeedbackStepsUp = 0;
    uint64_t FeedbackStepsDown = 0;
    uint64_t Recalibrations = 0;
    uint64_t TargetClampsApplied = 0;
    uint64_t WatchdogTrips = 0;
    uint64_t WatchdogReengages = 0;
    uint64_t WatchdogFloorFrames = 0;
  };

  explicit GreenWebRuntime(AnnotationRegistry &Registry);
  GreenWebRuntime(AnnotationRegistry &Registry, Params P);

  /// --- Governor interface ---
  std::string name() const override;
  void attach(Browser &B) override;
  void detach() override;

  /// Optional energy meter used by the UAI energy-budget defense.
  void setEnergyMeter(const EnergyMeter *Meter) { Meter_ = Meter; }

  /// --- FrameObserver interface ---
  void onInputDispatched(uint64_t RootId, const std::string &Type,
                         Element *Target) override;
  void onFrameReady(const FrameRecord &Frame) override;
  void onEventQuiescent(uint64_t RootId) override;

  const Stats &stats() const { return Counters; }
  const Params &params() const { return P; }

  /// Number of events currently being optimized.
  size_t activeEventCount() const { return ActiveEvents.size(); }

protected:
  /// Calibration state of one (element, event) model.
  enum class Phase { NeedMaxProfile, NeedMinProfile, Ready };

  struct ModelState {
    Phase ModelPhase = Phase::NeedMaxProfile;
    LatencyObservation MaxObs;
    DvfsModel Model;
    /// Ladder-level offset applied on top of predictions by feedback.
    int FeedbackOffset = 0;
    unsigned ConsecutiveMispredicts = 0;
    /// Frames in a row that landed comfortably under the target while a
    /// boost was active.
    unsigned SafeStreak = 0;
  };

  struct ActiveEvent {
    uint64_t RootId = 0;
    std::string Key;
    QosSpec Spec;
    Duration Target;
  };

  /// One configuration choice with its provenance; feeds both the chip
  /// and the telemetry decision log.
  struct Desired {
    AcmpConfig Config;
    const char *Reason = "";  ///< "profile_max", "profile_min", "predicted".
    double PredictedMs = -1.0; ///< Model prediction at Config (<0 = n/a).
    int FeedbackOffset = 0;
  };

  /// Extension point for derived governors (the PredictiveGovernor):
  /// consulted first in desiredConfigFor; returning a value bypasses
  /// the profile/predict state machine for this decision while keeping
  /// everything else — watchdog, idle-hold, telemetry decision spans,
  /// max-across-events arbitration — identical. Return std::nullopt to
  /// defer to the LTM path.
  virtual std::optional<Desired> predictOverride(const ActiveEvent &Event) {
    (void)Event;
    return std::nullopt;
  }

  std::string modelKey(const Element *Target, const std::string &Type,
                       const QosSpec &Spec) const;
  Duration resolveTarget(const QosSpec &Spec);
  /// The configuration this event wants right now.
  Desired desiredConfigFor(const ActiveEvent &Event);
  /// Telemetry hub reachable through the attached browser's simulator
  /// (nullptr when detached or none is attached).
  Telemetry *telemetry() const;
  /// Mirrors a Stats increment into the telemetry registry.
  void bumpMetric(const char *Name);
  /// Emits a zero-length "decision:<reason>" span on the governor track
  /// so traces and critical-path reports can anchor decision points.
  void recordDecisionSpan(Telemetry &T, const std::string &Reason,
                          int64_t RootId);
  /// Applies the highest-performance desired configuration across all
  /// active events, or the idle (minimum) configuration when none.
  void applyDesiredConfig();
  /// Handles one frame attributed to an active event.
  void handleEventFrame(ActiveEvent &Event, const FrameRecord &Frame,
                        Duration Latency);
  /// Shifts \p Config by \p Levels steps along the config ladder.
  AcmpConfig shiftConfig(const AcmpConfig &Config, int Levels) const;
  void maybeEngageEnergyBudget();

  /// --- Watchdog (see Params::EnableWatchdog) ---
  AcmpConfig watchdogFloorConfig() const;
  /// Feeds one frame verdict into the sliding window; may trip the
  /// fallback. Call only after all per-frame model state access — a
  /// trip resets per-model feedback state.
  void noteWatchdogFrame(bool Bad);
  void tripWatchdog();
  void maybeReengageWatchdog();

  AnnotationRegistry &Registry;
  Params P;
  Browser *B = nullptr;
  const EnergyMeter *Meter_ = nullptr;
  std::vector<AcmpConfig> Ladder;

  std::map<std::string, ModelState> Models;
  std::map<uint64_t, ActiveEvent> ActiveEvents;
  EventHandle IdleDrop;
  Stats Counters;

  /// Watchdog state: recent frame verdicts (true = bad). In normal
  /// operation "bad" means mispredicted-or-violating; during fallback
  /// it means violating (prediction is suspended there).
  std::deque<bool> WatchdogRecent;
  bool InFallback = false;
  TimePoint FallbackUntil;
  /// Effective hold with backoff applied (see Params::WatchdogHold).
  Duration CurrentHold = Duration::zero();
  TimePoint LastReengage;
  bool HasReengaged = false;
};

} // namespace greenweb

#endif // GREENWEB_GREENWEB_GREENWEBRUNTIME_H
