//===- greenweb/Features.cpp - Learned-governor feature pipeline ----------===//
//
// Part of the GreenWeb reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "greenweb/Features.h"

#include "dom/Dom.h"
#include "greenweb/AnnotationRegistry.h"
#include "greenweb/Governors.h"
#include "hw/AcmpChip.h"
#include "support/Json.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace greenweb;

//===----------------------------------------------------------------------===//
// Feature schema
//===----------------------------------------------------------------------===//

const std::array<const char *, kNumFeatures> &greenweb::featureNames() {
  static const std::array<const char *, kNumFeatures> Names = {
      "event_rate_hz",     "prev_frame_mcycles", "ewma_frame_mcycles",
      "prev_frame_fixed_ms", "is_continuous",    "target_ms",
      "event_kind",        "cur_is_big",         "cur_freq_mhz",
  };
  return Names;
}

int greenweb::eventKindCode(const std::string &Type) {
  if (Type == events::Click)
    return 0;
  if (Type == events::Scroll)
    return 1;
  if (Type == events::TouchMove)
    return 2;
  if (Type == events::Load)
    return 3;
  if (Type == events::TouchStart || Type == events::TouchEnd)
    return 4;
  return 5;
}

//===----------------------------------------------------------------------===//
// FeatureExtractor
//===----------------------------------------------------------------------===//

void FeatureExtractor::noteInput(TimePoint Now) {
  InputTimes.push_back(Now);
  Duration Window = Duration::seconds(1) * kRateWindowSecs;
  while (!InputTimes.empty() && Now - InputTimes.front() > Window)
    InputTimes.pop_front();
}

void FeatureExtractor::noteFrame(const FrameRecord &Frame) {
  PrevMcycles = Frame.CyclesCharged / 1e6;
  PrevFixedMs = Frame.FixedCharged.millis();
  EwmaMcycles = SeenFrame
                    ? kEwmaAlpha * PrevMcycles + (1.0 - kEwmaAlpha) * EwmaMcycles
                    : PrevMcycles;
  SeenFrame = true;
}

void FeatureExtractor::reset() {
  InputTimes.clear();
  PrevMcycles = EwmaMcycles = PrevFixedMs = 0.0;
  SeenFrame = false;
}

std::array<double, kNumFeatures>
FeatureExtractor::features(TimePoint Now, bool Continuous, double TargetMs,
                           int EventKind, bool CurIsBig,
                           double CurFreqMHz) const {
  // Count only inputs still inside the trailing window; entries age out
  // lazily in noteInput, so stale fronts may linger here.
  Duration Window = Duration::seconds(1) * kRateWindowSecs;
  size_t Recent = 0;
  for (TimePoint T : InputTimes)
    if (Now - T <= Window)
      ++Recent;
  return {double(Recent) / kRateWindowSecs,
          PrevMcycles,
          EwmaMcycles,
          PrevFixedMs,
          Continuous ? 1.0 : 0.0,
          TargetMs,
          double(EventKind),
          CurIsBig ? 1.0 : 0.0,
          CurFreqMHz};
}

//===----------------------------------------------------------------------===//
// Label generation
//===----------------------------------------------------------------------===//

int greenweb::bestLadderLevel(const AcmpChip &Chip,
                              const std::vector<AcmpConfig> &Ladder,
                              double Cycles, Duration Fixed, Duration Target,
                              double SafetyMargin) {
  assert(!Ladder.empty() && "label sweep over an empty ladder");
  const PowerModel &Power = Chip.powerModel();
  double Budget = Target.secs() * SafetyMargin;
  int Best = int(Ladder.size()) - 1;
  double BestJoules = -1.0;
  for (size_t I = 0; I < Ladder.size(); ++I) {
    const AcmpConfig &C = Ladder[I];
    double Latency = Fixed.secs() + Cycles / Chip.effectiveHzFor(C);
    if (Latency > Budget)
      continue;
    double Joules =
        Power.clusterPower(C.Core, C.FreqMHz, /*BusyCores=*/1) * Latency;
    if (BestJoules < 0.0 || Joules < BestJoules) {
      BestJoules = Joules;
      Best = int(I);
    }
  }
  return Best;
}

//===----------------------------------------------------------------------===//
// Feature table (JSONL)
//===----------------------------------------------------------------------===//

std::string greenweb::featureHeaderLine(size_t LadderLevels) {
  std::string Out = formatString(
      "{\"kind\":\"feature_header\",\"schema\":1,\"ladder_levels\":%zu,"
      "\"safety_margin\":%.17g,\"features\":[",
      LadderLevels, FeatureProbe::kLabelSafetyMargin);
  for (size_t I = 0; I < kNumFeatures; ++I) {
    if (I)
      Out += ",";
    Out += formatString("\"%s\"", featureNames()[I]);
  }
  Out += "]}";
  return Out;
}

std::string greenweb::featureRowLine(const FeatureRow &Row,
                                     const std::string &App,
                                     const std::string &Governor,
                                     uint64_t Seed) {
  std::string Out = formatString(
      "{\"kind\":\"feature_row\",\"app\":\"%s\",\"governor\":\"%s\","
      "\"seed\":%llu,\"f\":[",
      jsonEscape(App).c_str(), jsonEscape(Governor).c_str(),
      static_cast<unsigned long long>(Seed));
  for (size_t I = 0; I < kNumFeatures; ++I) {
    if (I)
      Out += ",";
    Out += formatString("%.17g", Row.F[I]);
  }
  Out += formatString("],\"label\":%d}", Row.Label);
  return Out;
}

bool FeatureTable::parse(const std::string &Text, FeatureTable &Out,
                         std::string *Error) {
  auto Fail = [&](const std::string &Msg) {
    if (Error)
      *Error = Msg;
    return false;
  };
  FeatureTable T;
  bool SawHeader = false;
  size_t LineNo = 0;
  for (std::string_view Line : split(Text, '\n')) {
    ++LineNo;
    std::string_view Trimmed = trim(Line);
    if (Trimmed.empty())
      continue;
    std::optional<json::Value> V = json::parse(Trimmed);
    if (!V || !V->isObject())
      return Fail(formatString("line %zu is not a JSON object", LineNo));
    std::string Kind = V->stringOr("kind", "");
    if (Kind == "meta")
      continue;
    if (Kind == "feature_header") {
      if (int(V->numberOr("schema", 0)) != 1)
        return Fail("unsupported feature-table schema");
      const json::Value *Names = V->get("features");
      if (!Names || !Names->isArray() ||
          Names->Arr.size() != kNumFeatures)
        return Fail("feature-table header has a foreign feature list");
      for (size_t I = 0; I < kNumFeatures; ++I)
        if (!Names->Arr[I].isString() ||
            Names->Arr[I].Str != featureNames()[I])
          return Fail("feature-table header has a foreign feature list");
      T.LadderLevels = size_t(V->numberOr("ladder_levels", 0));
      if (T.LadderLevels == 0)
        return Fail("feature-table header has no ladder_levels");
      SawHeader = true;
      continue;
    }
    if (Kind != "feature_row")
      return Fail(formatString("line %zu is not a feature table record",
                               LineNo));
    if (!SawHeader)
      return Fail("feature rows before the feature_header line");
    const json::Value *F = V->get("f");
    if (!F || !F->isArray() || F->Arr.size() != kNumFeatures)
      return Fail(formatString("line %zu has a malformed feature vector",
                               LineNo));
    FeatureRow Row;
    for (size_t I = 0; I < kNumFeatures; ++I) {
      if (!F->Arr[I].isNumber())
        return Fail(formatString("line %zu has a non-numeric feature",
                                 LineNo));
      Row.F[I] = F->Arr[I].Num;
    }
    Row.Label = int(V->numberOr("label", -1));
    if (Row.Label < 0 || size_t(Row.Label) >= T.LadderLevels)
      return Fail(formatString("line %zu labels outside the ladder",
                               LineNo));
    T.Rows.push_back(Row);
  }
  if (!SawHeader)
    return Fail("not a feature table (no feature_header line)");
  Out = std::move(T);
  return true;
}

//===----------------------------------------------------------------------===//
// DecisionTreeModel
//===----------------------------------------------------------------------===//

DecisionTreeModel::Prediction
DecisionTreeModel::predict(const std::array<double, kNumFeatures> &F) const {
  assert(loaded() && "predict on an untrained model");
  size_t I = 0;
  while (Nodes[I].Feature >= 0)
    I = size_t(F[size_t(Nodes[I].Feature)] < Nodes[I].Threshold
                   ? Nodes[I].Left
                   : Nodes[I].Right);
  return {Nodes[I].Leaf, Nodes[I].Confidence};
}

std::string DecisionTreeModel::toJson() const {
  std::string Out = formatString(
      "{\"kind\":\"gw_model\",\"schema\":1,\"ladder_levels\":%zu,"
      "\"max_depth\":%u,\"min_samples_leaf\":%u,\"rows\":%llu,"
      "\"features\":[",
      LadderLevels, MaxDepth, MinSamplesLeaf,
      static_cast<unsigned long long>(TrainedRows));
  for (size_t I = 0; I < kNumFeatures; ++I) {
    if (I)
      Out += ",";
    Out += formatString("\"%s\"", featureNames()[I]);
  }
  Out += "],\"nodes\":[";
  for (size_t I = 0; I < Nodes.size(); ++I) {
    const TreeNode &N = Nodes[I];
    if (I)
      Out += ",";
    if (N.Feature >= 0)
      Out += formatString(
          "{\"split\":%d,\"threshold\":%.17g,\"left\":%d,\"right\":%d}",
          N.Feature, N.Threshold, N.Left, N.Right);
    else
      Out += formatString(
          "{\"leaf\":%d,\"confidence\":%.17g,\"count\":%llu}", N.Leaf,
          N.Confidence, static_cast<unsigned long long>(N.Count));
  }
  Out += "]}";
  return Out;
}

bool DecisionTreeModel::parse(const std::string &Text,
                              DecisionTreeModel &Out, std::string *Error) {
  auto Fail = [&](const std::string &Msg) {
    if (Error)
      *Error = Msg;
    return false;
  };
  std::string ParseError;
  std::optional<json::Value> Doc = json::parse(Text, &ParseError);
  if (!Doc || !Doc->isObject())
    return Fail("model is not a JSON object" +
                (ParseError.empty() ? "" : " (" + ParseError + ")"));
  if (Doc->stringOr("kind", "") != "gw_model")
    return Fail("not a gw-train model (kind mismatch)");
  if (int(Doc->numberOr("schema", 0)) != 1)
    return Fail(formatString("unsupported model schema %d",
                             int(Doc->numberOr("schema", 0))));
  const json::Value *Names = Doc->get("features");
  if (!Names || !Names->isArray() || Names->Arr.size() != kNumFeatures)
    return Fail("model feature schema mismatch");
  for (size_t I = 0; I < kNumFeatures; ++I)
    if (!Names->Arr[I].isString() ||
        Names->Arr[I].Str != featureNames()[I])
      return Fail("model feature schema mismatch");

  DecisionTreeModel M;
  M.LadderLevels = size_t(Doc->numberOr("ladder_levels", 0));
  if (M.LadderLevels == 0)
    return Fail("model has no ladder_levels");
  M.MaxDepth = unsigned(Doc->numberOr("max_depth", 0));
  M.MinSamplesLeaf = unsigned(Doc->numberOr("min_samples_leaf", 0));
  M.TrainedRows = uint64_t(Doc->numberOr("rows", 0));

  const json::Value *Nodes = Doc->get("nodes");
  if (!Nodes || !Nodes->isArray() || Nodes->Arr.empty())
    return Fail("model has no nodes");
  int Count = int(Nodes->Arr.size());
  for (int I = 0; I < Count; ++I) {
    const json::Value &N = Nodes->Arr[size_t(I)];
    if (!N.isObject())
      return Fail(formatString("model node %d is malformed", I));
    TreeNode T;
    if (const json::Value *Split = N.get("split")) {
      if (!Split->isNumber())
        return Fail(formatString("model node %d is malformed", I));
      T.Feature = int(Split->Num);
      T.Threshold = N.numberOr("threshold", 0.0);
      T.Left = int(N.numberOr("left", -1));
      T.Right = int(N.numberOr("right", -1));
      // Children must point strictly forward: serialization is
      // pre-order, and the constraint rules out traversal cycles.
      if (T.Feature < 0 || size_t(T.Feature) >= kNumFeatures ||
          T.Left <= I || T.Left >= Count || T.Right <= I ||
          T.Right >= Count)
        return Fail(formatString("model node %d is malformed", I));
    } else {
      T.Feature = -1;
      T.Leaf = int(N.numberOr("leaf", -1));
      T.Confidence = N.numberOr("confidence", 0.0);
      T.Count = uint64_t(N.numberOr("count", 0));
      if (T.Leaf < 0 || size_t(T.Leaf) >= M.LadderLevels ||
          T.Confidence < 0.0 || T.Confidence > 1.0)
        return Fail(formatString("model node %d is malformed", I));
    }
    M.Nodes.push_back(T);
  }
  Out = std::move(M);
  return true;
}

//===----------------------------------------------------------------------===//
// CART training
//===----------------------------------------------------------------------===//

namespace {

double giniOf(const std::vector<uint64_t> &Counts, uint64_t Total) {
  if (Total == 0)
    return 0.0;
  double Sum = 0.0;
  for (uint64_t C : Counts) {
    double P = double(C) / double(Total);
    Sum += P * P;
  }
  return 1.0 - Sum;
}

struct SplitChoice {
  bool Found = false;
  int Feature = -1;
  double Threshold = 0.0;
  double Impurity = 0.0;
};

/// Exhaustive deterministic split search over \p Rows[Index...]: every
/// feature, every boundary between distinct adjacent values. Ties break
/// toward the lower feature index, then the lower threshold.
SplitChoice findBestSplit(const std::vector<FeatureRow> &Rows,
                          const std::vector<size_t> &Index,
                          size_t LadderLevels, unsigned MinSamplesLeaf) {
  SplitChoice Best;
  const size_t N = Index.size();
  std::vector<size_t> Order(Index);
  std::vector<uint64_t> LeftCounts(LadderLevels), RightCounts(LadderLevels);
  for (size_t F = 0; F < kNumFeatures; ++F) {
    // Stable sort keyed on the feature value only: equal values keep
    // canonical row order, so the sweep is input-order invariant.
    std::stable_sort(Order.begin(), Order.end(),
                     [&Rows, F](size_t A, size_t B) {
                       return Rows[A].F[F] < Rows[B].F[F];
                     });
    std::fill(LeftCounts.begin(), LeftCounts.end(), 0);
    std::fill(RightCounts.begin(), RightCounts.end(), 0);
    for (size_t I : Order)
      ++RightCounts[size_t(Rows[I].Label)];
    for (size_t I = 0; I + 1 < N; ++I) {
      size_t Row = Order[I];
      ++LeftCounts[size_t(Rows[Row].Label)];
      --RightCounts[size_t(Rows[Row].Label)];
      double Lo = Rows[Row].F[F];
      double Hi = Rows[Order[I + 1]].F[F];
      if (!(Lo < Hi))
        continue; // No boundary between equal values.
      uint64_t NL = I + 1, NR = N - NL;
      if (NL < MinSamplesLeaf || NR < MinSamplesLeaf)
        continue;
      double Impurity = (double(NL) * giniOf(LeftCounts, NL) +
                         double(NR) * giniOf(RightCounts, NR)) /
                        double(N);
      double Threshold = Lo + (Hi - Lo) / 2.0;
      if (!Best.Found || Impurity < Best.Impurity ||
          (Impurity == Best.Impurity &&
           (int(F) < Best.Feature ||
            (int(F) == Best.Feature && Threshold < Best.Threshold)))) {
        Best.Found = true;
        Best.Feature = int(F);
        Best.Threshold = Threshold;
        Best.Impurity = Impurity;
      }
    }
  }
  return Best;
}

struct TreeBuilder {
  const std::vector<FeatureRow> &Rows;
  size_t LadderLevels;
  TrainOptions Opts;
  std::vector<TreeNode> Nodes;

  int makeLeaf(const std::vector<size_t> &Index) {
    std::vector<uint64_t> Counts(LadderLevels, 0);
    for (size_t I : Index)
      ++Counts[size_t(Rows[I].Label)];
    // Majority label; ties break toward the lower ladder level.
    size_t Best = 0;
    for (size_t L = 1; L < LadderLevels; ++L)
      if (Counts[L] > Counts[Best])
        Best = L;
    TreeNode Leaf;
    Leaf.Feature = -1;
    Leaf.Leaf = int(Best);
    Leaf.Count = Index.size();
    Leaf.Confidence =
        Index.empty() ? 0.0
                      : double(Counts[Best]) / double(Index.size());
    Nodes.push_back(Leaf);
    return int(Nodes.size()) - 1;
  }

  int build(const std::vector<size_t> &Index, unsigned Depth) {
    bool Pure = true;
    for (size_t I = 1; I < Index.size(); ++I)
      if (Rows[Index[I]].Label != Rows[Index[0]].Label) {
        Pure = false;
        break;
      }
    if (Pure || Depth >= Opts.MaxDepth ||
        Index.size() < 2 * size_t(Opts.MinSamplesLeaf))
      return makeLeaf(Index);
    double Parent = [&] {
      std::vector<uint64_t> Counts(LadderLevels, 0);
      for (size_t I : Index)
        ++Counts[size_t(Rows[I].Label)];
      return giniOf(Counts, Index.size());
    }();
    SplitChoice Split =
        findBestSplit(Rows, Index, LadderLevels, Opts.MinSamplesLeaf);
    if (!Split.Found || Parent - Split.Impurity <= 1e-12)
      return makeLeaf(Index);

    std::vector<size_t> Left, Right;
    for (size_t I : Index)
      (Rows[I].F[size_t(Split.Feature)] < Split.Threshold ? Left : Right)
          .push_back(I);

    // Pre-order: parent, then the whole left subtree, then the right.
    TreeNode Node;
    Node.Feature = Split.Feature;
    Node.Threshold = Split.Threshold;
    Node.Count = Index.size();
    Nodes.push_back(Node);
    int Self = int(Nodes.size()) - 1;
    Nodes[size_t(Self)].Left = build(Left, Depth + 1);
    Nodes[size_t(Self)].Right = build(Right, Depth + 1);
    return Self;
  }
};

} // namespace

DecisionTreeModel greenweb::trainDecisionTree(std::vector<FeatureRow> Rows,
                                              size_t LadderLevels,
                                              const TrainOptions &Opts) {
  assert(LadderLevels > 0 && "training against an empty ladder");
  for (const FeatureRow &R : Rows) {
    (void)R;
    assert(R.Label >= 0 && size_t(R.Label) < LadderLevels &&
           "row labels outside the ladder");
  }
  // Canonical order first: training is then invariant to the input's
  // row order (shuffled fleets, resumed exports, merged shards).
  std::sort(Rows.begin(), Rows.end(),
            [](const FeatureRow &A, const FeatureRow &B) {
              for (size_t I = 0; I < kNumFeatures; ++I)
                if (A.F[I] != B.F[I])
                  return A.F[I] < B.F[I];
              return A.Label < B.Label;
            });

  DecisionTreeModel M;
  M.LadderLevels = LadderLevels;
  M.MaxDepth = Opts.MaxDepth;
  M.MinSamplesLeaf = std::max(1u, Opts.MinSamplesLeaf);
  M.TrainedRows = Rows.size();
  if (Rows.empty())
    return M; // Untrained: no nodes; callers check loaded().

  TreeBuilder Builder{Rows, LadderLevels,
                      TrainOptions{Opts.MaxDepth,
                                   std::max(1u, Opts.MinSamplesLeaf)},
                      {}};
  std::vector<size_t> All(Rows.size());
  for (size_t I = 0; I < Rows.size(); ++I)
    All[I] = I;
  Builder.build(All, 0);
  M.Nodes = std::move(Builder.Nodes);
  return M;
}

//===----------------------------------------------------------------------===//
// FeatureProbe
//===----------------------------------------------------------------------===//

FeatureProbe::FeatureProbe(const AnnotationRegistry &Registry,
                           AcmpChip &Chip, UsageScenario Scenario,
                           std::vector<FeatureRow> &Out)
    : Registry(Registry), Chip(Chip), Scenario(Scenario), Out(Out),
      Ladder(buildConfigLadder(Chip)) {}

void FeatureProbe::onInputDispatched(uint64_t RootId,
                                     const std::string &Type,
                                     Element *Target) {
  Extractor.noteInput(Chip.simulator().now());
  std::optional<QosSpec> Spec =
      Target ? Registry.lookup(*Target, Type) : std::nullopt;
  if (!Spec)
    return;
  Active A;
  A.Continuous = Spec->Type == QosType::Continuous;
  A.Target = activeTarget(*Spec, Scenario);
  A.Kind = eventKindCode(Type);
  ActiveRoots[RootId] = A;
}

void FeatureProbe::onFrameReady(const FrameRecord &Frame) {
  // One row per annotated root contributing to this frame: the feature
  // vector as it stood *before* the frame, labeled with the cheapest
  // ladder level that would have met the root's target given the
  // frame's ground-truth cost.
  std::map<uint64_t, bool> Roots;
  for (const MsgLatency &L : Frame.Latencies)
    Roots[L.Msg.RootId] = true;

  TimePoint Now = Chip.simulator().now();
  AcmpConfig Cur = Chip.config();
  std::vector<uint64_t> SinglesDone;
  for (const auto &[Root, Unused] : Roots) {
    (void)Unused;
    auto It = ActiveRoots.find(Root);
    if (It == ActiveRoots.end())
      continue;
    // Cold-start frames carry all-zero cost features but wildly varying
    // labels (the first frame can be a trivial click or a full page
    // load); exporting them teaches the tree to predict from nothing.
    // The serving governor declines these too, so skipping them also
    // removes train/serve skew.
    if (!Extractor.hasHistory()) {
      if (!It->second.Continuous)
        SinglesDone.push_back(Root);
      continue;
    }
    const Active &A = It->second;
    FeatureRow Row;
    Row.F = Extractor.features(Now, A.Continuous, A.Target.millis(),
                               A.Kind, Cur.Core == CoreKind::Big,
                               double(Cur.FreqMHz));
    Row.Label =
        bestLadderLevel(Chip, Ladder, Frame.CyclesCharged,
                        Frame.FixedCharged, A.Target, kLabelSafetyMargin);
    Out.push_back(Row);
    if (!A.Continuous)
      SinglesDone.push_back(Root);
  }
  for (uint64_t Root : SinglesDone)
    ActiveRoots.erase(Root);
  Extractor.noteFrame(Frame);
}

void FeatureProbe::onEventQuiescent(uint64_t RootId) {
  ActiveRoots.erase(RootId);
}
