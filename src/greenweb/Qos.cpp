//===- greenweb/Qos.cpp - QoS abstractions --------------------------------------===//
//
// Part of the GreenWeb reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "greenweb/Qos.h"

#include "support/StringUtils.h"

using namespace greenweb;

const char *greenweb::qosTypeName(QosType Type) {
  return Type == QosType::Continuous ? "continuous" : "single";
}

QosTarget greenweb::defaultContinuousTarget() {
  // 60 FPS imperceptible, 30 FPS usable (Sec. 3.3).
  return {Duration::fromMillis(16.6), Duration::fromMillis(33.3)};
}

QosTarget greenweb::defaultSingleShortTarget() {
  // 100 ms feels instant; 300 ms is the not-working threshold.
  return {Duration::milliseconds(100), Duration::milliseconds(300)};
}

QosTarget greenweb::defaultSingleLongTarget() {
  // 1 s keeps the train of thought; 10 s loses the user.
  return {Duration::seconds(1), Duration::seconds(10)};
}

std::string QosSpec::str() const {
  return formatString("%s (%s, %s)", qosTypeName(Type),
                      Target.Imperceptible.str().c_str(),
                      Target.Usable.str().c_str());
}

const char *greenweb::usageScenarioName(UsageScenario Scenario) {
  return Scenario == UsageScenario::Imperceptible ? "imperceptible"
                                                  : "usable";
}

Duration greenweb::activeTarget(const QosSpec &Spec,
                                UsageScenario Scenario) {
  return Scenario == UsageScenario::Imperceptible ? Spec.Target.Imperceptible
                                                  : Spec.Target.Usable;
}

QosSpec greenweb::lowerQosValue(const css::QosValue &Value) {
  QosSpec Spec;
  if (Value.Kind == css::QosValueKind::Continuous) {
    Spec.Type = QosType::Continuous;
    Spec.Target = defaultContinuousTarget();
  } else {
    Spec.Type = QosType::Single;
    Spec.Target = Value.LongDuration.value_or(false)
                      ? defaultSingleLongTarget()
                      : defaultSingleShortTarget();
  }
  if (Value.Ti && Value.Tu)
    Spec.Target = {*Value.Ti, *Value.Tu};
  return Spec;
}
