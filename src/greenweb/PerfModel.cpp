//===- greenweb/PerfModel.cpp - DVFS performance/energy model ------------------===//
//
// Part of the GreenWeb reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "greenweb/PerfModel.h"

#include <algorithm>
#include <cmath>

using namespace greenweb;

Duration DvfsModel::predict(double EffectiveHz) const {
  return Independent + Duration::fromSeconds(Cycles / EffectiveHz);
}

std::optional<DvfsModel>
greenweb::fitDvfsModel(const AcmpChip &Chip, const LatencyObservation &AtMax,
                       const LatencyObservation &AtMin) {
  double HzMax = Chip.effectiveHzFor(AtMax.Config);
  double HzMin = Chip.effectiveHzFor(AtMin.Config);
  if (HzMax == HzMin)
    return std::nullopt;

  // T1 = Tind + N/HzMax ; T2 = Tind + N/HzMin.
  double T1 = AtMax.Latency.secs();
  double T2 = AtMin.Latency.secs();
  double N = (T2 - T1) / (1.0 / HzMin - 1.0 / HzMax);
  N = std::max(0.0, N);
  double Tind = std::max(0.0, T1 - N / HzMax);

  DvfsModel Model;
  Model.Independent = Duration::fromSeconds(Tind);
  Model.Cycles = N;
  return Model;
}

ConfigChoice greenweb::chooseMinEnergyConfig(const AcmpChip &Chip,
                                             const DvfsModel &Model,
                                             Duration Target,
                                             double SafetyMargin) {
  const PowerModel &Power = Chip.powerModel();
  Duration Budget = Target * SafetyMargin;

  std::optional<ConfigChoice> Best;
  for (const AcmpConfig &Config : Chip.spec().allConfigs()) {
    Duration Pred = Model.predict(Chip.effectiveHzFor(Config));
    // Per-frame energy with one core active for the frame's duration;
    // this mirrors the paper's E = P(c, f) * T_pred sweep.
    double Joules =
        Power.clusterPower(Config.Core, Config.FreqMHz, 1) * Pred.secs();
    if (Pred > Budget)
      continue;
    if (!Best || Joules < Best->PredictedJoules)
      Best = ConfigChoice{Config, Pred, Joules, true};
  }
  if (Best)
    return *Best;

  // Nothing meets the target: run flat out.
  AcmpConfig Max = Chip.spec().maxConfig();
  Duration Pred = Model.predict(Chip.effectiveHzFor(Max));
  double Joules = Power.clusterPower(Max.Core, Max.FreqMHz, 1) * Pred.secs();
  return {Max, Pred, Joules, false};
}
