//===- greenweb/PredictiveGovernor.h - Learned DVFS governor ----*- C++ -*-===//
//
// Part of the GreenWeb reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The PredictiveGovernor: the GreenWeb runtime with its per-decision
/// config choice replaced by a fleet-trained decision tree (Yuan et
/// al.). Where the LTM runtime spends two profiling frames per
/// (element, event) model before it can predict — the visible QoS
/// violations of Fig. 9b — the predictive governor answers from frame
/// zero using a model trained offline on fleet telemetry.
///
/// Everything around the decision is inherited unchanged: event
/// lifetime bookkeeping, max-across-events arbitration, idle-hold, the
/// graceful-degradation watchdog, telemetry decision spans. When the
/// model is missing, fails validation, or answers below the confidence
/// threshold, predictOverride declines and the decision falls through
/// to the full LTM profile/predict path — degraded operation is exactly
/// the proven baseline, never something weaker.
///
//===----------------------------------------------------------------------===//

#ifndef GREENWEB_GREENWEB_PREDICTIVEGOVERNOR_H
#define GREENWEB_GREENWEB_PREDICTIVEGOVERNOR_H

#include "greenweb/Features.h"
#include "greenweb/GreenWebRuntime.h"

namespace greenweb {

/// GreenWebRuntime whose decisions come from a trained model first.
class PredictiveGovernor : public GreenWebRuntime {
public:
  struct Options {
    /// Model JSON to load; empty means "use SharedModel".
    std::string ModelPath;
    /// Pre-parsed model (not owned); outlives the governor. Takes
    /// precedence over ModelPath when set.
    const DecisionTreeModel *SharedModel = nullptr;
    /// Leaf vote share below which the model's answer is discarded and
    /// the LTM path decides instead. A prediction at exactly the
    /// threshold is used (>= semantics).
    double ConfidenceThreshold = 0.6;
  };

  struct PredictiveStats {
    uint64_t ModelPredictions = 0;
    uint64_t LowConfidenceFallbacks = 0;
    uint64_t ColdStartFallbacks = 0;
    uint64_t FeedbackBoosts = 0;
    uint64_t KeySuspensions = 0;
    /// Runs where a watchdog trip permanently benched the model.
    uint64_t WatchdogQuarantines = 0;
    bool ModelLoaded = false;
  };

  PredictiveGovernor(AnnotationRegistry &Registry, Params P, Options O);

  std::string name() const override;
  void attach(Browser &B) override;

  void onInputDispatched(uint64_t RootId, const std::string &Type,
                         Element *Target) override;
  void onFrameReady(const FrameRecord &Frame) override;

  const PredictiveStats &predictiveStats() const { return PStats; }
  /// Why the model is unusable ("" when loaded and valid).
  const std::string &modelError() const { return LoadError; }

protected:
  std::optional<Desired> predictOverride(const ActiveEvent &Event) override;

  /// Pre-calibrates a key's DVFS fit from one observed frame so the
  /// handover to the LTM path spends no profiling frames. Continuous
  /// keys additionally open with a conservative feedback offset (see
  /// kSeedFeedbackOffset).
  void seedModel(ModelState &State, bool Continuous, Duration Effective,
                 const FrameRecord &Frame);

private:
  /// Near-misses nudge the level up one step; a streak of comfortable
  /// frames decays the boost. The base runtime's feedback only runs on
  /// Phase::Ready decisions, which the model path bypasses, so the
  /// predictive path carries its own closed loop. A gross miss
  /// (overshoot beyond kGrossMissFraction of the target), or a key that
  /// still violates with the boost pinned at kMaxBoost, is out of the
  /// model's competence: the key is suspended for the rest of the run
  /// and its decisions fall through to the LTM path — pre-calibrated
  /// from the violating frame's observed cost, so the handover needs no
  /// profiling frames.
  static constexpr int kMaxBoost = 4;
  static constexpr double kGrossMissFraction = 0.3;
  static constexpr double kComfortFraction = 0.8;
  static constexpr unsigned kDecayStreak = 8;
  static constexpr unsigned kSuspendStreak = 2;
  /// FeedbackOffset a freshly seeded key opens with: seeding always
  /// follows a failure, so the LTM handover starts with the
  /// conservatism the feedback loop would have ratcheted up to by now.
  /// The predictive side decays it on any non-violating streak (the
  /// base loop's own decay criterion is too strict for an accurately
  /// seeded fit), so clean runs reclaim the energy within a few dozen
  /// frames while fault windows keep it.
  static constexpr int kSeedFeedbackOffset = 2;

  struct Feedback {
    int Boost = 0;
    unsigned SafeStreak = 0;
    unsigned MaxBoostViolations = 0;
    bool Suspended = false;
  };

  Options Opts;
  DecisionTreeModel OwnedModel; ///< Loaded from ModelPath when used.
  const DecisionTreeModel *Model = nullptr;
  std::string LoadError;
  bool LadderMatches = false;
  bool Quarantined = false;
  FeatureExtractor Extractor;
  std::map<std::string, Feedback> Boosts;
  PredictiveStats PStats;
};

} // namespace greenweb

#endif // GREENWEB_GREENWEB_PREDICTIVEGOVERNOR_H
