//===- greenweb/GreenWebRuntime.cpp - The GreenWeb runtime ----------------------===//
//
// Part of the GreenWeb reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "greenweb/GreenWebRuntime.h"

#include "browser/Browser.h"
#include "hw/AcmpChip.h"
#include "hw/EnergyMeter.h"
#include "profiling/Profiler.h"
#include "support/StringUtils.h"
#include "telemetry/Telemetry.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace greenweb;

GreenWebRuntime::GreenWebRuntime(AnnotationRegistry &Registry)
    : GreenWebRuntime(Registry, Params{}) {}

GreenWebRuntime::GreenWebRuntime(AnnotationRegistry &Registry, Params PIn)
    : Registry(Registry), P(PIn) {}

std::string GreenWebRuntime::name() const {
  return P.Scenario == UsageScenario::Imperceptible ? "GreenWeb-I"
                                                    : "GreenWeb-U";
}

void GreenWebRuntime::attach(Browser &Browser_) {
  B = &Browser_;
  Ladder = buildConfigLadder(B->chip());
  B->addFrameObserver(this);
  // Idle: conserve energy until an annotated event arrives.
  B->chip().setConfig(B->chip().spec().minConfig());
}

void GreenWebRuntime::detach() {
  IdleDrop.cancel();
  if (B)
    B->removeFrameObserver(this);
  B = nullptr;
  ActiveEvents.clear();
}

Telemetry *GreenWebRuntime::telemetry() const {
  if (!B)
    return nullptr;
  Telemetry *T = B->simulator().telemetry();
  return T && T->enabled() ? T : nullptr;
}

void GreenWebRuntime::bumpMetric(const char *Name) {
  if (Telemetry *T = telemetry())
    T->metrics().counter(Name).add();
}

std::string GreenWebRuntime::modelKey(const Element *Target,
                                      const std::string &Type,
                                      const QosSpec &Spec) const {
  // Key per (element tag, event type, QoS spec): same-shaped widgets
  // (a grid of story tiles, a set of menu panels) share one calibrated
  // model, so the two profiling runs amortize across the whole widget
  // family instead of repeating per element.
  return formatString("%s|%s|%s",
                      Target ? Target->tagName().c_str() : "?",
                      Type.c_str(), Spec.str().c_str());
}

Duration GreenWebRuntime::resolveTarget(const QosSpec &Spec) {
  Duration Target = activeTarget(Spec, P.Scenario);
  if (!P.ClampTargetsToDefaults)
    return Target;
  // Defense against aggressive annotations: never chase a target
  // tighter than the Table 1 default for the QoS type.
  QosTarget Default = Spec.Type == QosType::Continuous
                          ? defaultContinuousTarget()
                          : defaultSingleShortTarget();
  Duration Floor = P.Scenario == UsageScenario::Imperceptible
                       ? Default.Imperceptible
                       : Default.Usable;
  if (Target < Floor) {
    ++Counters.TargetClampsApplied;
    return Floor;
  }
  return Target;
}

void GreenWebRuntime::maybeEngageEnergyBudget() {
  if (!P.EnergyBudgetJoules || !Meter_ || P.ClampTargetsToDefaults)
    return;
  if (Meter_->totalJoules() >= *P.EnergyBudgetJoules)
    P.ClampTargetsToDefaults = true;
}

void GreenWebRuntime::onInputDispatched(uint64_t RootId,
                                        const std::string &Type,
                                        Element *Target) {
  assert(B && "input before attach");
  maybeEngageEnergyBudget();

  std::optional<QosSpec> Spec =
      Target ? Registry.lookup(*Target, Type) : std::nullopt;
  if (!Spec) {
    ++Counters.UnannotatedEvents;
    bumpMetric("governor.unannotated_events");
    return;
  }
  ++Counters.AnnotatedEvents;
  bumpMetric("governor.annotated_events");

  ActiveEvent Event;
  Event.RootId = RootId;
  Event.Key = modelKey(Target, Type, *Spec);
  Event.Spec = *Spec;
  Event.Target = resolveTarget(*Spec);
  ActiveEvents[RootId] = std::move(Event);
  applyDesiredConfig();
}

GreenWebRuntime::Desired
GreenWebRuntime::desiredConfigFor(const ActiveEvent &Event) {
  if (std::optional<Desired> Override = predictOverride(Event))
    return *Override;
  ModelState &State = Models[Event.Key];
  const AcmpSpec &Spec = B->chip().spec();
  switch (State.ModelPhase) {
  case Phase::NeedMaxProfile:
    return {Spec.maxConfig(), "profile_max", -1.0, 0};
  case Phase::NeedMinProfile:
    return {Spec.minConfig(), "profile_min", -1.0, 0};
  case Phase::Ready: {
    ConfigChoice Choice = chooseMinEnergyConfig(
        B->chip(), State.Model, Event.Target, P.SafetyMargin);
    AcmpConfig Config = shiftConfig(Choice.Config, State.FeedbackOffset);
    double PredictedMs =
        State.Model.predict(B->chip().effectiveHzFor(Config)).millis();
    return {Config, "predicted", PredictedMs, State.FeedbackOffset};
  }
  }
  return {Spec.maxConfig(), "fallback", -1.0, 0};
}

AcmpConfig GreenWebRuntime::shiftConfig(const AcmpConfig &Config,
                                        int Levels) const {
  if (Levels == 0)
    return Config;
  auto It = std::find(Ladder.begin(), Ladder.end(), Config);
  assert(It != Ladder.end() && "config not on the ladder");
  int Index = int(It - Ladder.begin());
  Index = std::clamp(Index + Levels, 0, int(Ladder.size()) - 1);
  return Ladder[size_t(Index)];
}

void GreenWebRuntime::applyDesiredConfig() {
  if (!B)
    return;
  GW_PROF_SCOPE("governor.apply_config");
  if (ActiveEvents.empty()) {
    // Hold the current configuration briefly: a scroll stream delivers
    // a new input within milliseconds and immediate idling would
    // thrash cluster migrations.
    if (IdleDrop.isActive())
      return;
    IdleDrop = B->simulator().schedule(P.IdleHold, [this] {
      if (B && ActiveEvents.empty()) {
        AcmpConfig Idle = B->chip().spec().minConfig();
        if (B->chip().setConfig(Idle))
          if (Telemetry *T = telemetry()) {
            T->recordGovernorDecision(
                {name(), "idle_drop", Idle.str(),
                 Idle.Core == CoreKind::Big ? 1 : 0,
                 int64_t(Idle.FreqMHz), 0, "", -1.0, -1.0, 0});
            recordDecisionSpan(*T, "idle_drop", 0);
          }
      }
    });
    return;
  }
  IdleDrop.cancel();
  if (InFallback) {
    // Watchdog fallback: the calibrated models are suspect, so pin the
    // conservative floor instead of predicting.
    AcmpConfig Floor = watchdogFloorConfig();
    if (Telemetry *T = telemetry()) {
      T->recordGovernorDecision(
          {name(), "watchdog_floor", Floor.str(),
           Floor.Core == CoreKind::Big ? 1 : 0, int64_t(Floor.FreqMHz), 0,
           "", -1.0, -1.0, 0});
      recordDecisionSpan(*T, "watchdog_floor", 0);
    }
    B->chip().setConfig(Floor);
    return;
  }
  // Multiple concurrent events: satisfy the most demanding one.
  std::optional<Desired> Best;
  const ActiveEvent *BestEvent = nullptr;
  for (auto &[Root, Event] : ActiveEvents) {
    Desired Want = desiredConfigFor(Event);
    if (!Best || B->chip().effectiveHzFor(Want.Config) >
                     B->chip().effectiveHzFor(Best->Config)) {
      Best = Want;
      BestEvent = &Event;
    }
  }
  if (Telemetry *T = telemetry()) {
    T->recordGovernorDecision(
        {name(), Best->Reason, Best->Config.str(),
         Best->Config.Core == CoreKind::Big ? 1 : 0,
         int64_t(Best->Config.FreqMHz), int64_t(BestEvent->RootId),
         BestEvent->Key, Best->PredictedMs,
         BestEvent->Target.millis(), Best->FeedbackOffset});
    recordDecisionSpan(*T, Best->Reason, int64_t(BestEvent->RootId));
  }
  B->chip().setConfig(Best->Config);
}

void GreenWebRuntime::recordDecisionSpan(Telemetry &T,
                                         const std::string &Reason,
                                         int64_t RootId) {
  // Zero-length marker on the governor track; critical-path reports use
  // it to correlate "what did the governor last decide for this root".
  SpanTracer &Tr = T.spans();
  int64_t Id = Tr.begin("decision:" + Reason, "governor", RootId, 0,
                        /*Parent=*/0);
  Tr.end(Id);
}

void GreenWebRuntime::onFrameReady(const FrameRecord &Frame) {
  assert(B && "frame before attach");
  GW_PROF_SCOPE("governor.on_frame");
  maybeEngageEnergyBudget();

  // An event may appear in several messages of one frame (batched
  // ticks); handle each root once with its worst latency.
  std::map<uint64_t, Duration> WorstByRoot;
  for (const MsgLatency &L : Frame.Latencies) {
    Duration &Slot = WorstByRoot[L.Msg.RootId];
    Slot = std::max(Slot, L.Latency);
  }

  std::vector<uint64_t> SinglesDone;
  for (const auto &[Root, Latency] : WorstByRoot) {
    auto It = ActiveEvents.find(Root);
    if (It == ActiveEvents.end())
      continue;
    // Continuous (smoothness) targets constrain per-frame production
    // latency; single (responsiveness) targets the input-to-display
    // delay.
    Duration Effective = It->second.Spec.Type == QosType::Continuous
                             ? Frame.ReadyTime - Frame.BeginTime
                             : Latency;
    handleEventFrame(It->second, Frame, Effective);
    // A "single" event is optimized only up to its response frame
    // (Sec. 6.4); post-frame work runs at the idle configuration.
    if (It->second.Spec.Type == QosType::Single)
      SinglesDone.push_back(Root);
  }
  for (uint64_t Root : SinglesDone)
    ActiveEvents.erase(Root);

  applyDesiredConfig();
}

void GreenWebRuntime::handleEventFrame(ActiveEvent &Event,
                                       const FrameRecord &Frame,
                                       Duration Latency) {
  bool Violated = Latency > Event.Target;
  if (Telemetry *T = telemetry())
    if (Violated)
      T->recordQosViolation({name(), int64_t(Event.RootId), Event.Key,
                             Latency.millis(), Event.Target.millis(),
                             int64_t(Frame.FrameId),
                             Event.Spec.Type == QosType::Continuous
                                 ? "continuous"
                                 : "single"});

  if (InFallback) {
    // Prediction is suspended; judge only whether the floor holds QoS.
    ++Counters.WatchdogFloorFrames;
    noteWatchdogFrame(Violated);
    maybeReengageWatchdog();
    return;
  }

  ModelState &State = Models[Event.Key];
  AcmpConfig Config = B->chip().config();

  switch (State.ModelPhase) {
  case Phase::NeedMaxProfile:
    ++Counters.ProfilingFrames;
    bumpMetric("governor.profiling_frames");
    State.MaxObs = {Config, Latency};
    State.ModelPhase = Phase::NeedMinProfile;
    // Profiling frames count toward the watchdog window too: under an
    // active fault the runtime recalibrates in a loop, and the repeated
    // profiling violations are exactly the churn the watchdog must
    // catch. Last statement - a trip invalidates State.
    if (P.EnableWatchdog)
      noteWatchdogFrame(Violated);
    return;
  case Phase::NeedMinProfile: {
    ++Counters.ProfilingFrames;
    bumpMetric("governor.profiling_frames");
    LatencyObservation MinObs{Config, Latency};
    std::optional<DvfsModel> Model =
        fitDvfsModel(B->chip(), State.MaxObs, MinObs);
    if (Model) {
      State.Model = *Model;
      State.ModelPhase = Phase::Ready;
      State.FeedbackOffset = 0;
      State.ConsecutiveMispredicts = 0;
    }
    // else: same effective frequency twice (another event pinned the
    // chip); keep waiting for a distinct observation.
    if (P.EnableWatchdog)
      noteWatchdogFrame(Violated);
    return;
  }
  case Phase::Ready:
    break;
  }

  ++Counters.PredictedFrames;
  bumpMetric("governor.predicted_frames");
  Duration Predicted = State.Model.predict(B->chip().effectiveHzFor(Config));
  double Pred = std::max(1e-9, Predicted.secs());
  double Measured = Latency.secs();
  bool Mispredicted =
      std::fabs(Measured - Pred) / Pred > P.MispredictTolerance;
  if (Mispredicted)
    bumpMetric("governor.mispredictions");

  auto NoteFeedback = [&](const char *Action) {
    if (Telemetry *T = telemetry())
      T->recordFeedbackAction({name(), Action, Event.Key,
                               State.FeedbackOffset, Latency.millis(),
                               Predicted.millis(),
                               Event.Target.millis()});
  };

  if (P.EnableFeedback) {
    if (Latency > Event.Target) {
      // Under-prediction: step one level up (little top migrates to
      // big, Sec. 6.2).
      ++State.FeedbackOffset;
      ++Counters.FeedbackStepsUp;
      NoteFeedback("step_up");
      State.SafeStreak = 0;
    } else if (State.FeedbackOffset > 0) {
      // Over-prediction path: once the boost has been comfortably
      // unnecessary for a while, undo one level. This makes transient
      // complexity bumps decay instead of ratcheting the chip up
      // permanently.
      bool Comfortable = Measured < Pred * (1.0 - P.MispredictTolerance) ||
                         Latency < Event.Target * 0.8;
      if (Comfortable && ++State.SafeStreak >= P.FeedbackDecayAfter) {
        --State.FeedbackOffset;
        ++Counters.FeedbackStepsDown;
        NoteFeedback("step_down");
        State.SafeStreak = 0;
      }
    } else {
      State.SafeStreak = 0;
    }
    State.FeedbackOffset = std::clamp(State.FeedbackOffset, 0, 6);
  }

  if (Mispredicted) {
    if (++State.ConsecutiveMispredicts >= P.RecalibrateAfter) {
      // The workload shifted (e.g. frame-complexity surge): re-profile.
      State.ModelPhase = Phase::NeedMaxProfile;
      State.ConsecutiveMispredicts = 0;
      State.FeedbackOffset = 0;
      ++Counters.Recalibrations;
      NoteFeedback("recalibrate");
    }
  } else {
    State.ConsecutiveMispredicts = 0;
  }

  // Last: a trip invalidates Models (and the State reference above).
  if (P.EnableWatchdog)
    noteWatchdogFrame(Mispredicted || Violated);
}

AcmpConfig GreenWebRuntime::watchdogFloorConfig() const {
  assert(!Ladder.empty() && "watchdog before attach");
  double Pos = std::clamp(P.WatchdogFloorPosition, 0.0, 1.0);
  size_t Index = size_t(std::lround(Pos * double(Ladder.size() - 1)));
  return Ladder[Index];
}

void GreenWebRuntime::noteWatchdogFrame(bool Bad) {
  WatchdogRecent.push_back(Bad);
  while (WatchdogRecent.size() > P.WatchdogWindow)
    WatchdogRecent.pop_front();
  if (InFallback)
    return;
  unsigned BadCount = 0;
  for (bool B_ : WatchdogRecent)
    BadCount += B_ ? 1 : 0;
  if (BadCount >= P.WatchdogTripThreshold)
    tripWatchdog();
}

void GreenWebRuntime::tripWatchdog() {
  TimePoint Now = B->simulator().now();
  // Backoff: a trip soon after re-engagement means the fault outlived
  // the previous hold — hold the floor twice as long this time. A trip
  // after a long healthy stretch starts from the configured hold again.
  Duration MaxHold = P.WatchdogHold * double(
      std::max(1u, P.WatchdogMaxHoldFactor));
  if (HasReengaged && Now - LastReengage < CurrentHold)
    CurrentHold = std::min(CurrentHold * 2.0, MaxHold);
  else
    CurrentHold = P.WatchdogHold;
  InFallback = true;
  FallbackUntil = Now + CurrentHold;
  WatchdogRecent.clear();
  // Keep the calibrated models: observations are recorded against the
  // configuration the chip actually ran, so most faults (throttling,
  // flaky DVFS) leave them valid and the environment, not the model, is
  // what misbehaves. Re-profiling every key after each trip would turn
  // a persistent fault into a recalibration storm of guaranteed
  // min-profile violations. A genuinely corrupted model (cost spikes
  // during profiling) recalibrates through the normal mispredict path
  // after re-engagement. Only the transient feedback state is reset.
  for (auto &[Key, State] : Models) {
    State.ConsecutiveMispredicts = 0;
    State.SafeStreak = 0;
  }
  ++Counters.WatchdogTrips;
  bumpMetric("governor.watchdog_trips");
  // The "watchdog_fallback" decision record doubles as the flight
  // recorder's watchdog_trip trigger (telemetry/FlightRecorder.h), so
  // an attached recorder snapshots the ring of records leading here.
  if (Telemetry *T = telemetry()) {
    AcmpConfig Floor = watchdogFloorConfig();
    T->recordGovernorDecision(
        {name(), "watchdog_fallback", Floor.str(),
         Floor.Core == CoreKind::Big ? 1 : 0, int64_t(Floor.FreqMHz), 0, "",
         -1.0, -1.0, 0});
    recordDecisionSpan(*T, "watchdog_fallback", 0);
  }
}

void GreenWebRuntime::maybeReengageWatchdog() {
  if (!InFallback || B->simulator().now() < FallbackUntil)
    return;
  // Re-engage only once the floor has demonstrably held QoS: a
  // half-window of consecutive clean frames since the hold expired.
  size_t Needed = std::max<size_t>(1, P.WatchdogWindow / 2);
  if (WatchdogRecent.size() < Needed)
    return;
  for (bool Bad : WatchdogRecent)
    if (Bad)
      return;
  InFallback = false;
  WatchdogRecent.clear();
  LastReengage = B->simulator().now();
  HasReengaged = true;
  ++Counters.WatchdogReengages;
  bumpMetric("governor.watchdog_reengages");
  if (Telemetry *T = telemetry()) {
    T->recordGovernorDecision({name(), "watchdog_reengage",
                               B->chip().config().str(),
                               B->chip().config().Core == CoreKind::Big ? 1
                                                                        : 0,
                               int64_t(B->chip().config().FreqMHz), 0, "",
                               -1.0, -1.0, 0});
    recordDecisionSpan(*T, "watchdog_reengage", 0);
  }
}

void GreenWebRuntime::onEventQuiescent(uint64_t RootId) {
  if (ActiveEvents.erase(RootId) > 0)
    applyDesiredConfig();
}
