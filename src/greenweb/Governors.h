//===- greenweb/Governors.h - Baseline CPU governors -------------*- C++ -*-===//
//
// Part of the GreenWeb reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The baseline CPU governors the paper evaluates against (Sec. 7.1):
///
///  * Perf        - always the peak configuration (big cluster at max
///                  frequency); best QoS, highest energy.
///  * Interactive - re-implementation of Android's cpufreq_interactive
///                  policy: jump to the highest speed when load appears
///                  after idle, then track utilization with hysteresis.
///  * Ondemand / Powersave - classic governors, used by ablations.
///
/// On the Exynos 5410's cluster-migration design the governor ladder
/// spans both clusters: the low "virtual frequencies" map to A7 levels
/// and the high ones to A15 levels, which is how the real device
/// switched clusters under cpufreq.
///
//===----------------------------------------------------------------------===//

#ifndef GREENWEB_GREENWEB_GOVERNORS_H
#define GREENWEB_GREENWEB_GOVERNORS_H

#include "browser/FrameTracker.h"
#include "hw/AcmpChip.h"
#include "sim/Simulator.h"

#include <string>
#include <vector>

namespace greenweb {

class Browser;

/// Interface every CPU scheduling policy implements.
class Governor {
public:
  virtual ~Governor();

  virtual std::string name() const = 0;

  /// Starts governing \p B's chip. Called once, after the browser is
  /// constructed and before the page loads.
  virtual void attach(Browser &B) = 0;

  /// Stops governing (cancels timers). Safe to call when not attached.
  virtual void detach();
};

/// Peak-performance policy: pins the big cluster at maximum frequency.
class PerfGovernor : public Governor {
public:
  std::string name() const override { return "Perf"; }
  void attach(Browser &B) override;
};

/// Minimum-power policy: pins the little cluster at minimum frequency.
class PowersaveGovernor : public Governor {
public:
  std::string name() const override { return "Powersave"; }
  void attach(Browser &B) override;
};

/// Android `interactive` governor model. Implements FrameObserver for
/// the input-booster behavior Android pairs with this governor: any
/// touch input pulses the CPU to hispeed immediately, which is a large
/// part of why Interactive tracks Perf so closely under interactive
/// load (Sec. 7.3's "Interactive consumes energy close to Perf").
class InteractiveGovernor : public Governor, public FrameObserver {
public:
  struct Params {
    /// Utilization sampling period.
    Duration Timer = Duration::milliseconds(20);
    /// Load at (or above) which the governor jumps to hispeed (Android
    /// default go_hispeed_load=99 applies to the *idle-exit* burst; the
    /// sustained-load path uses target loads; this model folds both
    /// into one jump threshold).
    double GoHispeedLoad = 0.60;
    /// Proportional-control target load for frequency selection.
    double TargetLoad = 0.80;
    /// Minimum time at a speed before the governor may lower it
    /// (min_sample_time; device vendors commonly shipped hundreds of
    /// milliseconds to keep interaction snappy).
    Duration MinSampleTime = Duration::milliseconds(500);
    /// Touch-boost: jump to hispeed on any user input (Android's input
    /// booster). Disable for the pre-boost governor variant.
    bool TouchBoost = true;
  };

  InteractiveGovernor();
  explicit InteractiveGovernor(Params P);

  std::string name() const override { return "Interactive"; }
  void attach(Browser &B) override;
  void detach() override;

  /// Input booster hook.
  void onInputDispatched(uint64_t RootId, const std::string &Type,
                         Element *Target) override;
  void onFrameReady(const FrameRecord &Frame) override;

private:
  void onTimer();
  double sampleUtilization();

  Params P;
  Browser *B = nullptr;
  std::vector<AcmpConfig> Ladder;
  EventHandle Timer;
  Duration LastBusy[3];
  TimePoint LastSample;
  TimePoint LastRaise;
};

/// Classic ondemand governor: jump to max above the up-threshold, scale
/// down proportionally otherwise.
class OndemandGovernor : public Governor {
public:
  struct Params {
    Duration Timer = Duration::milliseconds(100);
    double UpThreshold = 0.80;
  };

  OndemandGovernor();
  explicit OndemandGovernor(Params P);

  std::string name() const override { return "Ondemand"; }
  void attach(Browser &B) override;
  void detach() override;

private:
  void onTimer();

  Params P;
  Browser *B = nullptr;
  std::vector<AcmpConfig> Ladder;
  EventHandle Timer;
  Duration LastBusy[3];
  TimePoint LastSample;
};

/// Event-based scheduling (EBS) from Zhu et al. HPCA'15, the paper's
/// closest related runtime (Sec. 9). EBS has no QoS annotations: it
/// *measures* each event's latency and uses it as a proxy for user
/// expectations — "if an event takes a long time to execute, EBS
/// guesses that users could naturally tolerate a long latency and
/// reduces CPU frequency". The paper's criticism, reproduced by the
/// bench_ablation_ebs harness, is that measured latency is an artifact
/// of the device's speed, not of the user's expectation: a heavyweight
/// tap that users expect to feel instant (MSN) gets slowed down, while
/// a lightweight long-tolerance job wastes energy at high speed.
class EbsGovernor : public Governor, public FrameObserver {
public:
  struct Params {
    /// Events whose last observed latency was below this run fast.
    Duration ShortLatencyThreshold = Duration::milliseconds(50);
    /// ...and events above this are presumed tolerant and run slow.
    Duration LongLatencyThreshold = Duration::milliseconds(300);
    /// Config used for presumed-latency-sensitive (short) events.
    bool BoostShortToMax = true;
    /// Idle-drop delay after the last event's response frame.
    Duration IdleHold = Duration::milliseconds(150);
  };

  EbsGovernor();
  explicit EbsGovernor(Params P);

  std::string name() const override { return "EBS"; }
  void attach(Browser &B) override;
  void detach() override;

  void onInputDispatched(uint64_t RootId, const std::string &Type,
                         Element *Target) override;
  void onFrameReady(const FrameRecord &Frame) override;
  void onEventQuiescent(uint64_t RootId) override;

private:
  /// Per-(element, event) class guessed from measured latencies.
  enum class GuessKind { Unknown, Short, Medium, Long };

  std::string keyFor(const Element *Target, const std::string &Type) const;
  void applyFor(GuessKind Guess);

  Params P;
  Browser *B = nullptr;
  std::map<std::string, GuessKind> Guesses;
  std::map<uint64_t, std::string> ActiveRoots;
  EventHandle IdleDrop;
};

/// Builds the cluster-migration frequency ladder: all configurations
/// ordered by ascending effective speed (A7 levels then A15 levels).
std::vector<AcmpConfig> buildConfigLadder(const AcmpChip &Chip);

} // namespace greenweb

#endif // GREENWEB_GREENWEB_GOVERNORS_H
