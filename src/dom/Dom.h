//===- dom/Dom.h - Document Object Model ------------------------*- C++ -*-===//
//
// Part of the GreenWeb reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A Document Object Model for the simulated browser. Elements carry a
/// tag name, id, classes, attributes, inline style, children, and event
/// listeners; a Document owns the tree and provides the lookups the
/// MiniScript bindings and the CSS selector matcher need.
///
/// Event listeners are stored as opaque callables taking an Event; the
/// script layer registers closures over interpreter state, and the
/// browser runtime dispatches input events through here.
///
//===----------------------------------------------------------------------===//

#ifndef GREENWEB_DOM_DOM_H
#define GREENWEB_DOM_DOM_H

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace greenweb {

class Element;
class Document;

/// DOM event names the simulated browser dispatches. The paper's mobile
/// scope covers click, scroll, touchstart, touchend, and touchmove
/// (Sec. 3.1), plus the loading pseudo-event and the CSS animation
/// lifecycle events AutoGreen listens for (transitionend/animationend).
namespace events {
inline constexpr const char *Click = "click";
inline constexpr const char *Scroll = "scroll";
inline constexpr const char *TouchStart = "touchstart";
inline constexpr const char *TouchEnd = "touchend";
inline constexpr const char *TouchMove = "touchmove";
inline constexpr const char *Load = "load";
inline constexpr const char *TransitionEnd = "transitionend";
inline constexpr const char *AnimationEnd = "animationend";
} // namespace events

/// True for the five user-triggered mobile input events (plus load) that
/// GreenWeb annotates (Table 3 note: only events directly triggered by
/// mobile user interactions are annotated).
bool isUserInputEvent(std::string_view Name);

/// An event being dispatched to a listener.
struct Event {
  /// Event name, e.g. "click".
  std::string Type;
  /// The element the event fired on.
  Element *Target = nullptr;
  /// Monotone id of the originating user input; 0 for synthetic events.
  uint64_t InputId = 0;
};

/// Listener callable registered on an element for one event type.
using EventListener = std::function<void(const Event &)>;

/// A DOM element node.
class Element {
public:
  Element(Document &Doc, std::string TagName);

  Element(const Element &) = delete;
  Element &operator=(const Element &) = delete;

  Document &document() const { return Doc; }
  uint64_t nodeId() const { return NodeId; }
  const std::string &tagName() const { return TagName; }

  const std::string &id() const { return IdValue; }
  /// Sets the element id and refreshes the document's id index.
  void setId(std::string NewId);

  const std::vector<std::string> &classes() const { return Classes; }
  bool hasClass(std::string_view Name) const;
  void addClass(std::string Name);

  /// Generic attributes (everything except id/class/style, which have
  /// dedicated storage).
  void setAttribute(std::string Name, std::string Value);
  /// Returns the attribute value or an empty string.
  std::string_view attribute(std::string_view Name) const;
  bool hasAttribute(std::string_view Name) const;
  const std::map<std::string, std::string> &attributes() const {
    return Attributes;
  }

  /// Inline style ("style=..." / element.style.X writes). Setting a
  /// property notifies the document's style-mutation observer, which is
  /// how CSS transitions get triggered.
  void setStyleProperty(std::string Property, std::string Value);
  /// Returns the inline style value or an empty string.
  std::string_view styleProperty(std::string_view Property) const;
  const std::map<std::string, std::string> &inlineStyle() const {
    return InlineStyle;
  }

  /// --- Tree structure ---
  Element *parent() const { return Parent; }
  const std::vector<std::unique_ptr<Element>> &children() const {
    return Children;
  }
  /// Appends a child and returns it (ownership stays with this element).
  Element *appendChild(std::unique_ptr<Element> Child);
  /// Creates and appends a child with the given tag.
  Element *createChild(std::string TagName);
  /// Visits this element and all descendants pre-order.
  void forEachInclusiveDescendant(const std::function<void(Element &)> &Fn);

  /// --- Events ---
  void addEventListener(std::string Type, EventListener Listener);
  /// True if at least one listener is registered for \p Type.
  bool hasEventListener(std::string_view Type) const;
  /// Event types with at least one listener, sorted (deterministic).
  std::vector<std::string> listenedEventTypes() const;
  /// Dispatches \p E to every listener of its type on this element.
  /// Returns the number of listeners invoked. No capture/bubble phases:
  /// the simulated apps attach listeners directly to targets.
  size_t dispatchEvent(const Event &E);

private:
  friend class Document;
  /// Deep copy of this subtree into \p NewDoc, preserving node ids
  /// verbatim (Document::clone's contract). Listeners are not copied.
  std::unique_ptr<Element> cloneInto(Document &NewDoc) const;

  Document &Doc;
  uint64_t NodeId;
  std::string TagName;
  std::string IdValue;
  std::vector<std::string> Classes;
  std::map<std::string, std::string> Attributes;
  std::map<std::string, std::string> InlineStyle;
  Element *Parent = nullptr;
  std::vector<std::unique_ptr<Element>> Children;
  std::map<std::string, std::vector<EventListener>> Listeners;
};

/// Owner of a DOM tree plus the document-level indexes.
class Document {
public:
  Document();

  Document(const Document &) = delete;
  Document &operator=(const Document &) = delete;

  /// The <html>-equivalent root element.
  Element &root() { return *Root; }
  const Element &root() const { return *Root; }

  /// Creates an unattached element owned by the caller until appended.
  std::unique_ptr<Element> createElement(std::string TagName);

  /// Deep copy for warm-start runs: tree structure, tags, ids, classes,
  /// attributes, inline styles, style/script texts, the id index, and
  /// the NextNodeId/StyleVersion counters are all reproduced exactly —
  /// every element keeps its original node id, so id-keyed state
  /// recorded against this document (style-match snapshots, annotation
  /// fault streams) applies verbatim to the copy. Event listeners and
  /// the style-mutation observer are NOT copied; a fresh page load
  /// rebinds its own.
  std::unique_ptr<Document> clone() const;

  /// Id lookup; returns nullptr when absent.
  Element *getElementById(std::string_view Id);

  /// All elements with the given class, pre-order.
  std::vector<Element *> getElementsByClass(std::string_view Class);

  /// All elements with the given tag name, pre-order.
  std::vector<Element *> getElementsByTag(std::string_view Tag);

  /// Visits every element in the tree pre-order.
  void forEachElement(const std::function<void(Element &)> &Fn);

  /// Total number of elements in the tree.
  size_t elementCount();

  /// Raw <style> block texts collected by the HTML parser, in document
  /// order. The CSS engine parses them into a stylesheet.
  std::vector<std::string> StyleTexts;
  /// Raw <script> block texts collected by the HTML parser.
  std::vector<std::string> ScriptTexts;

  /// Observer invoked when any element's inline style property changes:
  /// (element, property, old value, new value). The browser's transition
  /// driver hooks this.
  std::function<void(Element &, const std::string &, const std::string &,
                     const std::string &)>
      StyleMutationObserver;

  /// Monotone counter bumped on every mutation that can change selector
  /// matching anywhere in the tree (id/class/inline-style writes and
  /// subtree attachment). The style resolver stamps its per-element
  /// matched-rules cache with this version, so a stale entry is never
  /// served after a mutation.
  uint64_t styleVersion() const { return StyleVersion; }
  void bumpStyleVersion() { ++StyleVersion; }

  /// --- Internal (used by Element) ---
  uint64_t takeNodeId() { return NextNodeId++; }
  void indexElementId(const std::string &Id, Element *E);

private:
  uint64_t NextNodeId = 1;
  uint64_t StyleVersion = 1;
  std::unique_ptr<Element> Root;
  std::map<std::string, Element *, std::less<>> IdIndex;
};

} // namespace greenweb

#endif // GREENWEB_DOM_DOM_H
