//===- dom/Dom.cpp - Document Object Model ----------------------------------===//
//
// Part of the GreenWeb reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "dom/Dom.h"

#include <algorithm>
#include <cassert>

using namespace greenweb;

bool greenweb::isUserInputEvent(std::string_view Name) {
  return Name == events::Click || Name == events::Scroll ||
         Name == events::TouchStart || Name == events::TouchEnd ||
         Name == events::TouchMove || Name == events::Load;
}

//===----------------------------------------------------------------------===//
// Element
//===----------------------------------------------------------------------===//

Element::Element(Document &Doc, std::string TagName)
    : Doc(Doc), NodeId(Doc.takeNodeId()), TagName(std::move(TagName)) {}

void Element::setId(std::string NewId) {
  IdValue = std::move(NewId);
  Doc.indexElementId(IdValue, this);
  Doc.bumpStyleVersion();
}

bool Element::hasClass(std::string_view Name) const {
  return std::find(Classes.begin(), Classes.end(), Name) != Classes.end();
}

void Element::addClass(std::string Name) {
  if (hasClass(Name))
    return;
  Classes.push_back(std::move(Name));
  Doc.bumpStyleVersion();
}

void Element::setAttribute(std::string Name, std::string Value) {
  Attributes[std::move(Name)] = std::move(Value);
}

std::string_view Element::attribute(std::string_view Name) const {
  auto It = Attributes.find(std::string(Name));
  if (It == Attributes.end())
    return {};
  return It->second;
}

bool Element::hasAttribute(std::string_view Name) const {
  return Attributes.count(std::string(Name)) != 0;
}

void Element::setStyleProperty(std::string Property, std::string Value) {
  std::string &Slot = InlineStyle[Property];
  std::string Old = Slot;
  if (Old == Value)
    return;
  Slot = Value;
  Doc.bumpStyleVersion();
  if (Doc.StyleMutationObserver)
    Doc.StyleMutationObserver(*this, Property, Old, Slot);
}

std::string_view Element::styleProperty(std::string_view Property) const {
  auto It = InlineStyle.find(std::string(Property));
  if (It == InlineStyle.end())
    return {};
  return It->second;
}

Element *Element::appendChild(std::unique_ptr<Element> Child) {
  assert(Child && "appending null child");
  assert(!Child->Parent && "child already attached");
  Child->Parent = this;
  Children.push_back(std::move(Child));
  // Attachment changes ancestor chains, which descendant/child
  // combinators observe.
  Doc.bumpStyleVersion();
  return Children.back().get();
}

Element *Element::createChild(std::string ChildTag) {
  return appendChild(Doc.createElement(std::move(ChildTag)));
}

void Element::forEachInclusiveDescendant(
    const std::function<void(Element &)> &Fn) {
  Fn(*this);
  for (const auto &Child : Children)
    Child->forEachInclusiveDescendant(Fn);
}

void Element::addEventListener(std::string Type, EventListener Listener) {
  assert(Listener && "registering null listener");
  Listeners[std::move(Type)].push_back(std::move(Listener));
}

bool Element::hasEventListener(std::string_view Type) const {
  auto It = Listeners.find(std::string(Type));
  return It != Listeners.end() && !It->second.empty();
}

std::vector<std::string> Element::listenedEventTypes() const {
  std::vector<std::string> Types;
  for (const auto &[Type, List] : Listeners)
    if (!List.empty())
      Types.push_back(Type);
  return Types;
}

size_t Element::dispatchEvent(const Event &E) {
  auto It = Listeners.find(E.Type);
  if (It == Listeners.end())
    return 0;
  // Copy: a listener may register further listeners while running.
  std::vector<EventListener> ToRun = It->second;
  for (const EventListener &Listener : ToRun)
    Listener(E);
  return ToRun.size();
}

std::unique_ptr<Element> Element::cloneInto(Document &NewDoc) const {
  // The constructor draws a fresh node id; overwrite it with the
  // original so the copy is id-identical (Document::clone restores
  // NextNodeId afterwards).
  auto Copy = std::make_unique<Element>(NewDoc, TagName);
  Copy->NodeId = NodeId;
  Copy->IdValue = IdValue;
  Copy->Classes = Classes;
  Copy->Attributes = Attributes;
  Copy->InlineStyle = InlineStyle;
  NewDoc.indexElementId(Copy->IdValue, Copy.get());
  Copy->Children.reserve(Children.size());
  for (const auto &Child : Children) {
    std::unique_ptr<Element> ChildCopy = Child->cloneInto(NewDoc);
    ChildCopy->Parent = Copy.get();
    Copy->Children.push_back(std::move(ChildCopy));
  }
  return Copy;
}

//===----------------------------------------------------------------------===//
// Document
//===----------------------------------------------------------------------===//

Document::Document() {
  Root = std::make_unique<Element>(*this, "html");
}

std::unique_ptr<Document> Document::clone() const {
  auto Copy = std::make_unique<Document>();
  // Replace the constructor-made root; id indexing happens inside
  // cloneInto, and the counters are restored below so the temporary
  // node-id draws during cloning leave no trace.
  Copy->Root = Root->cloneInto(*Copy);
  Copy->StyleTexts = StyleTexts;
  Copy->ScriptTexts = ScriptTexts;
  Copy->NextNodeId = NextNodeId;
  Copy->StyleVersion = StyleVersion;
  return Copy;
}

std::unique_ptr<Element> Document::createElement(std::string TagName) {
  return std::make_unique<Element>(*this, std::move(TagName));
}

Element *Document::getElementById(std::string_view Id) {
  auto It = IdIndex.find(Id);
  return It == IdIndex.end() ? nullptr : It->second;
}

std::vector<Element *> Document::getElementsByClass(std::string_view Class) {
  std::vector<Element *> Result;
  forEachElement([&](Element &E) {
    if (E.hasClass(Class))
      Result.push_back(&E);
  });
  return Result;
}

std::vector<Element *> Document::getElementsByTag(std::string_view Tag) {
  std::vector<Element *> Result;
  forEachElement([&](Element &E) {
    if (E.tagName() == Tag)
      Result.push_back(&E);
  });
  return Result;
}

void Document::forEachElement(const std::function<void(Element &)> &Fn) {
  Root->forEachInclusiveDescendant(Fn);
}

size_t Document::elementCount() {
  size_t Count = 0;
  forEachElement([&](Element &) { ++Count; });
  return Count;
}

void Document::indexElementId(const std::string &Id, Element *E) {
  if (!Id.empty())
    IdIndex[Id] = E;
}
