//===- html/HtmlParser.h - HTML parser ---------------------------*- C++ -*-===//
//
// Part of the GreenWeb reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parser for the HTML subset the simulated applications are written in:
/// nested elements with attributes, void and self-closing tags, comments,
/// and raw-text capture of <style> and <script> bodies into the
/// Document's StyleTexts / ScriptTexts (the CSS engine and MiniScript
/// interpreter consume those). Text content is recorded as a "text"
/// attribute on the nearest element; layout does not depend on it.
///
/// Error handling is browser-like: unexpected input never aborts the
/// parse; recovery actions are reported as diagnostics.
///
//===----------------------------------------------------------------------===//

#ifndef GREENWEB_HTML_HTMLPARSER_H
#define GREENWEB_HTML_HTMLPARSER_H

#include "dom/Dom.h"

#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace greenweb::html {

/// Result of parsing an HTML document.
struct ParseResult {
  std::unique_ptr<Document> Doc;
  std::vector<std::string> Diagnostics;
};

/// Parses \p Source into a Document. The returned document always has a
/// root <html> element; top-level parsed elements become its children
/// (or the children of an explicit <html>/<body> wrapper when present).
ParseResult parseHtml(std::string_view Source);

} // namespace greenweb::html

#endif // GREENWEB_HTML_HTMLPARSER_H
