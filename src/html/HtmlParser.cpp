//===- html/HtmlParser.cpp - HTML parser -------------------------------------===//
//
// Part of the GreenWeb reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "html/HtmlParser.h"

#include "support/StringUtils.h"

#include <cctype>

using namespace greenweb;
using namespace greenweb::html;

namespace {

/// Tags that never have content or a closing tag.
bool isVoidTag(std::string_view Tag) {
  return Tag == "br" || Tag == "hr" || Tag == "img" || Tag == "input" ||
         Tag == "meta" || Tag == "link" || Tag == "area" || Tag == "base" ||
         Tag == "col" || Tag == "embed" || Tag == "source" ||
         Tag == "track" || Tag == "wbr";
}

/// Tags whose body is raw text until the matching close tag.
bool isRawTextTag(std::string_view Tag) {
  return Tag == "style" || Tag == "script";
}

class HtmlParser {
public:
  explicit HtmlParser(std::string_view Source) : Src(Source) {}

  ParseResult run();

private:
  bool atEnd() const { return Pos >= Src.size(); }
  char peek(size_t Ahead = 0) const {
    return Pos + Ahead < Src.size() ? Src[Pos + Ahead] : '\0';
  }
  char advance() {
    char C = Src[Pos++];
    if (C == '\n')
      ++Line;
    return C;
  }
  void skipSpace() {
    while (!atEnd() && std::isspace(static_cast<unsigned char>(peek())))
      advance();
  }
  void diagnose(std::string Message) {
    Diags.push_back(formatString("line %u: %s", Line, Message.c_str()));
  }

  static bool isNameChar(char C) {
    return std::isalnum(static_cast<unsigned char>(C)) || C == '-' ||
           C == '_';
  }
  std::string readName();
  std::string readAttributeValue();
  void skipComment();
  /// Reads raw text up to `</tag>`; consumes the close tag.
  std::string readRawTextUntilClose(std::string_view Tag);
  /// Parses one `<tag ...>` open tag after '<' and the name; applies
  /// attributes to \p E. Returns true if the tag was self-closing.
  bool parseAttributes(Element &E);

  void applyAttribute(Element &E, std::string Name, std::string Value);

  std::string_view Src;
  size_t Pos = 0;
  unsigned Line = 1;
  std::vector<std::string> Diags;
};

std::string HtmlParser::readName() {
  std::string Name;
  while (!atEnd() && isNameChar(peek()))
    Name += char(std::tolower(static_cast<unsigned char>(advance())));
  return Name;
}

std::string HtmlParser::readAttributeValue() {
  skipSpace();
  if (peek() == '"' || peek() == '\'') {
    char Quote = advance();
    std::string Value;
    while (!atEnd() && peek() != Quote)
      Value += advance();
    if (!atEnd())
      advance();
    return Value;
  }
  // Unquoted value: read to whitespace or '>'.
  std::string Value;
  while (!atEnd() && !std::isspace(static_cast<unsigned char>(peek())) &&
         peek() != '>' && peek() != '/')
    Value += advance();
  return Value;
}

void HtmlParser::skipComment() {
  // Caller consumed "<!--".
  while (!atEnd()) {
    if (peek() == '-' && peek(1) == '-' && peek(2) == '>') {
      advance();
      advance();
      advance();
      return;
    }
    advance();
  }
  diagnose("unterminated comment");
}

std::string HtmlParser::readRawTextUntilClose(std::string_view Tag) {
  std::string Body;
  std::string CloseTag = "</" + std::string(Tag);
  while (!atEnd()) {
    if (peek() == '<' && peek(1) == '/') {
      // Check for the close tag case-insensitively.
      if (Pos + CloseTag.size() <= Src.size() &&
          equalsIgnoreCase(Src.substr(Pos, CloseTag.size()), CloseTag)) {
        // Consume "</tag" then to '>'.
        for (size_t I = 0; I < CloseTag.size(); ++I)
          advance();
        while (!atEnd() && advance() != '>')
          ;
        return Body;
      }
    }
    Body += advance();
  }
  diagnose(formatString("unterminated <%s> block",
                        std::string(Tag).c_str()));
  return Body;
}

void HtmlParser::applyAttribute(Element &E, std::string Name,
                                std::string Value) {
  if (Name == "id") {
    E.setId(std::move(Value));
    return;
  }
  if (Name == "class") {
    for (std::string_view Class : splitTrimmed(Value, ' '))
      E.addClass(std::string(Class));
    return;
  }
  if (Name == "style") {
    // Inline style: "prop: value; prop2: value2".
    for (std::string_view Entry : splitTrimmed(Value, ';')) {
      size_t Colon = Entry.find(':');
      if (Colon == std::string_view::npos)
        continue;
      E.setStyleProperty(toLower(trim(Entry.substr(0, Colon))),
                         std::string(trim(Entry.substr(Colon + 1))));
    }
    return;
  }
  E.setAttribute(std::move(Name), std::move(Value));
}

bool HtmlParser::parseAttributes(Element &E) {
  while (true) {
    skipSpace();
    if (atEnd()) {
      diagnose("unterminated open tag");
      return false;
    }
    if (peek() == '>') {
      advance();
      return false;
    }
    if (peek() == '/' && peek(1) == '>') {
      advance();
      advance();
      return true;
    }
    std::string Name = readName();
    if (Name.empty()) {
      diagnose(formatString("unexpected character '%c' in tag", peek()));
      advance();
      continue;
    }
    skipSpace();
    std::string Value;
    if (peek() == '=') {
      advance();
      Value = readAttributeValue();
    }
    applyAttribute(E, std::move(Name), std::move(Value));
  }
}

ParseResult HtmlParser::run() {
  ParseResult Result;
  Result.Doc = std::make_unique<Document>();
  Document &Doc = *Result.Doc;

  // Stack of open elements; the document root is the base.
  std::vector<Element *> Stack = {&Doc.root()};

  while (!atEnd()) {
    if (peek() != '<') {
      // Text content: accumulate and attach to the current element.
      std::string Text;
      while (!atEnd() && peek() != '<')
        Text += advance();
      std::string_view Trimmed = trim(Text);
      if (!Trimmed.empty()) {
        std::string Existing(Stack.back()->attribute("text"));
        if (!Existing.empty())
          Existing += ' ';
        Existing += Trimmed;
        Stack.back()->setAttribute("text", Existing);
      }
      continue;
    }

    // '<' dispatch.
    if (peek(1) == '!') {
      if (peek(2) == '-' && peek(3) == '-') {
        advance();
        advance();
        advance();
        advance();
        skipComment();
        continue;
      }
      // DOCTYPE and friends: skip to '>'.
      while (!atEnd() && advance() != '>')
        ;
      continue;
    }

    if (peek(1) == '/') {
      advance();
      advance();
      std::string Name = readName();
      while (!atEnd() && advance() != '>')
        ;
      // Pop to the matching open tag if present.
      bool Found = false;
      for (size_t I = Stack.size(); I-- > 1;) {
        if (Stack[I]->tagName() == Name) {
          Stack.resize(I);
          Found = true;
          break;
        }
      }
      if (!Found)
        diagnose(formatString("stray close tag </%s>", Name.c_str()));
      continue;
    }

    advance(); // '<'
    std::string Name = readName();
    if (Name.empty()) {
      diagnose("stray '<'");
      continue;
    }

    // <html> and <body> map onto the implicit root rather than nesting.
    if (Name == "html" || Name == "body" || Name == "head") {
      Element Discard(Doc, Name);
      parseAttributes(Discard);
      continue;
    }

    Element *E = Stack.back()->createChild(Name);
    bool SelfClosed = parseAttributes(*E);

    if (isRawTextTag(Name)) {
      std::string Body = readRawTextUntilClose(Name);
      if (Name == "style")
        Doc.StyleTexts.push_back(std::move(Body));
      else
        Doc.ScriptTexts.push_back(std::move(Body));
      continue;
    }
    if (!SelfClosed && !isVoidTag(Name))
      Stack.push_back(E);
  }

  if (Stack.size() > 1)
    Diags.push_back(formatString("unclosed element <%s> at end of input",
                                 Stack.back()->tagName().c_str()));
  Result.Diagnostics = std::move(Diags);
  return Result;
}

} // namespace

ParseResult greenweb::html::parseHtml(std::string_view Source) {
  return HtmlParser(Source).run();
}
