//===- bench/bench_ablation_governors.cpp - ablation A4 --------------------------===//
//
// Part of the GreenWeb reproduction. Distributed under the MIT license.
//
// Ablation A4: the full governor sweep. Beyond the paper's Perf and
// Interactive baselines, the classic Ondemand and Powersave policies
// bracket the design space: Powersave is the energy floor with heavy
// violations; Ondemand reacts more slowly than Interactive; GreenWeb
// exploits the QoS annotations to land near Powersave's energy while
// holding violations near Perf's.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "support/Statistics.h"

using namespace greenweb;

int main(int Argc, char **Argv) {
  bench::BenchFlags Flags = bench::BenchFlags::parse(Argc, Argv);
  bench::ProfSession ProfGuard(Flags);
  bench::JsonReporter Json("bench_ablation_governors", Flags.JsonPath);
  bench::banner("Ablation A4: governor sweep",
                "Perf / Interactive / Ondemand / Powersave / GreenWeb");

  const char *Govs[] = {governors::Perf, governors::Interactive,
                        governors::Ondemand, governors::Powersave,
                        governors::GreenWebI, governors::GreenWebU};
  const char *Apps[] = {"MSN", "Goo.ne.jp", "Paper.js", "CamanJS"};

  for (const char *App : Apps) {
    TablePrinter Table(formatString("%s (full interaction)", App));
    Table.row()
        .cell("Governor")
        .cell("Energy (mJ)")
        .cell("vs Perf")
        .cell("Viol-I (%)")
        .cell("Viol-U (%)")
        .cell("Switches");
    double PerfJ = 0.0;
    for (const char *Gov : Govs) {
      ExperimentConfig C;
      C.AppName = App;
      C.GovernorName = Gov;
      ExperimentResult R = runExperiment(C);
      if (Gov == std::string(governors::Perf))
        PerfJ = R.TotalJoules;
      Table.row()
          .cell(Gov)
          .cell(R.TotalJoules * 1e3, 1)
          .cell(bench::percentOf(R.TotalJoules, PerfJ))
          .cell(R.ViolationPctImperceptible, 2)
          .cell(R.ViolationPctUsable, 2)
          .cell(int64_t(R.FreqSwitches + R.Migrations));
    }
    Table.print();
    Json.table("Table", Table);
    std::printf("\n");
  }
  std::printf("Expected shape: energy Powersave < GreenWeb-U <= "
              "GreenWeb-I < Ondemand/Interactive < Perf, with Powersave "
              "alone showing large imperceptible-scenario violations.\n");
  return 0;
}
