//===- bench/bench_table1_categories.cpp - Table 1 ------------------------------===//
//
// Part of the GreenWeb reproduction. Distributed under the MIT license.
//
// Regenerates Table 1: the three QoS categories (QoS type x QoS target)
// that mobile Web interactions fall into, straight from the library's
// default-target constants, plus the LTM interactions that produce each
// category as observed in the twelve app models.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "greenweb/Qos.h"
#include "workloads/Apps.h"

using namespace greenweb;

int main(int Argc, char **Argv) {
  bench::BenchFlags Flags = bench::BenchFlags::parse(Argc, Argv);
  bench::ProfSession ProfGuard(Flags);
  bench::JsonReporter Json("bench_table1_categories", Flags.JsonPath);
  bench::banner("Table 1: QoS categories",
                "Interactions fall into three categories by QoS type and "
                "target (Sec. 3.3)");

  // Which LTM interactions produce each category, from the app models.
  std::map<std::string, std::string> Interactions;
  for (const std::string &Name : allAppNames()) {
    AppDefinition App = makeApp(Name, 1);
    std::string Key =
        formatString("%s|%lld", qosTypeName(App.MicroType),
                     static_cast<long long>(
                         App.MicroTarget.Imperceptible.nanos()));
    const char *Tag = App.MicroInteraction == InteractionKind::Loading ? "L"
                      : App.MicroInteraction == InteractionKind::Tapping
                          ? "T"
                          : "M";
    std::string &Slot = Interactions[Key];
    if (Slot.find(Tag) == std::string::npos) {
      if (!Slot.empty())
        Slot += ", ";
      Slot += Tag;
    }
  }
  auto interactionsFor = [&](QosType Type, QosTarget Target) {
    auto It = Interactions.find(formatString(
        "%s|%lld", qosTypeName(Type),
        static_cast<long long>(Target.Imperceptible.nanos())));
    return It == Interactions.end() ? std::string("-") : It->second;
  };

  TablePrinter Table;
  Table.row()
      .cell("QoS Type")
      .cell("QoS Target (TI, TU)")
      .cell("Description")
      .cell("Interaction");
  QosTarget Continuous = defaultContinuousTarget();
  Table.row()
      .cell("Continuous")
      .cell(formatString("(%.1f, %.1f) ms", Continuous.Imperceptible.millis(),
                         Continuous.Usable.millis()))
      .cell("QoS evaluated by continuous frame latencies")
      .cell(interactionsFor(QosType::Continuous, Continuous) + " (+T)");
  QosTarget Short = defaultSingleShortTarget();
  Table.row()
      .cell("Single")
      .cell(formatString("(%.0f, %.0f) ms", Short.Imperceptible.millis(),
                         Short.Usable.millis()))
      .cell("Single frame latency; short response expected")
      .cell(interactionsFor(QosType::Single, Short));
  QosTarget Long = defaultSingleLongTarget();
  Table.row()
      .cell("Single")
      .cell(formatString("(%.0f, %.0f) s", Long.Imperceptible.secs(),
                         Long.Usable.secs()))
      .cell("Single frame latency; long response expected")
      .cell(interactionsFor(QosType::Single, Long));
  Table.print();
  Json.table("Table", Table);

  std::printf("\nPaper: continuous (16.6, 33.3) ms for T/M; single "
              "(100, 300) ms for T; single (1, 10) s for L/T.\n");
  return 0;
}
