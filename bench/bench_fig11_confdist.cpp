//===- bench/bench_fig11_confdist.cpp - Fig. 11 ----------------------------------===//
//
// Part of the GreenWeb reproduction. Distributed under the MIT license.
//
// Regenerates Fig. 11: the ACMP configuration time distribution under
// GreenWeb-I (11a) and GreenWeb-U (11b) for each full-interaction
// session. The paper's observations: the imperceptible scenario biases
// toward the big (A15) cluster and higher frequencies far more than the
// usable scenario, which lives mostly on the little (A7) cluster.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "support/Statistics.h"

using namespace greenweb;
using bench::ResultCache;

namespace {

struct Distribution {
  double LittlePct = 0.0;
  double BigLowPct = 0.0;  // A15 at 800-1200 MHz
  double BigHighPct = 0.0; // A15 at 1300-1800 MHz
  double MeanBigMHz = 0.0; // busy-weighted mean A15 frequency
};

Distribution summarize(const ExperimentResult &R) {
  Distribution D;
  double Total = 0.0, Little = 0.0, BigLow = 0.0, BigHigh = 0.0;
  double BigTime = 0.0, BigWeighted = 0.0;
  for (const auto &[Config, T] : R.ConfigDistribution) {
    double S = T.secs();
    Total += S;
    if (Config.Core == CoreKind::Little) {
      Little += S;
      continue;
    }
    BigTime += S;
    BigWeighted += S * Config.FreqMHz;
    if (Config.FreqMHz <= 1200)
      BigLow += S;
    else
      BigHigh += S;
  }
  if (Total > 0.0) {
    D.LittlePct = 100.0 * Little / Total;
    D.BigLowPct = 100.0 * BigLow / Total;
    D.BigHighPct = 100.0 * BigHigh / Total;
  }
  D.MeanBigMHz = BigTime > 0.0 ? BigWeighted / BigTime : 0.0;
  return D;
}

} // namespace

int main(int Argc, char **Argv) {
  bench::BenchFlags Flags = bench::BenchFlags::parse(Argc, Argv);
  bench::ProfSession ProfGuard(Flags);
  bench::JsonReporter Json("bench_fig11_confdist", Flags.JsonPath);
  bench::banner("Fig. 11: architecture configuration distribution",
                "Time share per <core, frequency> under GreenWeb-I (11a) "
                "and GreenWeb-U (11b), Sec. 7.3");

  ResultCache Cache;
  {
    // Warm every sweep cell across --jobs workers (default serial);
    // results and telemetry are identical to serial cell-by-cell runs.
    std::vector<bench::BenchCell> Cells;
    for (const std::string &Name : allAppNames())
      for (const char *Gov : {governors::GreenWebI, governors::GreenWebU})
        Cells.push_back({Name, Gov, ExperimentMode::Full});
    Cache.prefetch(Cells, Flags.Jobs);
  }
  for (const char *Gov : {governors::GreenWebI, governors::GreenWebU}) {
    TablePrinter Table(formatString(
        "Fig. 11%s: %s", Gov == std::string(governors::GreenWebI) ? "a"
                                                                  : "b",
        Gov));
    Table.row()
        .cell("Application")
        .cell("A7 (%)")
        .cell("A15 800-1200 (%)")
        .cell("A15 1300-1800 (%)")
        .cell("mean A15 MHz");
    std::vector<double> BigShare;
    for (const std::string &Name : allAppNames()) {
      Distribution D =
          summarize(Cache.get(Name, Gov, ExperimentMode::Full));
      BigShare.push_back(D.BigLowPct + D.BigHighPct);
      Table.row()
          .cell(Name)
          .cell(D.LittlePct, 1)
          .cell(D.BigLowPct, 1)
          .cell(D.BigHighPct, 1)
          .cell(D.MeanBigMHz, 0);
    }
    Table.print();
    Json.table("Table", Table);
    std::printf("Mean A15 time share under %s: %.1f%%\n\n", Gov,
                mean(BigShare));
  }
  std::printf("Shape check: GreenWeb-I spends far more time on the A15 "
              "cluster than GreenWeb-U (paper Fig. 11a vs 11b), because "
              "the imperceptible targets often need big-core "
              "configurations while the usable targets fit the A7.\n");
  return 0;
}
