//===- bench/bench_throughput.cpp - simulation throughput harness ---------===//
//
// Part of the GreenWeb reproduction. Distributed under the MIT license.
//
// Measures the three hot paths the throughput overhaul targets, each
// against its retained reference implementation in the same run:
//
//   1. Event kernel: events/sec through the calendar-queue kernel vs
//      the pooled-control-block binary heap vs an in-file replica of
//      the original kernel (two std::make_shared<bool> flags per event,
//      std::priority_queue with a full event copy per pop).
//   2. Style resolution: recalcs/sec through the bucketed rule index
//      (cold after mutations, warm from the per-element cache) vs the
//      retained naive O(rules x selectors) scan.
//   3. Scenario throughput: the full_evaluation sweep wall-clock with
//      --jobs=1 vs --jobs=N through ParallelRunner.
//   4. Warm start: a repeat experiment run restoring shared page assets
//      (snapshot clone + shared rule index + adopted style cache) vs a
//      cold parse-everything run, plus a whole sweep with and without
//      the warm-asset cache and its setup-phase attribution.
//
// Writes BENCH_throughput.json (override with --json=<path>); the
// committed copy at the repo root records the numbers for the
// environment that produced it — regenerate with:
//
//   build/bench/bench_throughput --json=BENCH_throughput.json
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "css/CssParser.h"
#include "css/StyleResolver.h"
#include "dom/Dom.h"
#include "sim/Simulator.h"
#include "support/StringUtils.h"
#include "telemetry/SchedTrace.h"
#include "workloads/Experiment.h"
#include "workloads/ParallelRunner.h"
#include "workloads/WorkloadAssets.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <functional>
#include <memory>
#include <queue>
#include <string>
#include <vector>

using namespace greenweb;

namespace {

//===----------------------------------------------------------------------===//
// Legacy event kernel replica (the pre-overhaul design, kept here as the
// same-run baseline). Two heap-allocated shared_ptr<bool> flags per
// event, std::priority_queue, and a full event copy on every pop.
//===----------------------------------------------------------------------===//

class LegacyKernel {
public:
  struct Handle {
    std::shared_ptr<bool> Cancelled;
    void cancel() {
      if (Cancelled)
        *Cancelled = true;
    }
  };

  TimePoint now() const { return Now; }

  Handle schedule(Duration Delay, std::function<void()> Fn) {
    return scheduleAt(Now + Delay, std::move(Fn));
  }

  Handle scheduleAt(TimePoint When, std::function<void()> Fn) {
    Event E;
    E.When = When < Now ? Now : When;
    E.Seq = NextSeq++;
    E.Fn = std::move(Fn);
    E.Cancelled = std::make_shared<bool>(false);
    E.Fired = std::make_shared<bool>(false);
    Handle H{E.Cancelled};
    Queue.push(std::move(E));
    return H;
  }

  uint64_t run() {
    uint64_t Fired = 0;
    while (!Queue.empty()) {
      Event E = Queue.top(); // Copy, as the old kernel did.
      Queue.pop();
      if (*E.Cancelled)
        continue;
      Now = E.When;
      *E.Fired = true;
      ++Fired;
      E.Fn();
    }
    return Fired;
  }

private:
  struct Event {
    TimePoint When;
    uint64_t Seq = 0;
    std::function<void()> Fn;
    std::shared_ptr<bool> Cancelled;
    std::shared_ptr<bool> Fired;
  };
  struct Later {
    bool operator()(const Event &A, const Event &B) const {
      if (A.When != B.When)
        return A.When > B.When;
      return A.Seq > B.Seq;
    }
  };

  TimePoint Now;
  uint64_t NextSeq = 0;
  std::priority_queue<Event, std::vector<Event>, Later> Queue;
};

//===----------------------------------------------------------------------===//
// Self-timed measurement loop
//===----------------------------------------------------------------------===//

struct Measurement {
  uint64_t Ops = 0;
  double Seconds = 0.0;
  std::vector<double> SamplesNsPerOp; ///< Per-round ns/op, for gw-diff.
  double nsPerOp() const { return Ops ? Seconds / double(Ops) * 1e9 : 0; }
  double opsPerSec() const { return Seconds > 0 ? double(Ops) / Seconds : 0; }
};

/// Repeats \p Round (which returns the ops it performed) until at least
/// \p MinSeconds of wall clock accumulate, timing each round separately
/// so the JSON output can carry raw samples for significance testing.
Measurement measure(const std::function<uint64_t()> &Round,
                    double MinSeconds = 0.25) {
  Measurement M;
  auto Start = std::chrono::steady_clock::now();
  do {
    auto RoundStart = std::chrono::steady_clock::now();
    uint64_t Ops = Round();
    auto RoundEnd = std::chrono::steady_clock::now();
    M.Ops += Ops;
    if (Ops)
      M.SamplesNsPerOp.push_back(
          std::chrono::duration<double>(RoundEnd - RoundStart).count() /
          double(Ops) * 1e9);
    M.Seconds =
        std::chrono::duration<double>(RoundEnd - Start).count();
  } while (M.Seconds < MinSeconds);
  return M;
}

//===----------------------------------------------------------------------===//
// Workloads
//===----------------------------------------------------------------------===//

/// Steady-state timer churn, the shape the simulator actually sees.
/// Self-rescheduling chains keep a standing queue and every third fire
/// also schedules-and-cancels a decoy (exercising handle + lazy-cancel
/// costs); the round retires once Count fires have run. Two re-arm
/// patterns:
///
///  - Coalesced (the primary kernel comparison): every chain re-arms
///    onto the next 1 ms-aligned deadline, the way real browser work
///    clusters — vsync ticks, coalesced timers, DVFS epochs. Events
///    pile up at shared timestamps, so a kernel's batch-drain behavior
///    dominates: the calendar pops a whole cluster with cursor bumps
///    off one already-sorted bucket, while a heap pays a full
///    O(log n) sift per pop.
///
///  - Scattered: each chain re-arms a fixed 100 us out, timestamps
///    spread uniformly, queue stays shallow. Per-event fixed overhead
///    dominates and no kernel has much structural advantage; kept as
///    the honest lower bound on the calendar's win.
template <class Kernel> struct ChurnCtx {
  Kernel K;
  uint64_t Fires = 0;
  uint64_t Budget = 0;
  uint64_t Scheduled = 0;
  bool Coalesced = false;
};

template <class Kernel> void churnTick(ChurnCtx<Kernel> *C) {
  ++C->Fires;
  if (C->Budget == 0)
    return;
  --C->Budget;
  ++C->Scheduled;
  if (C->Coalesced) {
    // Next 1 ms boundary at least 100 us out.
    int64_t NowNs = C->K.now().nanos();
    int64_t Next = ((NowNs + 100'000) / 1'000'000 + 1) * 1'000'000;
    C->K.scheduleAt(TimePoint() + Duration::nanoseconds(Next),
                    [C] { churnTick(C); });
  } else {
    C->K.schedule(Duration::microseconds(100), [C] { churnTick(C); });
  }
  if (C->Fires % 3 == 0) {
    ++C->Scheduled;
    auto Decoy =
        C->K.schedule(Duration::microseconds(150), [C] { churnTick(C); });
    Decoy.cancel();
  }
}

/// Kernel-pinned simulators so the churn template measures each event
/// kernel explicitly, independent of the process default.
struct HeapSimulator : Simulator {
  HeapSimulator() : Simulator(EventKernel::Heap) {}
};
struct CalendarSimulator : Simulator {
  CalendarSimulator() : Simulator(EventKernel::Calendar) {}
};

template <class Kernel>
uint64_t eventChurnRound(unsigned Count, unsigned Chains, bool Coalesced) {
  ChurnCtx<Kernel> C;
  C.Budget = Count;
  C.Coalesced = Coalesced;
  for (unsigned I = 0; I < Chains && C.Budget > 0; ++I) {
    --C.Budget;
    ++C.Scheduled;
    C.K.schedule(Duration::nanoseconds(int64_t(I) * 97),
                 [&C] { churnTick(&C); });
  }
  C.K.run();
  return C.Scheduled; // Ops = every scheduled event, fired or cancelled.
}

struct StyleWorld {
  Document Doc;
  css::Stylesheet Sheet;
  std::vector<Element *> Elements;
};

/// A stylesheet with every selector shape the index buckets: compound
/// id/class/tag subjects, :QoS qualifiers, descendant and child
/// combinators, and a few universal rules.
std::unique_ptr<StyleWorld> makeStyleWorld(int Rules, int Elements) {
  auto W = std::make_unique<StyleWorld>();
  std::string Src;
  for (int I = 0; I < Rules; ++I) {
    switch (I % 5) {
    case 0:
      Src += formatString("div#id-%d.cls-%d:QoS { width: %dpx; "
                          "onclick-qos: single, short; }\n",
                          I, I % 7, I);
      break;
    case 1:
      Src += formatString(".cls-%d { color: c%d; }\n", I % 7, I);
      break;
    case 2:
      Src += formatString("#id-%d .cls-%d { margin: %dpx; }\n", I % 31,
                          I % 7, I);
      break;
    case 3:
      Src += formatString("div.cls-%d > span { padding: %dpx; }\n",
                          I % 7, I);
      break;
    default:
      Src += formatString("span#sid-%d { border: %dpx; }\n", I, I);
      break;
    }
  }
  Src += "* { display: inline; }\n";
  W->Sheet = css::parseStylesheet(Src);

  Element *Branch = &W->Doc.root();
  for (int I = 0; I < Elements; ++I) {
    const char *Tag = I % 3 == 0 ? "div" : (I % 3 == 1 ? "span" : "p");
    // Mix depths: every eighth element starts a new branch off root.
    if (I % 8 == 0)
      Branch = W->Doc.root().createChild("div");
    Element *E = Branch->createChild(Tag);
    E->setId(formatString("id-%d", I));
    E->addClass(formatString("cls-%d", I % 7));
    W->Elements.push_back(E);
    Branch = I % 4 == 0 ? E : Branch;
  }
  return W;
}

} // namespace

int main(int Argc, char **Argv) {
  bench::BenchFlags Flags = bench::BenchFlags::parse(Argc, Argv);
  bench::ProfSession ProfGuard(Flags);
  if (Flags.JsonPath.empty())
    Flags.JsonPath = "BENCH_throughput.json";
  bench::JsonReporter Json("bench_throughput", Flags.JsonPath);
  bench::banner("Simulation throughput",
                "Event-kernel, style-resolver, and parallel-sweep "
                "wall-clock performance (infrastructure, not paper data)");

  constexpr unsigned ChurnEvents = 50'000;
  constexpr unsigned ChurnChains = 1'024;

  // --- 1. Event kernel ---
  Measurement Legacy = measure([] {
    return eventChurnRound<LegacyKernel>(ChurnEvents, ChurnChains, true);
  });
  Measurement Pooled = measure([] {
    return eventChurnRound<HeapSimulator>(ChurnEvents, ChurnChains, true);
  });
  Measurement Calendar = measure([] {
    return eventChurnRound<CalendarSimulator>(ChurnEvents, ChurnChains,
                                              true);
  });
  double KernelSpeedup =
      Legacy.nsPerOp() > 0 ? Legacy.nsPerOp() / Pooled.nsPerOp() : 0;
  double CalendarSpeedup =
      Pooled.nsPerOp() > 0 ? Pooled.nsPerOp() / Calendar.nsPerOp() : 0;

  TablePrinter Kernel("Event kernel (coalesced churn: 1024 chains on 1ms "
                      "deadlines, 1/3 decoys cancelled)");
  Kernel.row().cell("kernel").cell("ns/event").cell("events/sec");
  Kernel.row()
      .cell("legacy (2x shared_ptr<bool>)")
      .cell(Legacy.nsPerOp(), 1)
      .cell(Legacy.opsPerSec(), 0);
  Kernel.row()
      .cell("pooled binary heap")
      .cell(Pooled.nsPerOp(), 1)
      .cell(Pooled.opsPerSec(), 0);
  Kernel.row()
      .cell("calendar queue")
      .cell(Calendar.nsPerOp(), 1)
      .cell(Calendar.opsPerSec(), 0);
  Kernel.print();
  std::printf("event-kernel speedup: %.2fx heap vs legacy, %.2fx "
              "calendar vs heap\n\n",
              KernelSpeedup, CalendarSpeedup);

  Json.metric("event_kernel_legacy", Legacy.Ops, Legacy.nsPerOp(),
              "events_per_sec", Legacy.opsPerSec(), "",
              Legacy.SamplesNsPerOp);
  Json.metric("event_kernel_pooled", Pooled.Ops, Pooled.nsPerOp(),
              "events_per_sec", Pooled.opsPerSec(), "",
              Pooled.SamplesNsPerOp);
  Json.metric("event_kernel_calendar", Calendar.Ops, Calendar.nsPerOp(),
              "events_per_sec", Calendar.opsPerSec(), "",
              Calendar.SamplesNsPerOp);
  Json.scalar("event_kernel_speedup", KernelSpeedup, "x");
  Json.scalar("event_kernel_calendar_speedup", CalendarSpeedup, "x");

  // Scattered variant: shallow 32-chain queue, uniform 100 us re-arms.
  // No batch-drain advantage here; this is the calendar's worst case
  // and must still not lose to the heap.
  Measurement ScatHeap = measure(
      [] { return eventChurnRound<HeapSimulator>(10'000, 32, false); });
  Measurement ScatCal = measure([] {
    return eventChurnRound<CalendarSimulator>(10'000, 32, false);
  });
  double ScatSpeedup =
      ScatHeap.nsPerOp() > 0 ? ScatHeap.nsPerOp() / ScatCal.nsPerOp() : 0;
  std::printf("scattered churn (32 chains): heap %.1f ns/ev, calendar "
              "%.1f ns/ev (%.2fx)\n\n",
              ScatHeap.nsPerOp(), ScatCal.nsPerOp(), ScatSpeedup);
  Json.metric("event_churn_scattered_pooled", ScatHeap.Ops,
              ScatHeap.nsPerOp(), "events_per_sec", ScatHeap.opsPerSec(),
              "", ScatHeap.SamplesNsPerOp);
  Json.metric("event_churn_scattered_calendar", ScatCal.Ops,
              ScatCal.nsPerOp(), "events_per_sec", ScatCal.opsPerSec(),
              "", ScatCal.SamplesNsPerOp);
  Json.scalar("event_churn_scattered_speedup", ScatSpeedup, "x");

  // --- 2. Style resolution ---
  auto W = makeStyleWorld(400, 160);
  css::StyleResolver Resolver(W->Sheet);
  auto RecalcAll = [&](bool Naive, bool Mutate) {
    if (Mutate)
      W->Doc.bumpStyleVersion(); // Invalidates every cache entry.
    uint64_t Matched = 0;
    for (Element *E : W->Elements)
      Matched += Naive ? Resolver.matchRulesNaive(*E).size()
                       : Resolver.matchRules(*E).size();
    // Ops = elements recalculated; fold Matched in so the work cannot
    // be optimized away.
    return uint64_t(W->Elements.size()) + (Matched & 0);
  };

  Measurement Naive =
      measure([&] { return RecalcAll(/*Naive=*/true, /*Mutate=*/true); });
  Measurement Cold =
      measure([&] { return RecalcAll(/*Naive=*/false, /*Mutate=*/true); });
  Measurement Warm =
      measure([&] { return RecalcAll(/*Naive=*/false, /*Mutate=*/false); });
  double StyleSpeedupCold = Naive.nsPerOp() / Cold.nsPerOp();
  double StyleSpeedupWarm = Naive.nsPerOp() / Warm.nsPerOp();

  TablePrinter Style(
      "Style resolution (400 rules, 160 elements per recalc)");
  Style.row().cell("resolver").cell("ns/element").cell("recalcs/sec");
  Style.row()
      .cell("naive scan")
      .cell(Naive.nsPerOp(), 1)
      .cell(Naive.opsPerSec(), 0);
  Style.row()
      .cell("indexed, cold (mutation churn)")
      .cell(Cold.nsPerOp(), 1)
      .cell(Cold.opsPerSec(), 0);
  Style.row()
      .cell("indexed, warm (element cache)")
      .cell(Warm.nsPerOp(), 1)
      .cell(Warm.opsPerSec(), 0);
  Style.print();
  std::printf("style-resolution speedup: %.2fx cold, %.2fx warm\n\n",
              StyleSpeedupCold, StyleSpeedupWarm);

  Json.metric("style_naive", Naive.Ops, Naive.nsPerOp(),
              "recalcs_per_sec", Naive.opsPerSec(), "",
              Naive.SamplesNsPerOp);
  Json.metric("style_indexed_cold", Cold.Ops, Cold.nsPerOp(),
              "recalcs_per_sec", Cold.opsPerSec(), "",
              Cold.SamplesNsPerOp);
  Json.metric("style_indexed_warm", Warm.Ops, Warm.nsPerOp(),
              "recalcs_per_sec", Warm.opsPerSec(), "",
              Warm.SamplesNsPerOp);
  Json.scalar("style_speedup_cold", StyleSpeedupCold, "x");
  Json.scalar("style_speedup_warm", StyleSpeedupWarm, "x");

  // --- 3. Parallel scenario sweep ---
  std::vector<ExperimentConfig> Configs;
  for (const char *App : {"CamanJS", "Todo", "Goo.ne.jp"})
    for (const char *Gov :
         {governors::Perf, governors::Interactive, governors::GreenWebI,
          governors::GreenWebU}) {
      ExperimentConfig C;
      C.AppName = App;
      C.GovernorName = Gov;
      Configs.push_back(std::move(C));
    }
  auto SweepSecs = [&](unsigned Jobs, SchedTrace *Sched = nullptr,
                       WarmCache *Warm = nullptr) {
    // A metrics-only shared hub, as every real sweep runs (bench
    // prefetch, chaos soak): the post-batch config-order merge is part
    // of what the scheduler report attributes.
    Telemetry Tel;
    Tel.setLogCapacity(0);
    ParallelExperimentOptions Opts;
    Opts.Jobs = Jobs;
    Opts.SharedTel = &Tel;
    Opts.JobLogCapacity = 0;
    Opts.Sched = Sched;
    Opts.Warm = Warm;
    SchedProgress Progress;
    if (Flags.Progress && Jobs > 1) {
      Opts.Progress = &Progress;
      Opts.ProgressLabel = formatString("sweep jobs=%u", Jobs);
    }
    auto Start = std::chrono::steady_clock::now();
    runExperimentsParallel(Configs, Opts);
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - Start)
        .count();
  };
  // Default the parallel leg to hardware concurrency (clamped), but
  // never below 2: even a single-core host should exercise the
  // ParallelRunner's threaded path rather than silently degenerate to a
  // second serial run. --jobs=N overrides (0 = hardware).
  unsigned HwThreads = ParallelRunner(0).jobs();
  unsigned SweepJobs = Flags.JobsSet
                           ? ParallelRunner(Flags.Jobs).jobs()
                           : std::max(2u, std::min(HwThreads, 16u));
  double Serial = SweepSecs(1);
  // The parallel leg runs with the scheduler trace attached (its
  // overhead on a metrics-only sweep is <2%; see bench_telemetry), so
  // the efficiency attribution describes the timed run itself.
  SchedTrace Sched;
  double Parallel = SweepSecs(SweepJobs, &Sched);
  double SweepSpeedup = Parallel > 0 ? Serial / Parallel : 0;
  SchedReport Report = SchedReport::fromTrace(Sched);

  TablePrinter Sweep("Scenario sweep (12 simulations)");
  Sweep.row().cell("jobs").cell("wall seconds");
  Sweep.row().cell("1").cell(Serial, 3);
  Sweep.row().cell(formatString("%u", SweepJobs)).cell(Parallel, 3);
  Sweep.print();
  std::printf("sweep speedup: %.2fx with %u jobs (%u hardware threads "
              "on this host)\n\n",
              SweepSpeedup, SweepJobs, HwThreads);
  // Bench-meta honesty: a single-core host still runs the parallel leg
  // with >= 2 jobs (see SweepJobs above), so the "speedup" there
  // measures oversubscription cost, not scaling. Record jobs-vs-cores
  // in the artifact and annotate the affected scalars so readers and
  // CI gates interpret a sub-1x value for what it is.
  bool Oversubscribed = SweepJobs > HwThreads;
  std::string SweepNote =
      Oversubscribed ? formatString(
                           "oversubscribed: %u jobs on %u hardware "
                           "threads; measures scheduling cost, not scaling",
                           SweepJobs, HwThreads)
                     : "";
  if (Oversubscribed)
    std::printf("note: sweep leg is oversubscribed (%u jobs on %u "
                "hardware threads); a speedup below 1x here is "
                "context-switch overhead, not a scaling regression\n\n",
                SweepJobs, HwThreads);
  std::printf("%s", Report.format().c_str());

  Json.scalar("sweep_serial_seconds", Serial, "s");
  Json.scalar("sweep_parallel_seconds", Parallel, "s", {}, SweepNote);
  Json.scalar("sweep_jobs", double(SweepJobs));
  Json.scalar("sweep_hardware_threads", double(HwThreads));
  Json.scalar("jobs_vs_cores",
              HwThreads ? double(SweepJobs) / double(HwThreads) : 0.0,
              "x", {}, SweepNote);
  Json.scalar("sweep_speedup", SweepSpeedup, "x", {}, SweepNote);
  Json.scalar("sweep_efficiency", Report.Efficiency, "", {}, SweepNote);
  Json.scalar("sweep_imbalance_fraction", Report.ImbalanceFraction);
  Json.scalar("sweep_overhead_fraction", Report.OverheadFraction);
  Json.scalar("sweep_merge_fraction", Report.MergeFraction);
  for (const SchedReport::Worker &W : Report.PerWorker)
    Json.scalar(formatString("sweep_worker_%u_utilization", W.Id),
                W.Utilization);

  // --- 4. Warm start ---
  // Single run, cold vs warm: the warm round restores the prebuilt page
  // snapshot (cloned DOM prototype, shared rule index, adopted style
  // cache) instead of parsing; simulated output is byte-identical
  // (tests/workloads/WarmStartTest.cpp pins that), so the delta is pure
  // setup work removed.
  {
    ExperimentConfig RunCfg;
    RunCfg.AppName = "Goo.ne.jp"; // largest page: biggest parse share
    Measurement ColdRun = measure([&] {
      runExperiment(RunCfg);
      return uint64_t(1);
    });
    PageAssets Assets = buildPageAssets(RunCfg.AppName, RunCfg.Seed);
    ExperimentConfig WarmCfg = RunCfg;
    WarmCfg.Warm = &Assets;
    Measurement WarmRun = measure([&] {
      runExperiment(WarmCfg);
      return uint64_t(1);
    });
    double WarmSpeedup = WarmRun.nsPerOp() > 0
                             ? ColdRun.nsPerOp() / WarmRun.nsPerOp()
                             : 0;

    // Whole sweep with the shared warm cache, modeling the repeat-sweep
    // loop (tuning sessions, median seeds, chaos soaks re-running the
    // same matrix): assets for every (app, seed) already exist from the
    // previous pass, so every run restores. Both legs are re-timed
    // best-of-3 — a 12-sim sweep is ~10 ms of wall and single shots are
    // at this host's noise floor. The scheduler traces' setup phase
    // shows where the time went.
    WarmCache Cache;
    for (const ExperimentConfig &C : Configs)
      Cache.get(C.AppName, C.Seed);
    // Each leg: best-of-3 wall clock, setup fraction aggregated over
    // all three traces (36 items) — single traces inherit too much
    // host-scheduling noise on a busy runner.
    auto SweepLeg = [&](WarmCache *Warm, double &SetupFrac) {
      double Best = 0;
      int64_t Setup = 0, Total = 0;
      for (int Rep = 0; Rep < 3; ++Rep) {
        SchedTrace Trace;
        double Secs = SweepSecs(SweepJobs, &Trace, Warm);
        Best = Rep == 0 ? Secs : std::min(Best, Secs);
        for (const SchedItem &I : Trace.items()) {
          Setup += I.SetupNs;
          Total += I.RunNs;
        }
      }
      SetupFrac = Total > 0 ? double(Setup) / double(Total) : 0.0;
      return Best;
    };
    double ColdSetupFrac = 0, WarmSetupFrac = 0;
    double ColdSweep = SweepLeg(nullptr, ColdSetupFrac);
    double WarmSweep = SweepLeg(&Cache, WarmSetupFrac);
    double SweepWarmSpeedup = WarmSweep > 0 ? ColdSweep / WarmSweep : 0;

    TablePrinter Warm("Warm start (restore shared page assets vs cold "
                      "parse)");
    Warm.row().cell("leg").cell("ms/run").cell("speedup");
    Warm.row()
        .cell("cold single run")
        .cell(ColdRun.nsPerOp() / 1e6, 2)
        .cell("1.00x");
    Warm.row()
        .cell("warm single run")
        .cell(WarmRun.nsPerOp() / 1e6, 2)
        .cell(formatString("%.2fx", WarmSpeedup));
    Warm.row()
        .cell("cold sweep (12 sims)")
        .cell(ColdSweep * 1e3, 1)
        .cell("1.00x");
    Warm.row()
        .cell("warm sweep (12 sims)")
        .cell(WarmSweep * 1e3, 1)
        .cell(formatString("%.2fx", SweepWarmSpeedup));
    Warm.print();
    std::printf("setup-phase share of worker time: %.1f%% cold -> "
                "%.1f%% warm\n\n",
                ColdSetupFrac * 100.0, WarmSetupFrac * 100.0);

    Json.metric("cold_start_run", ColdRun.Ops, ColdRun.nsPerOp(),
                "runs_per_sec", ColdRun.opsPerSec(), "",
                ColdRun.SamplesNsPerOp);
    Json.metric("warm_start_run", WarmRun.Ops, WarmRun.nsPerOp(),
                "runs_per_sec", WarmRun.opsPerSec(), "",
                WarmRun.SamplesNsPerOp);
    Json.scalar("warm_start_speedup", WarmSpeedup, "x");
    Json.scalar("sweep_cold_seconds", ColdSweep, "s");
    Json.scalar("sweep_warm_seconds", WarmSweep, "s");
    Json.scalar("sweep_warm_speedup", SweepWarmSpeedup, "x");
    Json.scalar("sweep_cold_setup_fraction", ColdSetupFrac);
    Json.scalar("sweep_warm_setup_fraction", WarmSetupFrac);
  }

  if (!Flags.SchedPath.empty()) {
    std::ofstream Out(Flags.SchedPath);
    if (Out) {
      Out << schedArtifactJson(Sched, Report);
      std::printf("wrote scheduler trace to %s\n",
                  Flags.SchedPath.c_str());
    } else {
      std::fprintf(stderr, "warning: cannot write %s\n",
                   Flags.SchedPath.c_str());
    }
  }

  std::printf("\nJSON written to %s\n", Flags.JsonPath.c_str());
  return 0;
}
