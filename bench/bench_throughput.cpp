//===- bench/bench_throughput.cpp - simulation throughput harness ---------===//
//
// Part of the GreenWeb reproduction. Distributed under the MIT license.
//
// Measures the three hot paths the throughput overhaul targets, each
// against its retained reference implementation in the same run:
//
//   1. Event kernel: events/sec through the pooled-control-block kernel
//      vs an in-file replica of the previous kernel (two
//      std::make_shared<bool> flags per event, std::priority_queue with
//      a full event copy per pop).
//   2. Style resolution: recalcs/sec through the bucketed rule index
//      (cold after mutations, warm from the per-element cache) vs the
//      retained naive O(rules x selectors) scan.
//   3. Scenario throughput: the full_evaluation sweep wall-clock with
//      --jobs=1 vs --jobs=N through ParallelRunner.
//
// Writes BENCH_throughput.json (override with --json=<path>); the
// committed copy at the repo root records the numbers for the
// environment that produced it — regenerate with:
//
//   build/bench/bench_throughput --json=BENCH_throughput.json
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "css/CssParser.h"
#include "css/StyleResolver.h"
#include "dom/Dom.h"
#include "sim/Simulator.h"
#include "support/StringUtils.h"
#include "telemetry/SchedTrace.h"
#include "workloads/Experiment.h"
#include "workloads/ParallelRunner.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <functional>
#include <memory>
#include <queue>
#include <string>
#include <vector>

using namespace greenweb;

namespace {

//===----------------------------------------------------------------------===//
// Legacy event kernel replica (the pre-overhaul design, kept here as the
// same-run baseline). Two heap-allocated shared_ptr<bool> flags per
// event, std::priority_queue, and a full event copy on every pop.
//===----------------------------------------------------------------------===//

class LegacyKernel {
public:
  struct Handle {
    std::shared_ptr<bool> Cancelled;
    void cancel() {
      if (Cancelled)
        *Cancelled = true;
    }
  };

  Handle schedule(Duration Delay, std::function<void()> Fn) {
    Event E;
    E.When = Now + Delay;
    E.Seq = NextSeq++;
    E.Fn = std::move(Fn);
    E.Cancelled = std::make_shared<bool>(false);
    E.Fired = std::make_shared<bool>(false);
    Handle H{E.Cancelled};
    Queue.push(std::move(E));
    return H;
  }

  uint64_t run() {
    uint64_t Fired = 0;
    while (!Queue.empty()) {
      Event E = Queue.top(); // Copy, as the old kernel did.
      Queue.pop();
      if (*E.Cancelled)
        continue;
      Now = E.When;
      *E.Fired = true;
      ++Fired;
      E.Fn();
    }
    return Fired;
  }

private:
  struct Event {
    TimePoint When;
    uint64_t Seq = 0;
    std::function<void()> Fn;
    std::shared_ptr<bool> Cancelled;
    std::shared_ptr<bool> Fired;
  };
  struct Later {
    bool operator()(const Event &A, const Event &B) const {
      if (A.When != B.When)
        return A.When > B.When;
      return A.Seq > B.Seq;
    }
  };

  TimePoint Now;
  uint64_t NextSeq = 0;
  std::priority_queue<Event, std::vector<Event>, Later> Queue;
};

//===----------------------------------------------------------------------===//
// Self-timed measurement loop
//===----------------------------------------------------------------------===//

struct Measurement {
  uint64_t Ops = 0;
  double Seconds = 0.0;
  std::vector<double> SamplesNsPerOp; ///< Per-round ns/op, for gw-diff.
  double nsPerOp() const { return Ops ? Seconds / double(Ops) * 1e9 : 0; }
  double opsPerSec() const { return Seconds > 0 ? double(Ops) / Seconds : 0; }
};

/// Repeats \p Round (which returns the ops it performed) until at least
/// \p MinSeconds of wall clock accumulate, timing each round separately
/// so the JSON output can carry raw samples for significance testing.
Measurement measure(const std::function<uint64_t()> &Round,
                    double MinSeconds = 0.25) {
  Measurement M;
  auto Start = std::chrono::steady_clock::now();
  do {
    auto RoundStart = std::chrono::steady_clock::now();
    uint64_t Ops = Round();
    auto RoundEnd = std::chrono::steady_clock::now();
    M.Ops += Ops;
    if (Ops)
      M.SamplesNsPerOp.push_back(
          std::chrono::duration<double>(RoundEnd - RoundStart).count() /
          double(Ops) * 1e9);
    M.Seconds =
        std::chrono::duration<double>(RoundEnd - Start).count();
  } while (M.Seconds < MinSeconds);
  return M;
}

//===----------------------------------------------------------------------===//
// Workloads
//===----------------------------------------------------------------------===//

/// Steady-state timer churn, the shape the simulator actually sees:
/// 32 self-rescheduling chains keep a small queue, every third fire
/// also schedules-and-cancels a decoy (exercising handle + lazy-cancel
/// costs), and the round retires once Count fires have run. Per-event
/// kernel overhead dominates, not heap-sift depth.
template <class Kernel> struct ChurnCtx {
  Kernel K;
  uint64_t Fires = 0;
  uint64_t Budget = 0;
  uint64_t Scheduled = 0;
};

template <class Kernel> void churnTick(ChurnCtx<Kernel> *C) {
  ++C->Fires;
  if (C->Budget == 0)
    return;
  --C->Budget;
  ++C->Scheduled;
  C->K.schedule(Duration::microseconds(100), [C] { churnTick(C); });
  if (C->Fires % 3 == 0) {
    ++C->Scheduled;
    auto Decoy =
        C->K.schedule(Duration::microseconds(150), [C] { churnTick(C); });
    Decoy.cancel();
  }
}

template <class Kernel> uint64_t eventChurnRound(unsigned Count) {
  ChurnCtx<Kernel> C;
  C.Budget = Count;
  for (unsigned I = 0; I < 32 && C.Budget > 0; ++I) {
    --C.Budget;
    ++C.Scheduled;
    C.K.schedule(Duration::microseconds(I), [&C] { churnTick(&C); });
  }
  C.K.run();
  return C.Scheduled; // Ops = every scheduled event, fired or cancelled.
}

struct StyleWorld {
  Document Doc;
  css::Stylesheet Sheet;
  std::vector<Element *> Elements;
};

/// A stylesheet with every selector shape the index buckets: compound
/// id/class/tag subjects, :QoS qualifiers, descendant and child
/// combinators, and a few universal rules.
std::unique_ptr<StyleWorld> makeStyleWorld(int Rules, int Elements) {
  auto W = std::make_unique<StyleWorld>();
  std::string Src;
  for (int I = 0; I < Rules; ++I) {
    switch (I % 5) {
    case 0:
      Src += formatString("div#id-%d.cls-%d:QoS { width: %dpx; "
                          "onclick-qos: single, short; }\n",
                          I, I % 7, I);
      break;
    case 1:
      Src += formatString(".cls-%d { color: c%d; }\n", I % 7, I);
      break;
    case 2:
      Src += formatString("#id-%d .cls-%d { margin: %dpx; }\n", I % 31,
                          I % 7, I);
      break;
    case 3:
      Src += formatString("div.cls-%d > span { padding: %dpx; }\n",
                          I % 7, I);
      break;
    default:
      Src += formatString("span#sid-%d { border: %dpx; }\n", I, I);
      break;
    }
  }
  Src += "* { display: inline; }\n";
  W->Sheet = css::parseStylesheet(Src);

  Element *Branch = &W->Doc.root();
  for (int I = 0; I < Elements; ++I) {
    const char *Tag = I % 3 == 0 ? "div" : (I % 3 == 1 ? "span" : "p");
    // Mix depths: every eighth element starts a new branch off root.
    if (I % 8 == 0)
      Branch = W->Doc.root().createChild("div");
    Element *E = Branch->createChild(Tag);
    E->setId(formatString("id-%d", I));
    E->addClass(formatString("cls-%d", I % 7));
    W->Elements.push_back(E);
    Branch = I % 4 == 0 ? E : Branch;
  }
  return W;
}

} // namespace

int main(int Argc, char **Argv) {
  bench::BenchFlags Flags = bench::BenchFlags::parse(Argc, Argv);
  bench::ProfSession ProfGuard(Flags);
  if (Flags.JsonPath.empty())
    Flags.JsonPath = "BENCH_throughput.json";
  bench::JsonReporter Json("bench_throughput", Flags.JsonPath);
  bench::banner("Simulation throughput",
                "Event-kernel, style-resolver, and parallel-sweep "
                "wall-clock performance (infrastructure, not paper data)");

  constexpr unsigned ChurnEvents = 10'000;

  // --- 1. Event kernel ---
  Measurement Legacy = measure(
      [] { return eventChurnRound<LegacyKernel>(ChurnEvents); });
  Measurement Pooled =
      measure([] { return eventChurnRound<Simulator>(ChurnEvents); });
  double KernelSpeedup =
      Legacy.nsPerOp() > 0 ? Legacy.nsPerOp() / Pooled.nsPerOp() : 0;

  TablePrinter Kernel("Event kernel (steady-state churn, 10k fires, 1/3 decoys cancelled)");
  Kernel.row().cell("kernel").cell("ns/event").cell("events/sec");
  Kernel.row()
      .cell("legacy (2x shared_ptr<bool>)")
      .cell(Legacy.nsPerOp(), 1)
      .cell(Legacy.opsPerSec(), 0);
  Kernel.row()
      .cell("pooled control slab")
      .cell(Pooled.nsPerOp(), 1)
      .cell(Pooled.opsPerSec(), 0);
  Kernel.print();
  std::printf("event-kernel speedup: %.2fx\n\n", KernelSpeedup);

  Json.metric("event_kernel_legacy", Legacy.Ops, Legacy.nsPerOp(),
              "events_per_sec", Legacy.opsPerSec(), "",
              Legacy.SamplesNsPerOp);
  Json.metric("event_kernel_pooled", Pooled.Ops, Pooled.nsPerOp(),
              "events_per_sec", Pooled.opsPerSec(), "",
              Pooled.SamplesNsPerOp);
  Json.scalar("event_kernel_speedup", KernelSpeedup, "x");

  // --- 2. Style resolution ---
  auto W = makeStyleWorld(400, 160);
  css::StyleResolver Resolver(W->Sheet);
  auto RecalcAll = [&](bool Naive, bool Mutate) {
    if (Mutate)
      W->Doc.bumpStyleVersion(); // Invalidates every cache entry.
    uint64_t Matched = 0;
    for (Element *E : W->Elements)
      Matched += Naive ? Resolver.matchRulesNaive(*E).size()
                       : Resolver.matchRules(*E).size();
    // Ops = elements recalculated; fold Matched in so the work cannot
    // be optimized away.
    return uint64_t(W->Elements.size()) + (Matched & 0);
  };

  Measurement Naive =
      measure([&] { return RecalcAll(/*Naive=*/true, /*Mutate=*/true); });
  Measurement Cold =
      measure([&] { return RecalcAll(/*Naive=*/false, /*Mutate=*/true); });
  Measurement Warm =
      measure([&] { return RecalcAll(/*Naive=*/false, /*Mutate=*/false); });
  double StyleSpeedupCold = Naive.nsPerOp() / Cold.nsPerOp();
  double StyleSpeedupWarm = Naive.nsPerOp() / Warm.nsPerOp();

  TablePrinter Style(
      "Style resolution (400 rules, 160 elements per recalc)");
  Style.row().cell("resolver").cell("ns/element").cell("recalcs/sec");
  Style.row()
      .cell("naive scan")
      .cell(Naive.nsPerOp(), 1)
      .cell(Naive.opsPerSec(), 0);
  Style.row()
      .cell("indexed, cold (mutation churn)")
      .cell(Cold.nsPerOp(), 1)
      .cell(Cold.opsPerSec(), 0);
  Style.row()
      .cell("indexed, warm (element cache)")
      .cell(Warm.nsPerOp(), 1)
      .cell(Warm.opsPerSec(), 0);
  Style.print();
  std::printf("style-resolution speedup: %.2fx cold, %.2fx warm\n\n",
              StyleSpeedupCold, StyleSpeedupWarm);

  Json.metric("style_naive", Naive.Ops, Naive.nsPerOp(),
              "recalcs_per_sec", Naive.opsPerSec(), "",
              Naive.SamplesNsPerOp);
  Json.metric("style_indexed_cold", Cold.Ops, Cold.nsPerOp(),
              "recalcs_per_sec", Cold.opsPerSec(), "",
              Cold.SamplesNsPerOp);
  Json.metric("style_indexed_warm", Warm.Ops, Warm.nsPerOp(),
              "recalcs_per_sec", Warm.opsPerSec(), "",
              Warm.SamplesNsPerOp);
  Json.scalar("style_speedup_cold", StyleSpeedupCold, "x");
  Json.scalar("style_speedup_warm", StyleSpeedupWarm, "x");

  // --- 3. Parallel scenario sweep ---
  std::vector<ExperimentConfig> Configs;
  for (const char *App : {"CamanJS", "Todo", "Goo.ne.jp"})
    for (const char *Gov :
         {governors::Perf, governors::Interactive, governors::GreenWebI,
          governors::GreenWebU}) {
      ExperimentConfig C;
      C.AppName = App;
      C.GovernorName = Gov;
      Configs.push_back(std::move(C));
    }
  auto SweepSecs = [&](unsigned Jobs, SchedTrace *Sched = nullptr) {
    // A metrics-only shared hub, as every real sweep runs (bench
    // prefetch, chaos soak): the post-batch config-order merge is part
    // of what the scheduler report attributes.
    Telemetry Tel;
    Tel.setLogCapacity(0);
    ParallelExperimentOptions Opts;
    Opts.Jobs = Jobs;
    Opts.SharedTel = &Tel;
    Opts.JobLogCapacity = 0;
    Opts.Sched = Sched;
    SchedProgress Progress;
    if (Flags.Progress && Jobs > 1) {
      Opts.Progress = &Progress;
      Opts.ProgressLabel = formatString("sweep jobs=%u", Jobs);
    }
    auto Start = std::chrono::steady_clock::now();
    runExperimentsParallel(Configs, Opts);
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - Start)
        .count();
  };
  // Default the parallel leg to hardware concurrency (clamped), but
  // never below 2: even a single-core host should exercise the
  // ParallelRunner's threaded path rather than silently degenerate to a
  // second serial run. --jobs=N overrides (0 = hardware).
  unsigned HwThreads = ParallelRunner(0).jobs();
  unsigned SweepJobs = Flags.JobsSet
                           ? ParallelRunner(Flags.Jobs).jobs()
                           : std::max(2u, std::min(HwThreads, 16u));
  double Serial = SweepSecs(1);
  // The parallel leg runs with the scheduler trace attached (its
  // overhead on a metrics-only sweep is <2%; see bench_telemetry), so
  // the efficiency attribution describes the timed run itself.
  SchedTrace Sched;
  double Parallel = SweepSecs(SweepJobs, &Sched);
  double SweepSpeedup = Parallel > 0 ? Serial / Parallel : 0;
  SchedReport Report = SchedReport::fromTrace(Sched);

  TablePrinter Sweep("Scenario sweep (12 simulations)");
  Sweep.row().cell("jobs").cell("wall seconds");
  Sweep.row().cell("1").cell(Serial, 3);
  Sweep.row().cell(formatString("%u", SweepJobs)).cell(Parallel, 3);
  Sweep.print();
  std::printf("sweep speedup: %.2fx with %u jobs (%u hardware threads "
              "on this host)\n\n",
              SweepSpeedup, SweepJobs, HwThreads);
  std::printf("%s", Report.format().c_str());

  Json.scalar("sweep_serial_seconds", Serial, "s");
  Json.scalar("sweep_parallel_seconds", Parallel, "s");
  Json.scalar("sweep_jobs", double(SweepJobs));
  Json.scalar("sweep_speedup", SweepSpeedup, "x");
  Json.scalar("sweep_efficiency", Report.Efficiency);
  Json.scalar("sweep_imbalance_fraction", Report.ImbalanceFraction);
  Json.scalar("sweep_overhead_fraction", Report.OverheadFraction);
  Json.scalar("sweep_merge_fraction", Report.MergeFraction);
  for (const SchedReport::Worker &W : Report.PerWorker)
    Json.scalar(formatString("sweep_worker_%u_utilization", W.Id),
                W.Utilization);

  if (!Flags.SchedPath.empty()) {
    std::ofstream Out(Flags.SchedPath);
    if (Out) {
      Out << schedArtifactJson(Sched, Report);
      std::printf("wrote scheduler trace to %s\n",
                  Flags.SchedPath.c_str());
    } else {
      std::fprintf(stderr, "warning: cannot write %s\n",
                   Flags.SchedPath.c_str());
    }
  }

  std::printf("\nJSON written to %s\n", Flags.JsonPath.c_str());
  return 0;
}
