//===- bench/bench_table2_api.cpp - Table 2 -------------------------------------===//
//
// Part of the GreenWeb reproduction. Distributed under the MIT license.
//
// Regenerates Table 2: the GreenWeb API forms. Each row's syntax is
// parsed through the real CSS front end and lowered through the real
// semantics (Table 1 defaults), and the resulting runtime meaning is
// printed. A malformed-declarations section demonstrates the grammar's
// error handling.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "css/CssParser.h"
#include "css/StyleResolver.h"
#include "dom/Dom.h"
#include "greenweb/Qos.h"

using namespace greenweb;

int main(int Argc, char **Argv) {
  bench::BenchFlags Flags = bench::BenchFlags::parse(Argc, Argv);
  bench::ProfSession ProfGuard(Flags);
  bench::JsonReporter Json("bench_table2_api", Flags.JsonPath);
  bench::banner("Table 2: GreenWeb API specification",
                "Each API is a new CSS rule specifying QoS information "
                "(Sec. 4.1, Fig. 3 grammar)");

  struct Row {
    const char *Css;
    const char *PaperSemantics;
  };
  const Row Rows[] = {
      {"div#e:QoS { ontouchstart-qos: continuous; }",
       "continuously optimize frame latency; Table 1 defaults"},
      {"div#e:QoS { onclick-qos: single, short; }",
       "optimize the single response frame; short expectation"},
      {"div#e:QoS { onclick-qos: single, long; }",
       "optimize the single response frame; long expectation"},
      {"div#e:QoS { ontouchmove-qos: continuous, 20, 100; }",
       "explicit TI/TU override (Fig. 5 example)"},
      {"div#e:QoS { onclick-qos: single, 1000, 10000; }",
       "explicit TI/TU on a single event"},
  };

  Document Doc;
  Element *E = Doc.root().createChild("div");
  E->setId("e");

  TablePrinter Table;
  Table.row().cell("Syntax").cell("Parsed semantics").cell("Paper row");
  for (const Row &R : Rows) {
    css::Stylesheet Sheet = css::parseStylesheet(R.Css);
    css::StyleResolver Resolver(Sheet);
    std::vector<css::QosAnnotation> Anns = Resolver.qosAnnotationsFor(*E);
    std::string Meaning = "<parse failed>";
    if (Anns.size() == 1) {
      QosSpec Spec = lowerQosValue(Anns[0].Value);
      Meaning = formatString("on %s: %s", Anns[0].EventName.c_str(),
                             Spec.str().c_str());
    }
    Table.row().cell(R.Css).cell(Meaning).cell(R.PaperSemantics);
  }
  Table.print();
  Json.table("Table", Table);

  std::printf("\nMalformed declarations (grammar enforcement: TI and TU "
              "must appear together, etc.):\n");
  const char *Bad[] = {
      "div#e:QoS { onclick-qos: continuous, 20; }",
      "div#e:QoS { onclick-qos: sometimes; }",
      "div#e { onclick-qos: single, short; }", // missing :QoS qualifier
  };
  for (const char *Css : Bad) {
    css::Stylesheet Sheet = css::parseStylesheet(Css);
    css::StyleResolver Resolver(Sheet);
    std::vector<std::string> Diags;
    Resolver.qosAnnotationsFor(*E, &Diags);
    std::printf("  %-52s -> %s\n", Css,
                Diags.empty() ? "accepted (?)" : Diags[0].c_str());
  }
  return 0;
}
