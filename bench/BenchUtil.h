//===- bench/BenchUtil.h - shared benchmark helpers --------------*- C++ -*-===//
//
// Part of the GreenWeb reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers shared by the per-table/figure benchmark harnesses: cached
/// median experiment runs (the paper's three-seed protocol, Sec. 7.1)
/// and common formatting.
///
//===----------------------------------------------------------------------===//

#ifndef GREENWEB_BENCH_BENCHUTIL_H
#define GREENWEB_BENCH_BENCHUTIL_H

#include "support/StringUtils.h"
#include "support/TablePrinter.h"
#include "telemetry/Telemetry.h"
#include "workloads/Experiment.h"

#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>

namespace greenweb::bench {

/// Runs (or returns the cached) median experiment for one
/// (app, governor, mode) cell under the paper's three-seed protocol.
///
/// Every run instruments into a shared metrics-only telemetry hub (a
/// sweep touches hundreds of runs, so the per-record log stays off);
/// set GREENWEB_BENCH_METRICS=<path> to write the aggregate snapshot
/// as JSON when the harness exits. Stdout is unaffected either way.
class ResultCache {
public:
  ResultCache() { Tel.setLogCapacity(0); }

  ~ResultCache() {
    const char *Path = std::getenv("GREENWEB_BENCH_METRICS");
    if (!Path || !*Path)
      return;
    if (std::FILE *F = std::fopen(Path, "w")) {
      std::string Json = Tel.metrics().snapshotJson();
      std::fwrite(Json.data(), 1, Json.size(), F);
      std::fclose(F);
    }
  }

  const ExperimentResult &get(const std::string &App,
                              const std::string &Governor,
                              ExperimentMode Mode) {
    auto Key = App + "|" + Governor +
               (Mode == ExperimentMode::Micro ? "|micro" : "|full");
    auto It = Cache.find(Key);
    if (It != Cache.end()) {
      Tel.metrics().counter("bench.cache_hits").add();
      return It->second;
    }
    Tel.metrics().counter("bench.cells_run").add();
    ExperimentConfig Config;
    Config.AppName = App;
    Config.GovernorName = Governor;
    Config.Mode = Mode;
    Config.Tel = &Tel;
    auto [Inserted, _] =
        Cache.emplace(Key, runExperimentMedian(Config, {1, 2, 3}));
    return Inserted->second;
  }

  /// The harness-wide hub (aggregate metrics across every cached run).
  Telemetry &telemetry() { return Tel; }

private:
  Telemetry Tel;
  std::map<std::string, ExperimentResult> Cache;
};

/// Prints the standard harness banner.
inline void banner(const char *Id, const char *Paper) {
  std::printf("==============================================================="
              "=\n");
  std::printf("GreenWeb reproduction - %s\n", Id);
  std::printf("Paper reference: %s\n", Paper);
  std::printf("==============================================================="
              "=\n\n");
}

/// "N/A"-safe percentage of a baseline.
inline std::string percentOf(double Value, double Baseline) {
  if (Baseline <= 0.0)
    return "n/a";
  return formatString("%.1f%%", 100.0 * Value / Baseline);
}

} // namespace greenweb::bench

#endif // GREENWEB_BENCH_BENCHUTIL_H
