//===- bench/BenchUtil.h - shared benchmark helpers --------------*- C++ -*-===//
//
// Part of the GreenWeb reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers shared by the per-table/figure benchmark harnesses: cached
/// median experiment runs (the paper's three-seed protocol, Sec. 7.1)
/// and common formatting.
///
//===----------------------------------------------------------------------===//

#ifndef GREENWEB_BENCH_BENCHUTIL_H
#define GREENWEB_BENCH_BENCHUTIL_H

#include "support/StringUtils.h"
#include "support/TablePrinter.h"
#include "workloads/Experiment.h"

#include <cstdio>
#include <map>
#include <string>

namespace greenweb::bench {

/// Runs (or returns the cached) median experiment for one
/// (app, governor, mode) cell under the paper's three-seed protocol.
class ResultCache {
public:
  const ExperimentResult &get(const std::string &App,
                              const std::string &Governor,
                              ExperimentMode Mode) {
    auto Key = App + "|" + Governor +
               (Mode == ExperimentMode::Micro ? "|micro" : "|full");
    auto It = Cache.find(Key);
    if (It != Cache.end())
      return It->second;
    ExperimentConfig Config;
    Config.AppName = App;
    Config.GovernorName = Governor;
    Config.Mode = Mode;
    auto [Inserted, _] =
        Cache.emplace(Key, runExperimentMedian(Config, {1, 2, 3}));
    return Inserted->second;
  }

private:
  std::map<std::string, ExperimentResult> Cache;
};

/// Prints the standard harness banner.
inline void banner(const char *Id, const char *Paper) {
  std::printf("==============================================================="
              "=\n");
  std::printf("GreenWeb reproduction - %s\n", Id);
  std::printf("Paper reference: %s\n", Paper);
  std::printf("==============================================================="
              "=\n\n");
}

/// "N/A"-safe percentage of a baseline.
inline std::string percentOf(double Value, double Baseline) {
  if (Baseline <= 0.0)
    return "n/a";
  return formatString("%.1f%%", 100.0 * Value / Baseline);
}

} // namespace greenweb::bench

#endif // GREENWEB_BENCH_BENCHUTIL_H
