//===- bench/BenchUtil.h - shared benchmark helpers --------------*- C++ -*-===//
//
// Part of the GreenWeb reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers shared by the per-table/figure benchmark harnesses: cached
/// median experiment runs (the paper's three-seed protocol, Sec. 7.1),
/// parallel cell prefetch, common flags (--json=<path>, --jobs=N), a
/// machine-readable JSON reporter, and common formatting.
///
//===----------------------------------------------------------------------===//

#ifndef GREENWEB_BENCH_BENCHUTIL_H
#define GREENWEB_BENCH_BENCHUTIL_H

#include "profiling/Profiler.h"
#include "profiling/RunMeta.h"
#include "support/StringUtils.h"
#include "support/TablePrinter.h"
#include "telemetry/Telemetry.h"
#include "workloads/Experiment.h"
#include "workloads/ParallelRunner.h"

#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <tuple>
#include <vector>

namespace greenweb::bench {

/// The producing command line, recorded by BenchFlags::parse for the
/// RunMeta header every artifact carries.
inline std::string &processCommandLine() {
  static std::string Line;
  return Line;
}

/// Cap on raw sample arrays in JSON output (--samples-cap=N, 0 =
/// unlimited). Long self-timed runs collect thousands of per-round
/// samples that bloat committed baselines; arrays over the cap are
/// downsampled with an even stride, which keeps the full time span
/// represented so gw-diff's Mann-Whitney/bootstrap tests stay sound.
inline size_t &samplesCap() {
  static size_t Cap = 100;
  return Cap;
}

/// Flags every harness understands. Unknown arguments are ignored so
/// harness-specific flags can coexist.
///
///   --json=<path>        write the harness's results as JSON to <path>
///   --jobs=N             worker threads for sweep prefetch (0 = hardware)
///   --samples-cap=N      cap raw sample arrays in JSON (0 = unlimited)
///   --prof               capture a host-side gw_prof profile
///   --prof-out=BASE      profile output base (implies --prof)
///   --prof-sample=MICROS also run the timer sampler (implies --prof)
///   --sched=<path>       export the sweep scheduler trace + report
///   --progress           live sweep progress line on stderr
struct BenchFlags {
  std::string JsonPath;
  unsigned Jobs = 1;    ///< Benches default to serial; sweeps opt in.
  bool JobsSet = false; ///< True when --jobs was given explicitly.
  bool Prof = false;
  std::string ProfOut = "gw-prof";
  uint64_t ProfSampleMicros = 0;
  std::string SchedPath; ///< --sched= (scheduler trace artifact).
  bool Progress = false; ///< --progress (live sweep meter).

  static BenchFlags parse(int Argc, char **Argv) {
    BenchFlags Flags;
    processCommandLine() = prof::joinCommandLine(Argc, Argv);
    for (int I = 1; I < Argc; ++I) {
      std::string_view Arg = Argv[I];
      if (startsWith(Arg, "--json="))
        Flags.JsonPath = std::string(Arg.substr(7));
      else if (startsWith(Arg, "--jobs=")) {
        Flags.Jobs = unsigned(parseInt(Arg.substr(7)).value_or(1));
        Flags.JobsSet = true;
      } else if (startsWith(Arg, "--samples-cap=")) {
        samplesCap() = size_t(parseInt(Arg.substr(14)).value_or(100));
      } else if (Arg == "--prof")
        Flags.Prof = true;
      else if (startsWith(Arg, "--prof-out=")) {
        Flags.ProfOut = std::string(Arg.substr(11));
        Flags.Prof = true;
      } else if (startsWith(Arg, "--prof-sample=")) {
        Flags.ProfSampleMicros =
            uint64_t(parseInt(Arg.substr(14)).value_or(1000));
        Flags.Prof = true;
      } else if (startsWith(Arg, "--sched="))
        Flags.SchedPath = std::string(Arg.substr(8));
      else if (Arg == "--progress")
        Flags.Progress = true;
    }
    return Flags;
  }
};

/// RAII host-profiling session for a harness main: starts capture when
/// the flags requested it, and on destruction writes the aggregate
/// table to stdout plus the profile files next to the harness output.
class ProfSession {
public:
  explicit ProfSession(const BenchFlags &Flags)
      : Enabled(Flags.Prof), Out(Flags.ProfOut),
        SampleMicros(Flags.ProfSampleMicros) {
    if (!Enabled)
      return;
    prof::start();
    if (SampleMicros > 0)
      prof::startSampler(SampleMicros);
  }

  ProfSession(const ProfSession &) = delete;
  ProfSession &operator=(const ProfSession &) = delete;

  ~ProfSession() {
    if (!Enabled)
      return;
    if (SampleMicros > 0)
      prof::stopSampler();
    prof::stop();
    prof::Profile P = prof::collect();
    std::fputs(prof::reportTable(P).c_str(), stdout);
    prof::writeProfileFiles(P, Out);
  }

private:
  bool Enabled;
  std::string Out;
  uint64_t SampleMicros;
};

/// Collects a harness's results and writes them as one JSON document on
/// destruction (when a path was requested). Three sections cover the
/// harness shapes in this repo: google-benchmark-style entries
/// (name/iterations/ns_per_op/rate), standalone scalars, and the
/// rendered paper tables as structured rows.
class JsonReporter {
public:
  JsonReporter(std::string Harness, std::string Path)
      : Harness(std::move(Harness)), Path(std::move(Path)) {}

  JsonReporter(const JsonReporter &) = delete;
  JsonReporter &operator=(const JsonReporter &) = delete;

  ~JsonReporter() { write(); }

  bool requested() const { return !Path.empty(); }

  /// One microbenchmark result. \p RateLabel/\p Rate report the
  /// domain-specific throughput ("events_per_sec", ...); pass an empty
  /// label when there is none. \p SamplesNsPerOp optionally carries the
  /// raw per-round measurements so gw-diff can test significance.
  void metric(const std::string &Name, uint64_t Iterations, double NsPerOp,
              const std::string &RateLabel = "", double Rate = 0.0,
              const std::string &Note = "",
              const std::vector<double> &SamplesNsPerOp = {}) {
    std::string E = formatString(
        "    {\"name\":\"%s\",\"iterations\":%llu,\"ns_per_op\":%.3f",
        jsonEscape(Name).c_str(),
        static_cast<unsigned long long>(Iterations), NsPerOp);
    if (!RateLabel.empty())
      E += formatString(",\"%s\":%.3f", jsonEscape(RateLabel).c_str(),
                        Rate);
    if (!Note.empty())
      E += formatString(",\"note\":\"%s\"", jsonEscape(Note).c_str());
    if (!SamplesNsPerOp.empty())
      E += ",\"samples_ns_per_op\":" + sampleArray(SamplesNsPerOp);
    E += "}";
    Benchmarks.push_back(std::move(E));
  }

  /// One headline scalar ("avg_session_seconds": 42.5, unit "s").
  /// \p Samples optionally carries the raw per-round measurements.
  /// \p Note flags a caveat a reader of the committed artifact needs
  /// (e.g. "oversubscribed: 2 jobs on 1 hardware threads") so gates can
  /// interpret the value honestly instead of trusting the bare number.
  void scalar(const std::string &Name, double Value,
              const std::string &Unit = "",
              const std::vector<double> &Samples = {},
              const std::string &Note = "") {
    std::string E = formatString("    {\"name\":\"%s\",\"value\":%.6f",
                                 jsonEscape(Name).c_str(), Value);
    if (!Unit.empty())
      E += formatString(",\"unit\":\"%s\"", jsonEscape(Unit).c_str());
    if (!Note.empty())
      E += formatString(",\"note\":\"%s\"", jsonEscape(Note).c_str());
    if (!Samples.empty())
      E += ",\"samples\":" + sampleArray(Samples);
    E += "}";
    Scalars.push_back(std::move(E));
  }

  /// A rendered table, header row first, all cells as strings.
  void table(const std::string &Name, const TablePrinter &T) {
    std::string E =
        formatString("    {\"name\":\"%s\",", jsonEscape(Name).c_str());
    if (!T.title().empty())
      E += formatString("\"title\":\"%s\",",
                        jsonEscape(T.title()).c_str());
    E += "\"rows\":[\n";
    const auto &Rows = T.rows();
    for (size_t R = 0; R < Rows.size(); ++R) {
      E += "      [";
      for (size_t C = 0; C < Rows[R].size(); ++C) {
        if (C)
          E += ",";
        E += formatString("\"%s\"", jsonEscape(Rows[R][C]).c_str());
      }
      E += R + 1 < Rows.size() ? "],\n" : "]\n";
    }
    E += "    ]}";
    Tables.push_back(std::move(E));
  }

private:
  static std::string sampleArray(const std::vector<double> &Samples) {
    size_t Cap = samplesCap();
    std::vector<double> Capped;
    if (Cap > 0 && Samples.size() > Cap) {
      Capped.reserve(Cap);
      for (size_t I = 0; I < Cap; ++I)
        Capped.push_back(Samples[I * Samples.size() / Cap]);
    }
    const std::vector<double> &Out = Capped.empty() ? Samples : Capped;
    std::string A = "[";
    for (size_t I = 0; I < Out.size(); ++I)
      A += formatString(I ? ",%.3f" : "%.3f", Out[I]);
    return A + "]";
  }

  void write() const {
    if (Path.empty())
      return;
    std::FILE *F = std::fopen(Path.c_str(), "w");
    if (!F) {
      std::fprintf(stderr, "warning: cannot write %s\n", Path.c_str());
      return;
    }
    std::string Out =
        formatString("{\n  \"harness\": \"%s\"", jsonEscape(Harness).c_str());
    Out += ",\n  \"meta\": " +
           prof::RunMeta::current(processCommandLine()).toJsonObject();
    auto Section = [&Out](const char *Key,
                          const std::vector<std::string> &Entries) {
      if (Entries.empty())
        return;
      Out += formatString(",\n  \"%s\": [\n", Key);
      for (size_t I = 0; I < Entries.size(); ++I)
        Out += Entries[I] + (I + 1 < Entries.size() ? ",\n" : "\n");
      Out += "  ]";
    };
    Section("benchmarks", Benchmarks);
    Section("scalars", Scalars);
    Section("tables", Tables);
    Out += "\n}\n";
    std::fwrite(Out.data(), 1, Out.size(), F);
    std::fclose(F);
  }

  std::string Harness;
  std::string Path;
  std::vector<std::string> Benchmarks;
  std::vector<std::string> Scalars;
  std::vector<std::string> Tables;
};

/// One (app, governor, mode) sweep cell.
using BenchCell = std::tuple<std::string, std::string, ExperimentMode>;

/// Runs (or returns the cached) median experiment for one
/// (app, governor, mode) cell under the paper's three-seed protocol.
///
/// Every run instruments into a shared metrics-only telemetry hub (a
/// sweep touches hundreds of runs, so the per-record log stays off);
/// set GREENWEB_BENCH_METRICS=<path> to write the aggregate snapshot
/// as JSON when the harness exits. Stdout is unaffected either way.
class ResultCache {
public:
  ResultCache() { Tel.setLogCapacity(0); }

  ~ResultCache() {
    const char *Path = std::getenv("GREENWEB_BENCH_METRICS");
    if (!Path || !*Path)
      return;
    if (std::FILE *F = std::fopen(Path, "w")) {
      std::string Json = prof::RunMeta::current(processCommandLine())
                             .wrapSnapshot(Tel.metrics().snapshotJson());
      std::fwrite(Json.data(), 1, Json.size(), F);
      std::fclose(F);
    }
  }

  /// Runs every not-yet-cached cell across \p Jobs worker threads and
  /// caches the results, so subsequent get() calls are hits. Per-run
  /// telemetry lands in the shared hub in cell order — the aggregate is
  /// identical to running the same cells serially through get().
  void prefetch(const std::vector<BenchCell> &Cells, unsigned Jobs) {
    std::vector<BenchCell> Missing;
    for (const BenchCell &Cell : Cells)
      if (!Cache.count(key(Cell)))
        Missing.push_back(Cell);
    if (Missing.empty())
      return;
    std::vector<ExperimentConfig> Configs;
    Configs.reserve(Missing.size());
    for (const auto &[App, Governor, Mode] : Missing) {
      ExperimentConfig Config;
      Config.AppName = App;
      Config.GovernorName = Governor;
      Config.Mode = Mode;
      Configs.push_back(std::move(Config));
    }
    ParallelExperimentOptions Opts;
    Opts.Jobs = Jobs;
    Opts.SharedTel = &Tel;
    Opts.MedianSeeds = {1, 2, 3};
    Opts.PerJobHook = [](size_t, const ExperimentResult &, Telemetry &T) {
      T.metrics().counter("bench.cells_run").add();
    };
    std::vector<ExperimentResult> Results =
        runExperimentsParallel(Configs, Opts);
    for (size_t I = 0; I < Missing.size(); ++I)
      Cache.emplace(key(Missing[I]), std::move(Results[I]));
  }

  const ExperimentResult &get(const std::string &App,
                              const std::string &Governor,
                              ExperimentMode Mode) {
    auto Key = key({App, Governor, Mode});
    auto It = Cache.find(Key);
    if (It != Cache.end()) {
      Tel.metrics().counter("bench.cache_hits").add();
      return It->second;
    }
    Tel.metrics().counter("bench.cells_run").add();
    ExperimentConfig Config;
    Config.AppName = App;
    Config.GovernorName = Governor;
    Config.Mode = Mode;
    Config.Tel = &Tel;
    auto [Inserted, _] =
        Cache.emplace(Key, runExperimentMedian(Config, {1, 2, 3}));
    return Inserted->second;
  }

  /// The harness-wide hub (aggregate metrics across every cached run).
  Telemetry &telemetry() { return Tel; }

private:
  static std::string key(const BenchCell &Cell) {
    return std::get<0>(Cell) + "|" + std::get<1>(Cell) +
           (std::get<2>(Cell) == ExperimentMode::Micro ? "|micro"
                                                       : "|full");
  }

  Telemetry Tel;
  std::map<std::string, ExperimentResult> Cache;
};

/// Prints the standard harness banner.
inline void banner(const char *Id, const char *Paper) {
  std::printf("==============================================================="
              "=\n");
  std::printf("GreenWeb reproduction - %s\n", Id);
  std::printf("Paper reference: %s\n", Paper);
  std::printf("==============================================================="
              "=\n\n");
}

/// "N/A"-safe percentage of a baseline.
inline std::string percentOf(double Value, double Baseline) {
  if (Baseline <= 0.0)
    return "n/a";
  return formatString("%.1f%%", 100.0 * Value / Baseline);
}

} // namespace greenweb::bench

#endif // GREENWEB_BENCH_BENCHUTIL_H
