//===- bench/bench_ablation_ebs.cpp - ablation A7 --------------------------------===//
//
// Part of the GreenWeb reproduction. Distributed under the MIT license.
//
// Ablation A7: GreenWeb vs. annotation-free event-based scheduling
// (EBS, Zhu et al. HPCA'15), reproducing the paper's Sec. 9 argument:
// "without QoS annotations EBS relies on runtime measurement of event
// latency as a proxy for user QoS expectations... the measured latency
// is merely an artifact of a particular mobile system's capability.
// GreenWeb annotations express inherent user expectations."
//
// Where EBS goes wrong, by construction:
//  * MSN's heavyweight taps are slow to execute, so EBS guesses users
//    tolerate them and slows down further - but the annotation says
//    users expect a 100 ms response (violations);
//  * CamanJS's filters are slow AND tolerated, so EBS gets lucky;
//  * the first occurrence of every event runs at peak while EBS
//    measures, which GreenWeb's model makes a one-off cost too.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace greenweb;

int main(int Argc, char **Argv) {
  bench::BenchFlags Flags = bench::BenchFlags::parse(Argc, Argv);
  bench::ProfSession ProfGuard(Flags);
  bench::JsonReporter Json("bench_ablation_ebs", Flags.JsonPath);
  bench::banner("Ablation A7: GreenWeb vs annotation-free EBS",
                "Sec. 9 related-work comparison (Zhu et al. HPCA'15)");

  TablePrinter Table;
  Table.row()
      .cell("Application")
      .cell("Governor")
      .cell("Energy (mJ)")
      .cell("Viol-I (%)")
      .cell("Viol-U (%)");

  for (const char *Name : {"MSN", "CamanJS", "Todo", "Goo.ne.jp"}) {
    for (const char *Gov :
         {governors::Ebs, governors::GreenWebI, governors::GreenWebU}) {
      ExperimentConfig C;
      C.AppName = Name;
      C.GovernorName = Gov;
      ExperimentResult R = runExperiment(C);
      Table.row()
          .cell(Name)
          .cell(Gov)
          .cell(R.TotalJoules * 1e3, 1)
          .cell(R.ViolationPctImperceptible, 2)
          .cell(R.ViolationPctUsable, 2);
    }
  }
  Table.print();
  Json.table("Table", Table);
  std::printf(
      "\nExpected shape (the paper's Sec. 9 argument, as it manifests "
      "here):\n"
      " * EBS cannot express battery scenarios: it has one operating "
      "point per guessed class, so it never reaches GreenWeb-U's "
      "usable-mode savings (2-4x on MSN/CamanJS/Goo.ne.jp).\n"
      " * EBS reasons about events, not animation closures: it retires "
      "a tap at its first frame, so Goo.ne.jp's menu animations run "
      "their remaining frames at the idle configuration (the "
      "imperceptible-scenario violations above), where GreenWeb's "
      "Sec. 6.4 frame association keeps optimizing to the end.\n"
      " * Where measured latency and user expectation coincide "
      "(CamanJS: slow and genuinely tolerated), EBS and GreenWeb-I "
      "converge - annotations pay off exactly when the two diverge.\n");
  return 0;
}
