//===- bench/bench_faults.cpp - fault-family QoS/energy deltas -----------------===//
//
// Part of the GreenWeb reproduction. Distributed under the MIT license.
//
// Quantifies each fault family's footprint: one clean run and one run
// per named fault scenario (docs/ROBUSTNESS.md), all under the GreenWeb
// runtime, reporting the QoS-violation and energy deltas the injected
// fault causes. Run with --watchdog to measure the hardened runtime
// instead; --smoke runs a single scenario for the CI bench-smoke label.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "faults/FaultPlan.h"

using namespace greenweb;

namespace {

ExperimentResult runScenario(const std::optional<FaultPlan> &Plan,
                             bool Watchdog) {
  ExperimentConfig C;
  C.AppName = "Cnet";
  C.GovernorName = governors::GreenWebI;
  C.Faults = Plan;
  if (Watchdog) {
    GreenWebRuntime::Params P;
    P.EnableWatchdog = true;
    C.RuntimeParams = P;
  }
  return runExperiment(C);
}

} // namespace

int main(int Argc, char **Argv) {
  bench::BenchFlags Flags = bench::BenchFlags::parse(Argc, Argv);
  bool Watchdog = false;
  bool Smoke = false;
  for (int I = 1; I < Argc; ++I) {
    std::string_view Arg = Argv[I];
    if (Arg == "--watchdog")
      Watchdog = true;
    else if (Arg == "--smoke")
      Smoke = true;
  }
  bench::ProfSession ProfGuard(Flags);
  bench::JsonReporter Json("bench_faults", Flags.JsonPath);
  bench::banner("Fault-family QoS/energy footprint",
                "robustness hardening (docs/ROBUSTNESS.md)");

  std::vector<std::string> Scenarios =
      Smoke ? std::vector<std::string>{"thermal"}
            : FaultPlan::scenarioNames();

  ExperimentResult Clean = runScenario(std::nullopt, Watchdog);
  double CleanViol = Clean.ViolationPctImperceptible;
  double CleanJ = Clean.TotalJoules;

  TablePrinter Table;
  Table.row()
      .cell("Scenario")
      .cell("Violations (%)")
      .cell("d-Violations (pp)")
      .cell("Energy (mJ)")
      .cell("d-Energy (%)")
      .cell("Injections");
  Table.row()
      .cell("(clean)")
      .cell(CleanViol, 2)
      .cell("-")
      .cell(CleanJ * 1e3, 1)
      .cell("-")
      .cell(int64_t(0));
  Json.scalar("faults.clean.violation_pct", CleanViol, "%");
  Json.scalar("faults.clean.joules", CleanJ, "J");

  for (const std::string &Name : Scenarios) {
    ExperimentResult R = runScenario(FaultPlan::scenario(Name), Watchdog);
    double Viol = R.ViolationPctImperceptible;
    Table.row()
        .cell(Name)
        .cell(Viol, 2)
        .cell(Viol - CleanViol, 2)
        .cell(R.TotalJoules * 1e3, 1)
        .cell(CleanJ > 0 ? 100.0 * (R.TotalJoules - CleanJ) / CleanJ : 0.0,
              1)
        .cell(int64_t(R.Faults.total()));
    Json.scalar("faults." + Name + ".violation_pct", Viol, "%");
    Json.scalar("faults." + Name + ".joules", R.TotalJoules, "J");
    Json.scalar("faults." + Name + ".injections", double(R.Faults.total()));
  }
  Table.print();
  Json.table("Table", Table);
  std::printf("\nCnet under GreenWeb-I, watchdog %s. Expected shape: every "
              "fault family costs QoS and/or energy against the clean "
              "run; with --watchdog the violation deltas shrink while "
              "energy rises (the fallback floor trades joules for QoS).\n",
              Watchdog ? "on" : "off");
  return 0;
}
