//===- bench/bench_ablation_perfmodel.cpp - ablation A5 --------------------------===//
//
// Part of the GreenWeb reproduction. Distributed under the MIT license.
//
// Ablation A5: accuracy of the two-point DVFS model (Equ. 1, Xie et
// al.). For a frame-sized workload measured end-to-end in the simulated
// browser at the maximum and minimum configurations, the fitted model's
// predictions are compared against fresh measurements at every other
// <core, frequency> tuple. Residual error comes from VSync alignment
// and frame-to-frame jitter — the same effects the runtime's feedback
// loop exists to absorb.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "browser/Browser.h"
#include "greenweb/PerfModel.h"
#include "support/Statistics.h"

using namespace greenweb;

namespace {

/// Measures the mean per-frame pipeline latency of a short scripted
/// animation at a fixed configuration.
Duration measureFrameLatency(const AcmpConfig &Config, double WorkKCycles) {
  Simulator Sim;
  AcmpChip Chip(Sim);
  Chip.setConfig(Config);
  Browser B(Sim, Chip);
  std::string Page = formatString(R"raw(
    <div id=c onclick="start()"></div>
    <script>
      var left = 12;
      function step() {
        performWork(%.0f);
        invalidate();
        left = left - 1;
        if (left > 0) { requestAnimationFrame(step); }
      }
      function start() { requestAnimationFrame(step); }
    </script>
  )raw",
                                   WorkKCycles);
  B.loadPage(Page);
  Sim.runUntil(Sim.now() + Duration::seconds(2));
  size_t Skip = B.frameTracker().frames().size();
  B.dispatchInput("click", "c");
  Sim.runUntil(Sim.now() + Duration::seconds(5));
  std::vector<double> Secs;
  for (size_t I = Skip; I < B.frameTracker().frames().size(); ++I) {
    const FrameRecord &F = B.frameTracker().frames()[I];
    Secs.push_back((F.ReadyTime - F.BeginTime).secs());
  }
  return Duration::fromSeconds(mean(Secs));
}

} // namespace

int main(int Argc, char **Argv) {
  bench::BenchFlags Flags = bench::BenchFlags::parse(Argc, Argv);
  bench::ProfSession ProfGuard(Flags);
  bench::JsonReporter Json("bench_ablation_perfmodel", Flags.JsonPath);
  bench::banner("Ablation A5: DVFS performance-model accuracy",
                "Equ. 1: T = T_independent + N_nonoverlap / f (Sec. 6.2)");

  Simulator Sim;
  AcmpChip Chip(Sim);

  for (double WorkK : {2000.0, 8000.0}) {
    AcmpConfig Max = Chip.spec().maxConfig();
    AcmpConfig Min = Chip.spec().minConfig();
    LatencyObservation AtMax{Max, measureFrameLatency(Max, WorkK)};
    LatencyObservation AtMin{Min, measureFrameLatency(Min, WorkK)};
    auto Model = fitDvfsModel(Chip, AtMax, AtMin);
    if (!Model) {
      std::printf("model fit failed\n");
      return 1;
    }

    TablePrinter Table(formatString(
        "Frame with %.0fk extra script cycles: fitted T_ind=%s, "
        "N=%.2fM cycles",
        WorkK, Model->Independent.str().c_str(), Model->Cycles / 1e6));
    Table.row()
        .cell("Config")
        .cell("Predicted (ms)")
        .cell("Measured (ms)")
        .cell("Error");
    std::vector<double> Errors;
    for (const AcmpConfig &C : Chip.spec().allConfigs()) {
      // Sample a spread of levels, not all 17.
      if (C.FreqMHz % 200 != 0 && C.FreqMHz % 150 != 0)
        continue;
      Duration Pred = Model->predict(Chip.effectiveHzFor(C));
      Duration Measured = measureFrameLatency(C, WorkK);
      double Err = std::abs(Pred.secs() - Measured.secs()) /
                   std::max(1e-9, Measured.secs());
      Errors.push_back(Err);
      Table.row()
          .cell(C.str())
          .cell(Pred.millis(), 2)
          .cell(Measured.millis(), 2)
          .percentCell(Err);
    }
    Table.print();
    Json.table("Table", Table);
    std::printf("Mean relative error: %.1f%%, max: %.1f%%\n\n",
                mean(Errors) * 100.0,
                *std::max_element(Errors.begin(), Errors.end()) * 100.0);
  }
  std::printf("Shape check: the two-point fit predicts all intermediate "
              "configurations within a few percent, validating the "
              "paper's choice of profiling only the extreme "
              "frequencies.\n");
  return 0;
}
