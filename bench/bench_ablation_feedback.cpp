//===- bench/bench_ablation_feedback.cpp - ablation A1 ---------------------------===//
//
// Part of the GreenWeb reproduction. Distributed under the MIT license.
//
// Ablation A1: the feedback fine-tuning of Sec. 6.2 ("the GreenWeb
// runtime uses measured frame latencies as feedback information") is
// disabled. Without feedback, transient complexity surges and model
// error go uncorrected, so the surge-prone apps (Cnet, W3Schools)
// accumulate QoS violations; with feedback, a violation steps the
// configuration up one level and decays later.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace greenweb;

int main(int Argc, char **Argv) {
  bench::BenchFlags Flags = bench::BenchFlags::parse(Argc, Argv);
  bench::ProfSession ProfGuard(Flags);
  bench::JsonReporter Json("bench_ablation_feedback", Flags.JsonPath);
  bench::banner("Ablation A1: feedback fine-tuning on/off",
                "Sec. 6.2 event-based feedback");

  TablePrinter Table;
  Table.row()
      .cell("Application")
      .cell("Scenario")
      .cell("Feedback")
      .cell("Energy (mJ)")
      .cell("Violations (%)")
      .cell("Feedback steps")
      .cell("Recalibrations");

  for (const char *Name : {"Cnet", "W3Schools", "Amazon"}) {
    for (const char *Gov : {governors::GreenWebI, governors::GreenWebU}) {
      for (bool Feedback : {true, false}) {
        ExperimentConfig C;
        C.AppName = Name;
        C.GovernorName = Gov;
        GreenWebRuntime::Params P;
        P.EnableFeedback = Feedback;
        C.RuntimeParams = P;
        ExperimentResult R = runExperiment(C);
        bool Usable = Gov == std::string(governors::GreenWebU);
        Table.row()
            .cell(Name)
            .cell(Usable ? "usable" : "imperceptible")
            .cell(Feedback ? "on" : "off")
            .cell(R.TotalJoules * 1e3, 1)
            .cell(Usable ? R.ViolationPctUsable
                         : R.ViolationPctImperceptible,
                  2)
            .cell(int64_t(R.RuntimeStats.FeedbackStepsUp +
                          R.RuntimeStats.FeedbackStepsDown))
            .cell(int64_t(R.RuntimeStats.Recalibrations));
      }
    }
  }
  Table.print();
  Json.table("Table", Table);
  std::printf("\nExpected shape: disabling feedback raises violations on "
              "the surge-prone apps at similar or lower energy; the "
              "runtime can no longer react to under-predictions between "
              "recalibrations.\n");
  return 0;
}
