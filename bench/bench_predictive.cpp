//===- bench/bench_predictive.cpp - learned-governor pipeline ------------------===//
//
// Part of the GreenWeb reproduction. Distributed under the MIT license.
//
// The learned-governor pipeline end to end, self-contained: export
// labeled feature rows from LTM runs, train the CART model in-process,
// then ablate Predictive-I against GreenWeb-I on the same apps, plus
// the eBrowser-style input rate controller's effect on a scroll-heavy
// session. The committed-model ablation (12 apps, chaos scenarios)
// lives in examples/learned_ablation; this harness is the quick,
// filesystem-free smoke of the same machinery.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace greenweb;

namespace {

/// Apps for the in-process train/serve loop: one scroll-heavy session,
/// one animation-heavy, one compute tap.
const char *kApps[] = {"BBC", "Goo.ne.jp", "CamanJS"};

ExperimentResult run(const ExperimentConfig &Base, uint64_t Seed) {
  ExperimentConfig C = Base;
  C.Seed = Seed;
  return runExperiment(C);
}

} // namespace

int main(int Argc, char **Argv) {
  bench::BenchFlags Flags = bench::BenchFlags::parse(Argc, Argv);
  bool Smoke = false;
  for (int I = 1; I < Argc; ++I)
    if (std::string_view(Argv[I]) == "--smoke")
      Smoke = true;
  bench::ProfSession ProfGuard(Flags);
  bench::JsonReporter Json("bench_predictive", Flags.JsonPath);
  bench::banner("Learned governor: train -> serve -> rate control",
                "Yuan et al. (ML web interactions); eBrowser (input rate)");

  size_t AppCount = Smoke ? 1 : std::size(kApps);

  // Phase 1: training-data export from LTM runs (the FeatureProbe rides
  // along as an observer; labels come from ground-truth frame costs).
  std::vector<FeatureRow> Rows;
  for (size_t A = 0; A < AppCount; ++A) {
    ExperimentConfig C;
    C.AppName = kApps[A];
    C.GovernorName = governors::GreenWebI;
    C.FeatureRows = &Rows;
    run(C, 1);
  }
  DecisionTreeModel Model = trainDecisionTree(Rows, 17);
  std::printf("trained on %zu rows -> %zu nodes\n\n", Rows.size(),
              Model.Nodes.size());
  Json.scalar("training_rows", double(Rows.size()));
  Json.scalar("model_nodes", double(Model.Nodes.size()));

  // Phase 2: serve the freshly trained model against the LTM baseline.
  {
    TablePrinter Table("Predictive-I vs GreenWeb-I (self-trained model)");
    Table.row()
        .cell("App")
        .cell("LTM (mJ)")
        .cell("Pred (mJ)")
        .cell("dE")
        .cell("LTM viol-I")
        .cell("Pred viol-I");
    for (size_t A = 0; A < AppCount; ++A) {
      ExperimentConfig C;
      C.AppName = kApps[A];
      C.GovernorName = governors::GreenWebI;
      ExperimentResult Ltm = run(C, 1);
      C.GovernorName = governors::PredictiveI;
      C.Model = &Model;
      ExperimentResult Pred = run(C, 1);
      Table.row()
          .cell(kApps[A])
          .cell(Ltm.TotalJoules * 1e3, 1)
          .cell(Pred.TotalJoules * 1e3, 1)
          .cell(bench::percentOf(Pred.TotalJoules, Ltm.TotalJoules))
          .cell(Ltm.ViolationPctImperceptible, 2)
          .cell(Pred.ViolationPctImperceptible, 2);
      Json.scalar(formatString("ltm_energy_joules.%s", kApps[A]),
                  Ltm.TotalJoules, "J");
      Json.scalar(formatString("predictive_energy_joules.%s", kApps[A]),
                  Pred.TotalJoules, "J");
    }
    Table.print();
    Json.table("Serve", Table);
    std::printf("\n");
  }

  // Phase 3: input rate control on the scroll-heavy session. The app
  // traces burst touchmove at ~30 Hz, so the 12ms (~83 Hz) default
  // window never fires — that run must be telemetry-identical to the
  // uncontrolled one. A 40ms (25 Hz) window does coalesce the bursts.
  {
    TablePrinter Table("Input rate control (BBC, GreenWeb-I)");
    Table.row()
        .cell("Window")
        .cell("Energy (mJ)")
        .cell("Viol-I (%)")
        .cell("Inputs")
        .cell("Coalesced")
        .cell("Frames");
    ExperimentConfig C;
    C.AppName = "BBC";
    C.GovernorName = governors::GreenWebI;
    struct Leg {
      const char *Name;
      bool Enabled;
      int WindowMs;
    } Legs[] = {{"off", false, 0},
                {"12ms (under limit)", true, 12},
                {"40ms (coalescing)", true, 40}};
    ExperimentResult Off;
    for (const Leg &L : Legs) {
      C.InputRate.Enabled = L.Enabled;
      if (L.Enabled)
        C.InputRate.MinInterval = Duration::milliseconds(L.WindowMs);
      ExperimentResult R = run(C, 1);
      if (!L.Enabled)
        Off = R;
      Table.row()
          .cell(L.Name)
          .cell(R.TotalJoules * 1e3, 1)
          .cell(R.ViolationPctImperceptible, 2)
          .cell(int64_t(R.InputEvents))
          .cell(int64_t(R.InputEventsCoalesced))
          .cell(int64_t(R.Frames));
      Json.scalar(formatString("rate_energy_joules.%s", L.Name),
                  R.TotalJoules, "J");
      if (L.Enabled && L.WindowMs == 12 &&
          (R.TotalJoules != Off.TotalJoules || R.Frames != Off.Frames ||
           R.InputEventsCoalesced != 0))
        std::printf("WARNING: under-limit run diverged from the "
                    "uncontrolled one\n");
    }
    Table.print();
    Json.table("RateControl", Table);
  }
  std::printf("\nExpected shape: Predictive-I at or below GreenWeb-I "
              "energy with comparable violations; the under-limit rate "
              "window is a no-op, the 25 Hz window coalesces scroll "
              "bursts and trims frames.\n");
  return 0;
}
