//===- bench/bench_ablation_recalibration.cpp - ablation A6 ----------------------===//
//
// Part of the GreenWeb reproduction. Distributed under the MIT license.
//
// Ablation A6: the re-profiling threshold ("if the model mispredicts
// consecutively more than a certain threshold, the runtime initiates
// new profilings to recalibrate", Sec. 6.2). Swept on the surge-prone
// W3Schools and Cnet: a hair-trigger threshold recalibrates constantly
// (each recalibration includes a min-frequency frame, hurting QoS); a
// huge threshold never adapts to sustained workload shifts.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace greenweb;

int main(int Argc, char **Argv) {
  bench::BenchFlags Flags = bench::BenchFlags::parse(Argc, Argv);
  bench::ProfSession ProfGuard(Flags);
  bench::JsonReporter Json("bench_ablation_recalibration", Flags.JsonPath);
  bench::banner("Ablation A6: recalibration threshold sweep",
                "Sec. 6.2 consecutive-misprediction re-profiling");

  for (const char *Name : {"W3Schools", "Cnet"}) {
    TablePrinter Table(formatString("%s, GreenWeb-U", Name));
    Table.row()
        .cell("Threshold")
        .cell("Energy (mJ)")
        .cell("Viol-U (%)")
        .cell("Recalibrations")
        .cell("Profiling frames");
    for (unsigned Threshold : {2u, 4u, 6u, 10u, 1000000u}) {
      ExperimentConfig C;
      C.AppName = Name;
      C.GovernorName = governors::GreenWebU;
      GreenWebRuntime::Params P;
      P.Scenario = UsageScenario::Usable;
      P.RecalibrateAfter = Threshold;
      C.RuntimeParams = P;
      ExperimentResult R = runExperiment(C);
      Table.row()
          .cell(Threshold >= 1000000u ? std::string("never")
                                      : formatString("%u", Threshold))
          .cell(R.TotalJoules * 1e3, 1)
          .cell(R.ViolationPctUsable, 2)
          .cell(int64_t(R.RuntimeStats.Recalibrations))
          .cell(int64_t(R.RuntimeStats.ProfilingFrames));
    }
    Table.print();
    Json.table("Table", Table);
    std::printf("\n");
  }
  std::printf("Expected shape: small thresholds trade extra profiling "
              "frames (each with a min-frequency QoS hit) for faster "
              "adaptation; 'never' avoids profiling churn but leaves "
              "the model stale after surges.\n");
  return 0;
}
