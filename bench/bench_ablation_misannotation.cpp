//===- bench/bench_ablation_misannotation.cpp - ablation A2 ----------------------===//
//
// Part of the GreenWeb reproduction. Distributed under the MIT license.
//
// Ablation A2: defense against mis-annotation (Sec. 8). An adversarial
// page scales every QoS target 20x tighter, which would pin the chip at
// peak performance and waste maximal energy. Two defenses from the
// paper's discussion are evaluated:
//  * clamp-to-defaults: annotation targets are floored at the Table 1
//    defaults for their QoS type;
//  * UAI energy budget: once the page exceeds an energy budget, the
//    clamp engages automatically.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace greenweb;

int main(int Argc, char **Argv) {
  bench::BenchFlags Flags = bench::BenchFlags::parse(Argc, Argv);
  bench::ProfSession ProfGuard(Flags);
  bench::JsonReporter Json("bench_ablation_misannotation", Flags.JsonPath);
  bench::banner("Ablation A2: mis-annotation defense (UAI)",
                "Sec. 8 'Defense Against Mis-annotation'");

  TablePrinter Table;
  Table.row()
      .cell("Application")
      .cell("Annotation")
      .cell("Defense")
      .cell("Energy (mJ)")
      .cell("vs honest")
      .cell("Clamps");

  for (const char *Name : {"Todo", "Goo.ne.jp", "Amazon"}) {
    ExperimentConfig Honest;
    Honest.AppName = Name;
    Honest.GovernorName = governors::GreenWebU;
    ExperimentResult Baseline = runExperiment(Honest);
    Table.row()
        .cell(Name)
        .cell("honest")
        .cell("-")
        .cell(Baseline.TotalJoules * 1e3, 1)
        .cell("100.0%")
        .cell(int64_t(0));

    // The attack: 20x tighter targets.
    ExperimentConfig Attack = Honest;
    Attack.TargetScale = 0.05;
    ExperimentResult Attacked = runExperiment(Attack);
    Table.row()
        .cell(Name)
        .cell("20x tighter")
        .cell("none")
        .cell(Attacked.TotalJoules * 1e3, 1)
        .cell(bench::percentOf(Attacked.TotalJoules,
                               Baseline.TotalJoules))
        .cell(int64_t(Attacked.RuntimeStats.TargetClampsApplied));

    // Defense 1: clamp targets to the Table 1 defaults.
    ExperimentConfig Clamped = Attack;
    GreenWebRuntime::Params P;
    P.ClampTargetsToDefaults = true;
    Clamped.RuntimeParams = P;
    ExperimentResult Defended = runExperiment(Clamped);
    Table.row()
        .cell(Name)
        .cell("20x tighter")
        .cell("clamp")
        .cell(Defended.TotalJoules * 1e3, 1)
        .cell(bench::percentOf(Defended.TotalJoules,
                               Baseline.TotalJoules))
        .cell(int64_t(Defended.RuntimeStats.TargetClampsApplied));

    // Defense 2: UAI energy budget engages the clamp mid-run.
    ExperimentConfig Budgeted = Attack;
    GreenWebRuntime::Params PB;
    PB.EnergyBudgetJoules = Baseline.TotalJoules * 0.5;
    Budgeted.RuntimeParams = PB;
    ExperimentResult BudgetRun = runExperiment(Budgeted);
    Table.row()
        .cell(Name)
        .cell("20x tighter")
        .cell("energy budget")
        .cell(BudgetRun.TotalJoules * 1e3, 1)
        .cell(bench::percentOf(BudgetRun.TotalJoules,
                               Baseline.TotalJoules))
        .cell(int64_t(BudgetRun.RuntimeStats.TargetClampsApplied));
  }
  Table.print();
  Json.table("Table", Table);
  std::printf("\nExpected shape: the attack inflates energy well above "
              "the honest run; the clamp restores it to near-honest "
              "levels; the budget defense lands in between (the attack "
              "runs unchecked until the budget is consumed).\n");
  return 0;
}
