//===- bench/bench_components.cpp - component microbenchmarks --------------------===//
//
// Part of the GreenWeb reproduction. Distributed under the MIT license.
//
// google-benchmark microbenchmarks of the substrate components: CSS
// parsing/matching, MiniScript execution, HTML parsing, the DES kernel,
// and a whole simulated frame pipeline. These measure the *simulator's*
// wall-clock cost (how fast experiments run), not simulated time.
//
//===----------------------------------------------------------------------===//

#include "browser/Browser.h"
#include "css/CssParser.h"
#include "css/StyleResolver.h"
#include "html/HtmlParser.h"
#include "js/JsInterp.h"
#include "support/StringUtils.h"
#include "workloads/Apps.h"
#include "workloads/Experiment.h"

#include <benchmark/benchmark.h>

using namespace greenweb;

namespace {

std::string makeCssSource(int Rules) {
  std::string Src;
  for (int I = 0; I < Rules; ++I)
    Src += formatString("div#id-%d.cls-%d:QoS { width: %dpx; "
                        "transition: width 2s; onclick-qos: single, "
                        "short; }\n",
                        I, I % 7, I);
  return Src;
}

void BM_CssParse(benchmark::State &State) {
  std::string Src = makeCssSource(int(State.range(0)));
  for (auto _ : State) {
    css::Stylesheet Sheet = css::parseStylesheet(Src);
    benchmark::DoNotOptimize(Sheet.Rules.size());
  }
  State.SetBytesProcessed(int64_t(State.iterations()) *
                          int64_t(Src.size()));
}
BENCHMARK(BM_CssParse)->Arg(10)->Arg(100)->Arg(1000);

void BM_SelectorMatching(benchmark::State &State) {
  css::Stylesheet Sheet = css::parseStylesheet(makeCssSource(200));
  css::StyleResolver Resolver(Sheet);
  Document Doc;
  Element *E = Doc.root().createChild("div");
  E->setId("id-42");
  E->addClass("cls-0");
  for (auto _ : State)
    benchmark::DoNotOptimize(Resolver.matchRules(*E).size());
}
BENCHMARK(BM_SelectorMatching);

void BM_HtmlParse(benchmark::State &State) {
  AppDefinition App = makeApp("BBC", 1);
  for (auto _ : State) {
    html::ParseResult R = html::parseHtml(App.Html);
    benchmark::DoNotOptimize(R.Doc->elementCount());
  }
  State.SetBytesProcessed(int64_t(State.iterations()) *
                          int64_t(App.Html.size()));
}
BENCHMARK(BM_HtmlParse);

void BM_MiniScriptFib(benchmark::State &State) {
  for (auto _ : State) {
    js::Interpreter Interp;
    Interp.setOpLimit(100'000'000);
    bool Ok = Interp.runScript(
        "function fib(n) { if (n < 2) { return n; } "
        "return fib(n - 1) + fib(n - 2); } var r = fib(18);");
    benchmark::DoNotOptimize(Ok);
  }
}
BENCHMARK(BM_MiniScriptFib);

void BM_MiniScriptLoop(benchmark::State &State) {
  js::Interpreter Interp;
  Interp.setOpLimit(1'000'000'000);
  for (auto _ : State) {
    Interp.clearError();
    bool Ok = Interp.runScript(
        "var acc = 0; for (var i = 0; i < 10000; i++) { acc = acc + i; }");
    benchmark::DoNotOptimize(Ok);
  }
  State.SetItemsProcessed(int64_t(State.iterations()) * 10'000);
}
BENCHMARK(BM_MiniScriptLoop);

void BM_SimulatorEventChurn(benchmark::State &State) {
  for (auto _ : State) {
    Simulator Sim;
    int Count = 0;
    for (int I = 0; I < 10'000; ++I)
      Sim.schedule(Duration::microseconds(I % 997), [&Count] { ++Count; });
    Sim.run();
    benchmark::DoNotOptimize(Count);
  }
  State.SetItemsProcessed(int64_t(State.iterations()) * 10'000);
}
BENCHMARK(BM_SimulatorEventChurn);

void BM_FramePipeline(benchmark::State &State) {
  // Wall-clock cost of simulating one second of a 60Hz animation.
  for (auto _ : State) {
    Simulator Sim;
    AcmpChip Chip(Sim);
    Chip.setConfig(Chip.spec().maxConfig());
    Browser B(Sim, Chip);
    B.loadPage(R"raw(
      <div id=c onclick="start()"></div>
      <script>
        function step() { invalidate(); requestAnimationFrame(step); }
        function start() { requestAnimationFrame(step); }
      </script>
    )raw");
    Sim.runUntil(Sim.now() + Duration::milliseconds(500));
    B.dispatchInput("click", "c");
    Sim.runUntil(Sim.now() + Duration::seconds(1));
    benchmark::DoNotOptimize(B.frameTracker().frames().size());
  }
}
BENCHMARK(BM_FramePipeline);

void BM_FullExperiment(benchmark::State &State) {
  // Wall-clock cost of one complete Table 3 session under GreenWeb.
  for (auto _ : State) {
    ExperimentConfig C;
    C.AppName = "Goo.ne.jp";
    C.GovernorName = governors::GreenWebU;
    ExperimentResult R = runExperiment(C);
    benchmark::DoNotOptimize(R.TotalJoules);
  }
}
BENCHMARK(BM_FullExperiment);

} // namespace

// Custom main instead of BENCHMARK_MAIN so this harness accepts the
// same --json=<path> flag as every other bench binary, translating it
// to google-benchmark's --benchmark_out options.
int main(int Argc, char **Argv) {
  std::vector<char *> Args(Argv, Argv + Argc);
  std::vector<std::string> Owned;
  for (char *&Arg : Args) {
    std::string_view S = Arg;
    if (S.rfind("--json=", 0) == 0) {
      Owned.push_back("--benchmark_out=" + std::string(S.substr(7)));
      Owned.push_back("--benchmark_out_format=json");
    }
  }
  Args.erase(std::remove_if(Args.begin(), Args.end(),
                            [](char *Arg) {
                              return std::string_view(Arg).rfind(
                                         "--json=", 0) == 0;
                            }),
             Args.end());
  for (std::string &S : Owned)
    Args.push_back(S.data());
  int NewArgc = int(Args.size());
  benchmark::Initialize(&NewArgc, Args.data());
  if (benchmark::ReportUnrecognizedArguments(NewArgc, Args.data()))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
