//===- bench/bench_ablation_qostype.cpp - ablation A3 ----------------------------===//
//
// Part of the GreenWeb reproduction. Distributed under the MIT license.
//
// Ablation A3: what happens when the QoS *type* is wrong (Sec. 3.2's
// motivating discussion). Forcing continuous events to "single" makes
// the runtime optimize only the first frame of each animation and idle
// through the rest (violations); forcing single events to "continuous"
// keeps the runtime boosting through the post-frame work (energy
// waste). This is exactly why the paper argues the type must be
// expressed by developers rather than guessed.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace greenweb;

int main(int Argc, char **Argv) {
  bench::BenchFlags Flags = bench::BenchFlags::parse(Argc, Argv);
  bench::ProfSession ProfGuard(Flags);
  bench::JsonReporter Json("bench_ablation_qostype", Flags.JsonPath);
  bench::banner("Ablation A3: QoS-type confusion",
                "Sec. 3.2 'Distinguishing between continuous and single "
                "is important'");

  TablePrinter Table;
  Table.row()
      .cell("Application")
      .cell("Annotation type")
      .cell("Energy (mJ)")
      .cell("Viol-I (%)")
      .cell("Active frames optimized");

  // Continuous-natured apps forced to single.
  for (const char *Name : {"Goo.ne.jp", "W3Schools"}) {
    for (int Mode = 0; Mode < 2; ++Mode) {
      ExperimentConfig C;
      C.AppName = Name;
      C.GovernorName = governors::GreenWebI;
      if (Mode == 1)
        C.ForceQosType = QosType::Single;
      ExperimentResult R = runExperiment(C);
      Table.row()
          .cell(Name)
          .cell(Mode == 0 ? "correct (continuous)" : "forced single")
          .cell(R.TotalJoules * 1e3, 1)
          .cell(R.ViolationPctImperceptible, 2)
          .cell(int64_t(R.RuntimeStats.PredictedFrames +
                        R.RuntimeStats.ProfilingFrames));
    }
  }
  // Single-natured apps forced to continuous.
  for (const char *Name : {"CamanJS", "Todo"}) {
    for (int Mode = 0; Mode < 2; ++Mode) {
      ExperimentConfig C;
      C.AppName = Name;
      C.GovernorName = governors::GreenWebI;
      if (Mode == 1)
        C.ForceQosType = QosType::Continuous;
      ExperimentResult R = runExperiment(C);
      Table.row()
          .cell(Name)
          .cell(Mode == 0 ? "correct (single)" : "forced continuous")
          .cell(R.TotalJoules * 1e3, 1)
          .cell(R.ViolationPctImperceptible, 2)
          .cell(int64_t(R.RuntimeStats.PredictedFrames +
                        R.RuntimeStats.ProfilingFrames));
    }
  }
  Table.print();
  Json.table("Table", Table);
  std::printf(
      "\nExpected shape: forcing animations to 'single' stops per-frame "
      "optimization after the first frame (fewer frames optimized, more "
      "violations); forcing taps to 'continuous' keeps the chip boosted "
      "through post-frame work (more energy for no QoS gain).\n");
  return 0;
}
