//===- bench/bench_fig9_micro.cpp - Fig. 9 ---------------------------------------===//
//
// Part of the GreenWeb reproduction. Distributed under the MIT license.
//
// Regenerates Fig. 9: microbenchmark results. For each application's
// primitive interaction (Table 3 left half), reports
//   (a) energy consumption of GreenWeb-I and GreenWeb-U normalized to
//       Perf (Fig. 9a; paper averages: 31.9% and 78.0% savings), and
//   (b) additional QoS violations on top of Perf under the matching
//       scenario targets (Fig. 9b; paper averages: ~1.3% / ~1.2%, with
//       the single-type outliers caused by min-frequency profiling runs
//       and the Cnet/W3Schools usable-mode surges).
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "support/Statistics.h"

using namespace greenweb;
using bench::ResultCache;

int main(int Argc, char **Argv) {
  bench::BenchFlags Flags = bench::BenchFlags::parse(Argc, Argv);
  bench::ProfSession ProfGuard(Flags);
  bench::JsonReporter Json("bench_fig9_micro", Flags.JsonPath);
  bench::banner("Fig. 9: microbenchmarking results",
                "Energy normalized to Perf (9a) and QoS violations on top "
                "of Perf (9b), Sec. 7.2");

  ResultCache Cache;
  TablePrinter Energy("Fig. 9a: energy normalized to Perf (lower is "
                      "better)");
  Energy.row()
      .cell("Application")
      .cell("QoS Type")
      .cell("GreenWeb-I")
      .cell("GreenWeb-U");
  TablePrinter Violations(
      "Fig. 9b: QoS violations on top of Perf (percentage points)");
  Violations.row()
      .cell("Application")
      .cell("QoS Type")
      .cell("GreenWeb-I (+%)")
      .cell("GreenWeb-U (+%)");

  std::vector<double> SavingsI, SavingsU, ViolI, ViolU;
  for (const std::string &Name : allAppNames()) {
    AppDefinition App = makeApp(Name, 1);
    const ExperimentResult &Perf =
        Cache.get(Name, governors::Perf, ExperimentMode::Micro);
    const ExperimentResult &GwI =
        Cache.get(Name, governors::GreenWebI, ExperimentMode::Micro);
    const ExperimentResult &GwU =
        Cache.get(Name, governors::GreenWebU, ExperimentMode::Micro);

    double NormI = GwI.TotalJoules / Perf.TotalJoules;
    double NormU = GwU.TotalJoules / Perf.TotalJoules;
    SavingsI.push_back(1.0 - NormI);
    SavingsU.push_back(1.0 - NormU);
    Energy.row()
        .cell(Name)
        .cell(qosTypeName(App.MicroType))
        .percentCell(NormI)
        .percentCell(NormU);

    // Scenario-matched violations relative to Perf under the same
    // targets (Perf's violations differ per scenario, Sec. 7.2 note).
    double ExtraI =
        GwI.ViolationPctImperceptible - Perf.ViolationPctImperceptible;
    double ExtraU = GwU.ViolationPctUsable - Perf.ViolationPctUsable;
    ViolI.push_back(ExtraI);
    ViolU.push_back(ExtraU);
    Violations.row()
        .cell(Name)
        .cell(qosTypeName(App.MicroType))
        .cell(formatString("%+.2f", ExtraI))
        .cell(formatString("%+.2f", ExtraU));
  }
  Energy.print();
  Json.table("Energy", Energy);
  std::printf("Average savings vs Perf: GreenWeb-I %.1f%%, GreenWeb-U "
              "%.1f%%   (paper: 31.9%% / 78.0%%)\n\n",
              mean(SavingsI) * 100.0, mean(SavingsU) * 100.0);
  Violations.print();
  Json.table("Violations", Violations);
  std::printf("Average additional violations: GreenWeb-I %+.2f%%, "
              "GreenWeb-U %+.2f%%   (paper: +1.3%% / +1.2%%)\n",
              mean(ViolI), mean(ViolU));
  std::printf("\nShape checks from the paper:\n"
              " * largest I-mode savings on Todo / CamanJS / LZMA-JS "
              "(little-core-only feasible);\n"
              " * continuous apps show a large I-vs-U gap;\n"
              " * single-type apps (MSN/LZMA-JS/BBC) show the largest "
              "I-mode violation bars (profiling runs);\n"
              " * W3Schools/Cnet stand out under usable mode (complexity "
              "surges).\n");
  return 0;
}
