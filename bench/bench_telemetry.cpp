//===- bench/bench_telemetry.cpp - telemetry hub overhead harness ---------===//
//
// Part of the GreenWeb reproduction. Distributed under the MIT license.
//
// Measures the per-record cost of the telemetry hub across its
// observability configurations, so the "near-zero steady-state cost"
// claim of the always-on flight recorder stays a measured number:
//
//   1. disabled        the enabled() branch and nothing else
//   2. plain           metrics + log append (the pre-observability path)
//   3. recorder        plain + flight-recorder ring copy per record
//   4. detectors       plain + EWMA/CUSUM scoring per record
//   5. full            plain + recorder + detectors
//   6. metrics_full    recorder + detectors over a capacity-0 log, the
//                      always-on production shape for long sweeps
//
// Each round replays the same synthetic session: six-stage frames with
// a drifting latency pattern, a governor decision every 4th frame, and
// a DAQ-style energy sample every 16th, under a synthetic virtual
// clock, so every configuration sees an identical record stream that
// exercises all three detectors and the ring.
//
// A second leg measures the sweep scheduler trace (SchedTrace) the same
// way: an identical metrics-only parallel Micro sweep with the trace
// detached vs attached, demonstrating the <2% overhead bound the
// observability layer promises.
//
// Writes BENCH_telemetry.json (override with --json=<path>); the
// committed copy at the repo root records the numbers for the
// environment that produced it — regenerate with:
//
//   build/bench/bench_telemetry --json=BENCH_telemetry.json
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "profiling/RunCompare.h"
#include "support/StringUtils.h"
#include "telemetry/AnomalyDetector.h"
#include "telemetry/FlightRecorder.h"
#include "telemetry/SchedTrace.h"
#include "telemetry/Telemetry.h"
#include "workloads/ParallelRunner.h"

#include <chrono>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

using namespace greenweb;

namespace {

struct Measurement {
  uint64_t Ops = 0;
  double Seconds = 0.0;
  std::vector<double> SamplesNsPerOp; ///< Per-round ns/op, for gw-diff.
  double nsPerOp() const { return Ops ? Seconds / double(Ops) * 1e9 : 0; }
  double opsPerSec() const { return Seconds > 0 ? double(Ops) / Seconds : 0; }
};

/// Repeats \p Round (which returns the ops it performed) until at least
/// \p MinSeconds of wall clock accumulate, timing each round separately
/// so the JSON output can carry raw samples for significance testing.
Measurement measure(const std::function<uint64_t()> &Round,
                    double MinSeconds = 0.25) {
  Measurement M;
  auto Start = std::chrono::steady_clock::now();
  do {
    auto RoundStart = std::chrono::steady_clock::now();
    uint64_t Ops = Round();
    auto RoundEnd = std::chrono::steady_clock::now();
    M.Ops += Ops;
    if (Ops)
      M.SamplesNsPerOp.push_back(
          std::chrono::duration<double>(RoundEnd - RoundStart).count() /
          double(Ops) * 1e9);
    M.Seconds = std::chrono::duration<double>(RoundEnd - Start).count();
  } while (M.Seconds < MinSeconds);
  return M;
}

/// How a hub under test is configured.
struct HubShape {
  const char *Name;
  bool Enabled = true;
  bool Recorder = false;
  bool Detectors = false;
  bool MetricsOnly = false;
};

/// One synthetic session: \p Frames frames of six stage records each,
/// with a square-wave latency pattern (so the detectors do real
/// scoring work, including the occasional alert), a governor decision
/// every 4th frame, and an energy sample every 16th. Returns the
/// number of recorder calls made.
uint64_t sessionRound(Telemetry &Tel, uint64_t &NowNs, double &Joules,
                      unsigned Frames) {
  static const char *Stages[] = {"animate", "style",     "layout",
                                 "paint",   "composite", "present"};
  uint64_t Ops = 0;
  for (unsigned F = 0; F < Frames; ++F) {
    // ~60 Hz cadence with a latency regime shift every 256 frames.
    double Base = (F / 256) % 2 ? 22.0 : 11.0;
    double TotalMs = Base + double(F % 7) * 0.25;
    for (const char *Stage : Stages) {
      NowNs += 2'000'000;
      Tel.recordFrameStage({int64_t(F), Stage, TotalMs / 6.0});
      ++Ops;
    }
    Tel.recordFrameStage({int64_t(F), "total", TotalMs});
    ++Ops;
    if (F % 4 == 0) {
      GovernorDecisionRecord D;
      D.Governor = "bench";
      D.Reason = "predicted";
      D.Config = F % 8 ? "A15@1800MHz" : "A7@1000MHz";
      D.CoreIsBig = F % 8 ? 1 : 0;
      D.FreqMHz = F % 8 ? 1800 : 1000;
      Tel.recordGovernorDecision(D);
      ++Ops;
    }
    if (F % 16 == 0) {
      Joules += TotalMs * 1e-3 * 1.5; // ~1.5 W at the frame cadence.
      Tel.recordEnergySample({1.5, Joules, 4});
      ++Ops;
    }
  }
  return Ops;
}

Measurement benchShape(const HubShape &Shape, unsigned Frames) {
  Telemetry Tel;
  uint64_t NowNs = 0;
  double Joules = 0.0;
  Tel.setClock([&NowNs] {
    return TimePoint::origin() + Duration::nanoseconds(int64_t(NowNs));
  });
  Tel.setEnabled(Shape.Enabled);
  if (Shape.MetricsOnly)
    Tel.setLogCapacity(0);
  if (Shape.Recorder)
    Tel.enableFlightRecorder();
  if (Shape.Detectors)
    Tel.enableAnomalyDetectors();
  return measure([&] {
    uint64_t Ops = sessionRound(Tel, NowNs, Joules, Frames);
    // Keep memory flat across rounds; the clear is identical work in
    // every configuration so relative costs stay comparable.
    Tel.log().clear();
    return Ops;
  });
}

} // namespace

int main(int Argc, char **Argv) {
  bench::BenchFlags Flags = bench::BenchFlags::parse(Argc, Argv);
  bench::ProfSession ProfGuard(Flags);
  if (Flags.JsonPath.empty())
    Flags.JsonPath = "BENCH_telemetry.json";
  bench::JsonReporter Json("bench_telemetry", Flags.JsonPath);
  bench::banner("Telemetry hub overhead",
                "Per-record cost with the flight recorder and anomaly "
                "detectors off vs on (infrastructure, not paper data)");

  constexpr unsigned Frames = 2'048;
  const HubShape Shapes[] = {
      {"disabled", /*Enabled=*/false},
      {"plain"},
      {"recorder", true, /*Recorder=*/true},
      {"detectors", true, false, /*Detectors=*/true},
      {"full", true, true, true},
      {"metrics_full", true, true, true, /*MetricsOnly=*/true},
  };

  TablePrinter Table(formatString(
      "Per-record hub cost (synthetic session, %u frames/round)", Frames));
  Table.row()
      .cell("Configuration")
      .cell("ns/record")
      .cell("records/sec")
      .cell("vs plain");
  double PlainNs = 0.0;
  for (const HubShape &Shape : Shapes) {
    Measurement M = benchShape(Shape, Frames);
    if (std::string_view(Shape.Name) == "plain")
      PlainNs = M.nsPerOp();
    std::string Rel =
        PlainNs > 0.0 && std::string_view(Shape.Name) != "plain"
            ? formatString("%+.1f%%", (M.nsPerOp() / PlainNs - 1.0) * 100.0)
            : "-";
    Table.row()
        .cell(Shape.Name)
        .cell(M.nsPerOp(), 1)
        .cell(formatString("%.0f", M.opsPerSec()))
        .cell(Rel);
    Json.metric(formatString("telemetry_record/%s", Shape.Name), M.Ops,
                M.nsPerOp(), "records_per_sec", M.opsPerSec(), "",
                M.SamplesNsPerOp);
  }
  Table.print();

  // --- Scheduler-trace overhead on a real metrics-only sweep ---
  // The exact shape ParallelRunner sweeps run in production: private
  // metrics-only hubs merged into a shared hub in config order. One
  // sweep of Micro cells is one op; the sched-on rounds attach a
  // SchedTrace (and re-arm it per round, as a driver would per batch).
  std::vector<ExperimentConfig> SweepConfigs;
  for (const char *App : {"CamanJS", "Todo"})
    for (const char *Gov : {governors::Perf, governors::GreenWebI}) {
      ExperimentConfig C;
      C.AppName = App;
      C.GovernorName = Gov;
      C.Mode = ExperimentMode::Micro;
      SweepConfigs.push_back(std::move(C));
    }
  auto SweepRound = [&SweepConfigs](SchedTrace *Sched) {
    Telemetry SharedTel;
    SharedTel.setLogCapacity(0);
    ParallelExperimentOptions Opts;
    Opts.Jobs = 2;
    Opts.SharedTel = &SharedTel;
    Opts.JobLogCapacity = 0;
    Opts.Sched = Sched;
    runExperimentsParallel(SweepConfigs, Opts);
    return uint64_t(1);
  };
  // The off and on legs interleave round-for-round (off, on, off, on,
  // ...) instead of running back to back: slow host drift — frequency
  // scaling, noisy neighbours on shared runners — then lands on both
  // sample arrays equally rather than masquerading as overhead. With
  // sequential legs the point delta swings by tens of percent on a
  // loaded single-core host, which is exactly the noise the
  // significance verdict below is meant to see through.
  SchedTrace Sched;
  Measurement SchedOff, SchedOn;
  auto TimedRound = [&](SchedTrace *Trace, Measurement &M) {
    auto Start = std::chrono::steady_clock::now();
    uint64_t Ops = SweepRound(Trace);
    double Secs = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - Start)
                      .count();
    M.Ops += Ops;
    M.Seconds += Secs;
    M.SamplesNsPerOp.push_back(Secs / double(Ops) * 1e9);
  };
  SweepRound(nullptr); // Warm shared page assets outside timed rounds.
  while (SchedOff.Seconds + SchedOn.Seconds < 2.0) {
    TimedRound(nullptr, SchedOff);
    TimedRound(&Sched, SchedOn);
  }
  double SchedOverheadPct =
      SchedOff.nsPerOp() > 0
          ? (SchedOn.nsPerOp() / SchedOff.nsPerOp() - 1.0) * 100.0
          : 0.0;
  // The raw point delta is dominated by run-to-run noise (it comes out
  // slightly negative on quiet hosts), so the verdict is statistical:
  // a two-sided Mann-Whitney U test over the per-round sample arrays
  // — the same test gw-diff applies to the committed baseline — says
  // whether the sched-on distribution differs at all.
  double SchedPValue =
      prof::mannWhitneyPValue(SchedOff.SamplesNsPerOp,
                              SchedOn.SamplesNsPerOp);
  bool SchedSignificant = SchedPValue < 0.05;
  std::string SchedVerdict =
      SchedSignificant
          ? formatString("significant (Mann-Whitney p=%.3f)", SchedPValue)
          : formatString("within noise floor (Mann-Whitney p=%.3f)",
                         SchedPValue);

  TablePrinter SchedTable(
      "Scheduler-trace overhead (metrics-only Micro sweep, jobs=2)");
  SchedTable.row().cell("Configuration").cell("ms/sweep").cell("overhead");
  SchedTable.row()
      .cell("sched off")
      .cell(SchedOff.nsPerOp() / 1e6, 2)
      .cell("-");
  SchedTable.row()
      .cell("sched on")
      .cell(SchedOn.nsPerOp() / 1e6, 2)
      .cell(formatString("%+.2f%%", SchedOverheadPct));
  SchedTable.print();
  std::printf("sched overhead verdict: %s\n", SchedVerdict.c_str());

  Json.metric("telemetry_sweep/sched_off", SchedOff.Ops,
              SchedOff.nsPerOp(), "sweeps_per_sec", SchedOff.opsPerSec(),
              "", SchedOff.SamplesNsPerOp);
  Json.metric("telemetry_sweep/sched_on", SchedOn.Ops, SchedOn.nsPerOp(),
              "sweeps_per_sec", SchedOn.opsPerSec(), "",
              SchedOn.SamplesNsPerOp);
  Json.scalar("sched_overhead_pct", SchedOverheadPct, "%", {},
              SchedVerdict + "; gate on the telemetry_sweep/* sample "
                             "arrays via gw-diff, not this point value");
  Json.scalar("sched_overhead_p_value", SchedPValue);

  std::printf("\nwrote %s\n", Flags.JsonPath.c_str());
  return 0;
}
