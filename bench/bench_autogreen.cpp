//===- bench/bench_autogreen.cpp - Sec. 5 ablation -------------------------------===//
//
// Part of the GreenWeb reproduction. Distributed under the MIT license.
//
// Evaluates AUTOGREEN (Sec. 5): per app, how many events it profiles,
// its single/continuous classification vs the manual annotations, and
// the end-to-end effect of running the full interaction with
// AUTOGREEN's annotations instead of the manual ones. The paper notes
// AUTOGREEN conservatively assumes short targets for single events, so
// auto-annotated heavyweight apps (CamanJS, LZMA-JS) chase 100 ms
// instead of 1 s and burn more energy — that is the manual-correction
// gap of Sec. 7.3 ("we manually correct the QoS target for events that
// should have a long response latency").
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "autogreen/AutoGreen.h"
#include "workloads/Apps.h"

using namespace greenweb;

int main(int Argc, char **Argv) {
  bench::BenchFlags Flags = bench::BenchFlags::parse(Argc, Argv);
  bench::ProfSession ProfGuard(Flags);
  bench::JsonReporter Json("bench_autogreen", Flags.JsonPath);
  bench::banner("AUTOGREEN: automatic annotation",
                "Classification per app plus auto-vs-manual energy "
                "(Sec. 5, Sec. 7.3 'Annotation Effort')");

  TablePrinter Class("Classification of discovered events");
  Class.row()
      .cell("Application")
      .cell("Profiled")
      .cell("Continuous")
      .cell("Single")
      .cell("Skipped");
  for (const std::string &Name : allAppNames()) {
    AppDefinition App = makeApp(Name, 1);
    AutoGreenResult R = runAutoGreen(App.Html);
    Class.row()
        .cell(Name)
        .cell(int64_t(R.EventsProfiled))
        .cell(int64_t(R.ContinuousDetected))
        .cell(int64_t(R.SingleDetected))
        .cell(int64_t(R.SkippedUnselectable));
  }
  Class.print();
  Json.table("Class", Class);

  std::printf("\nEnd-to-end: full interaction under GreenWeb-I with "
              "manual vs AUTOGREEN annotations\n\n");
  TablePrinter Energy;
  Energy.row()
      .cell("Application")
      .cell("Manual (mJ)")
      .cell("AutoGreen (mJ)")
      .cell("Auto/Manual")
      .cell("Auto viol-I (+%)");
  // A representative subset spanning the three QoS categories.
  for (const char *Name :
       {"CamanJS", "LZMA-JS", "Todo", "Goo.ne.jp", "W3Schools"}) {
    ExperimentConfig C;
    C.AppName = Name;
    C.GovernorName = governors::GreenWebI;
    ExperimentResult Manual = runExperiment(C);
    C.UseAutoGreenAnnotations = true;
    ExperimentResult Auto = runExperiment(C);
    Energy.row()
        .cell(Name)
        .cell(Manual.TotalJoules * 1e3, 1)
        .cell(Auto.TotalJoules * 1e3, 1)
        .cell(bench::percentOf(Auto.TotalJoules, Manual.TotalJoules))
        .cell(formatString("%+.2f",
                           Auto.ViolationPctImperceptible -
                               Manual.ViolationPctImperceptible));
  }
  Energy.print();
  Json.table("Energy", Energy);
  std::printf("\nShape check: heavyweight single apps (CamanJS, LZMA-JS) "
              "cost more under AUTOGREEN because its conservative "
              "'single, short' assumption chases a 100 ms target that "
              "needs the big cluster; the paper fixes these by hand "
              "(Sec. 7.3).\n");
  return 0;
}
