//===- bench/bench_fig10_full.cpp - Fig. 10 --------------------------------------===//
//
// Part of the GreenWeb reproduction. Distributed under the MIT license.
//
// Regenerates Fig. 10: full-interaction results. For each application's
// Table 3 session,
//   (a) energy of Interactive / GreenWeb-I / GreenWeb-U normalized to
//       Perf, sorted ascending by GreenWeb-I as in the paper's plot
//       (paper: GreenWeb saves 29.2% / 66.0% vs Interactive; Interactive
//       consumes energy close to Perf), and
//   (b/c) QoS violations on top of Perf under the imperceptible and
//       usable scenarios (paper: +0.8% / +0.6%, comparable to
//       Interactive).
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "support/Statistics.h"

#include <algorithm>

using namespace greenweb;
using bench::ResultCache;

int main(int Argc, char **Argv) {
  bench::BenchFlags Flags = bench::BenchFlags::parse(Argc, Argv);
  bench::ProfSession ProfGuard(Flags);
  bench::JsonReporter Json("bench_fig10_full", Flags.JsonPath);
  bench::banner("Fig. 10: full interaction results",
                "Energy vs Perf/Interactive and QoS violations, Sec. 7.3");

  ResultCache Cache;
  {
    // Warm every sweep cell across --jobs workers (default serial);
    // results and telemetry are identical to serial cell-by-cell runs.
    std::vector<bench::BenchCell> Cells;
    for (const std::string &Name : allAppNames())
      for (const char *Gov : {governors::Perf, governors::Interactive, governors::GreenWebI, governors::GreenWebU})
        Cells.push_back({Name, Gov, ExperimentMode::Full});
    Cache.prefetch(Cells, Flags.Jobs);
  }
  struct Row {
    std::string Name;
    double NormInter, NormI, NormU;
    double ViolInterI, ViolInterU, ViolI, ViolU;
  };
  std::vector<Row> Rows;
  for (const std::string &Name : allAppNames()) {
    const ExperimentResult &Perf =
        Cache.get(Name, governors::Perf, ExperimentMode::Full);
    const ExperimentResult &Inter =
        Cache.get(Name, governors::Interactive, ExperimentMode::Full);
    const ExperimentResult &GwI =
        Cache.get(Name, governors::GreenWebI, ExperimentMode::Full);
    const ExperimentResult &GwU =
        Cache.get(Name, governors::GreenWebU, ExperimentMode::Full);
    Rows.push_back(
        {Name, Inter.TotalJoules / Perf.TotalJoules,
         GwI.TotalJoules / Perf.TotalJoules,
         GwU.TotalJoules / Perf.TotalJoules,
         Inter.ViolationPctImperceptible - Perf.ViolationPctImperceptible,
         Inter.ViolationPctUsable - Perf.ViolationPctUsable,
         GwI.ViolationPctImperceptible - Perf.ViolationPctImperceptible,
         GwU.ViolationPctUsable - Perf.ViolationPctUsable});
  }
  // The paper sorts Fig. 10a ascending by GreenWeb-I.
  std::sort(Rows.begin(), Rows.end(),
            [](const Row &A, const Row &B) { return A.NormI < B.NormI; });

  TablePrinter Energy("Fig. 10a: energy normalized to Perf (sorted by "
                      "GreenWeb-I)");
  Energy.row()
      .cell("Application")
      .cell("Interactive")
      .cell("GreenWeb-I")
      .cell("GreenWeb-U");
  std::vector<double> SaveI, SaveU, NormInter;
  for (const Row &R : Rows) {
    Energy.row()
        .cell(R.Name)
        .percentCell(R.NormInter)
        .percentCell(R.NormI)
        .percentCell(R.NormU);
    SaveI.push_back(1.0 - R.NormI / R.NormInter);
    SaveU.push_back(1.0 - R.NormU / R.NormInter);
    NormInter.push_back(R.NormInter);
  }
  Energy.print();
  Json.table("Energy", Energy);
  std::printf(
      "Average energy savings vs Interactive: GreenWeb-I %.1f%%, "
      "GreenWeb-U %.1f%%   (paper: 29.2%% / 66.0%%)\n"
      "Interactive averages %.1f%% of Perf (paper: close to Perf; our "
      "replayed sessions have more idle between inputs, see "
      "EXPERIMENTS.md).\n\n",
      mean(SaveI) * 100.0, mean(SaveU) * 100.0, mean(NormInter) * 100.0);

  TablePrinter Viol("Fig. 10b/10c: QoS violations on top of Perf "
                    "(percentage points)");
  Viol.row()
      .cell("Application")
      .cell("Interactive (I)")
      .cell("GreenWeb-I (I)")
      .cell("Interactive (U)")
      .cell("GreenWeb-U (U)");
  std::vector<double> VI, VU;
  for (const Row &R : Rows) {
    Viol.row()
        .cell(R.Name)
        .cell(formatString("%+.2f", R.ViolInterI))
        .cell(formatString("%+.2f", R.ViolI))
        .cell(formatString("%+.2f", R.ViolInterU))
        .cell(formatString("%+.2f", R.ViolU));
    VI.push_back(R.ViolI);
    VU.push_back(R.ViolU);
  }
  Viol.print();
  Json.table("Viol", Viol);
  std::printf("Average additional violations: GreenWeb-I %+.2f%%, "
              "GreenWeb-U %+.2f%%   (paper: +0.8%% / +0.6%%)\n",
              mean(VI), mean(VU));
  return 0;
}
