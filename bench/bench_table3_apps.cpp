//===- bench/bench_table3_apps.cpp - Table 3 ------------------------------------===//
//
// Part of the GreenWeb reproduction. Distributed under the MIT license.
//
// Regenerates Table 3: the twelve evaluation applications with their
// microbenchmark interaction / QoS category and the measured
// full-interaction statistics (session time, event count, annotation
// percentage) from an instrumented Perf run.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "workloads/Apps.h"

using namespace greenweb;
using bench::ResultCache;

int main(int Argc, char **Argv) {
  bench::BenchFlags Flags = bench::BenchFlags::parse(Argc, Argv);
  bench::ProfSession ProfGuard(Flags);
  bench::JsonReporter Json("bench_table3_apps", Flags.JsonPath);
  bench::banner("Table 3: evaluation applications",
                "Micro-benchmarking and full-interaction characteristics "
                "(Sec. 7.1, Table 3)");

  ResultCache Cache;
  {
    // Warm every sweep cell across --jobs workers (default serial);
    // results and telemetry are identical to serial cell-by-cell runs.
    std::vector<bench::BenchCell> Cells;
    for (const std::string &Name : allAppNames())
      for (const char *Gov : {governors::Perf})
        Cells.push_back({Name, Gov, ExperimentMode::Full});
    Cache.prefetch(Cells, Flags.Jobs);
  }
  TablePrinter Table;
  Table.row()
      .cell("Application")
      .cell("Interaction")
      .cell("QoS Type")
      .cell("QoS Target")
      .cell("Time")
      .cell("Events")
      .cell("Annotation");

  double SumTime = 0.0;
  uint64_t SumEvents = 0;
  for (const std::string &Name : allAppNames()) {
    AppDefinition App = makeApp(Name, 1);
    const ExperimentResult &Full =
        Cache.get(Name, governors::Perf, ExperimentMode::Full);

    std::string Target;
    if (App.MicroTarget.Imperceptible >= Duration::seconds(1))
      Target = formatString("(%.0f, %.0f) s",
                            App.MicroTarget.Imperceptible.secs(),
                            App.MicroTarget.Usable.secs());
    else
      Target = formatString("(%.1f, %.1f) ms",
                            App.MicroTarget.Imperceptible.millis(),
                            App.MicroTarget.Usable.millis());

    double Secs = App.Full.SessionLength.secs();
    SumTime += Secs;
    SumEvents += Full.InputEvents;

    Table.row()
        .cell(Name)
        .cell(interactionKindName(App.MicroInteraction))
        .cell(qosTypeName(App.MicroType))
        .cell(Target)
        .cell(formatString("%d:%02d", int(Secs) / 60, int(Secs) % 60))
        .cell(int64_t(Full.InputEvents))
        .cell(formatString("%.1f%%", Full.AnnotationPct));
  }
  Table.print();
  Json.table("Table", Table);

  std::printf("\nAverages: %.0f s per session, %.0f events per session "
              "(paper: ~43 s, ~94 events).\n",
              SumTime / 12.0, double(SumEvents) / 12.0);
  return 0;
}
