//===- bench/bench_fig12_switching.cpp - Fig. 12 ---------------------------------===//
//
// Part of the GreenWeb reproduction. Distributed under the MIT license.
//
// Regenerates Fig. 12: the configuration-switching frequency of the
// GreenWeb runtime, decomposed into CPU frequency changes and cluster
// migrations, expressed per frame produced. The paper's observations:
// modest switching overall (~20%), GreenWeb-I generally switches more
// than GreenWeb-U (a tighter target is more sensitive to frame
// variance), and frequency changes dominate migrations.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "support/Statistics.h"

using namespace greenweb;
using bench::ResultCache;

int main(int Argc, char **Argv) {
  bench::BenchFlags Flags = bench::BenchFlags::parse(Argc, Argv);
  bench::ProfSession ProfGuard(Flags);
  bench::JsonReporter Json("bench_fig12_switching", Flags.JsonPath);
  bench::banner("Fig. 12: execution configuration switching frequency",
                "Switches per frame, split into frequency changes and "
                "core migrations (Sec. 7.3)");

  ResultCache Cache;
  TablePrinter Table;
  Table.row()
      .cell("Application")
      .cell("GW-I freq/frame")
      .cell("GW-I mig/frame")
      .cell("GW-I total")
      .cell("GW-U freq/frame")
      .cell("GW-U mig/frame")
      .cell("GW-U total");

  std::vector<double> TotalI, TotalU, FreqShare;
  for (const std::string &Name : allAppNames()) {
    const ExperimentResult &GwI =
        Cache.get(Name, governors::GreenWebI, ExperimentMode::Full);
    const ExperimentResult &GwU =
        Cache.get(Name, governors::GreenWebU, ExperimentMode::Full);

    auto PerFrame = [](uint64_t Count, uint64_t Frames) {
      return Frames == 0 ? 0.0 : double(Count) / double(Frames);
    };
    // The chip counts a cross-cluster change as both a migration and a
    // frequency switch; report the frequency-only share separately.
    double FreqI = PerFrame(GwI.FreqSwitches - GwI.Migrations, GwI.Frames);
    double MigI = PerFrame(GwI.Migrations, GwI.Frames);
    double FreqU = PerFrame(GwU.FreqSwitches - GwU.Migrations, GwU.Frames);
    double MigU = PerFrame(GwU.Migrations, GwU.Frames);
    TotalI.push_back(FreqI + MigI);
    TotalU.push_back(FreqU + MigU);
    if (FreqI + MigI > 0)
      FreqShare.push_back(FreqI / (FreqI + MigI));

    Table.row()
        .cell(Name)
        .percentCell(FreqI)
        .percentCell(MigI)
        .percentCell(FreqI + MigI)
        .percentCell(FreqU)
        .percentCell(MigU)
        .percentCell(FreqU + MigU);
  }
  Table.print();
  Json.table("Table", Table);
  std::printf("\nMean switching per frame: GreenWeb-I %.1f%%, GreenWeb-U "
              "%.1f%%   (paper: ~20%% on average, I > U)\n",
              mean(TotalI) * 100.0, mean(TotalU) * 100.0);
  std::printf("Frequency-only changes are %.0f%% of all switches on "
              "average (paper: frequency changes dwarf migrations).\n",
              mean(FreqShare) * 100.0);
  std::printf("Switch penalties are 100 us (DVFS) and 20 us (migration) "
              "against millisecond frames, so the overhead is minimal "
              "(Sec. 7.3).\n");
  return 0;
}
